#!/usr/bin/env python
"""Benchmark: speculative racing vs the sequential fallback walk.

The workload is the pathological case racing exists for: the first
engine of the chain (exact, the strongest tier) stalls — scripted here
with a ``SlowdownFault`` — while a cheaper equal-tier engine could have
answered immediately.  The sequential walk pays the full stall before
falling through; the racing executor launches the next engine after
``overlap * fair_share`` seconds and takes its answer as soon as no
stronger contender is still running.

Both arms run the same seeded cases and must produce identical
engines and values (racing never changes an answer, only who computes
it).  Results go to ``BENCH_racing.json`` at the repo root; ``pass``
requires the racing arm to beat the sequential arm on total wall-clock
with answers agreeing case for case.

A second section times the adaptive batch width
(:func:`repro.kernels.bitops.pick_batch_bits`): drawing a 64-sample
batch at its narrowed width vs the old fixed :data:`BATCH_BITS` column,
over a wide plan.  ``pass`` additionally requires the narrow draw to
be cheaper — tiny sample counts no longer pay full-column cost.

``--smoke`` is the CI lane: one stalled case, and racing must win.

Usage::

    python benchmarks/bench_racing.py [--cases 4] [--repeats 3]
    python benchmarks/bench_racing.py --smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.kernels import clear_caches
from repro.kernels.bitops import (
    BATCH_BITS,
    bernoulli_column,
    dyadic_bits,
    full_mask,
    pick_batch_bits,
)
from repro.logic.evaluator import FOQuery
from repro.runtime import faults
from repro.runtime.executor import run_with_fallback
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

QUERY = FOQuery("exists x. exists y. E(x, y) & S(y)")

STALL_SECONDS = 0.6  # the scripted stall on the first (exact) engine
OVERLAP = 0.25  # racing arm: next engine launches at 0.25 * fair share


def _cases(count: int):
    cases = []
    for index in range(count):
        rng = make_rng(900 + index)
        db = random_unreliable_database(
            rng, size=4, relations={"E": 2, "S": 1}, density=0.4
        )
        cases.append({"db": db, "seed": index})
    return cases


def _run_arm(cases, repeats: int, stall: float, race):
    """Total wall-clock with the first engine stalled; median of repeats."""
    totals = []
    details = []
    for _ in range(repeats):
        clear_caches()
        details = []
        start = time.perf_counter()
        for case in cases:
            case_start = time.perf_counter()
            with faults.inject({"exact": faults.SlowdownFault(seconds=stall)}):
                result = run_with_fallback(
                    case["db"],
                    QUERY,
                    rng=case["seed"],
                    race=race,
                )
            details.append(
                {
                    "engine": result.engine,
                    "guarantee": result.guarantee,
                    "value": result.value,
                    "attempts": [
                        (a.engine, a.outcome) for a in result.attempts
                    ],
                    "seconds": round(time.perf_counter() - case_start, 6),
                }
            )
        totals.append(time.perf_counter() - start)
    return statistics.median(totals), details


def _batch_width_trial(budget: int, lanes: int, repeats: int):
    """Seconds to draw one ``budget``-sample batch: adaptive vs fixed."""
    bits = [dyadic_bits(0.3)] * lanes
    narrow = pick_batch_bits(budget, lanes)

    def draw(width: int) -> float:
        rng = make_rng(7)
        full = full_mask(width)
        start = time.perf_counter()
        for _ in range(repeats):
            for b in bits:
                bernoulli_column(rng, width, b, full)
        return (time.perf_counter() - start) / repeats

    return {
        "budget": budget,
        "lanes": lanes,
        "adaptive_width": narrow,
        "fixed_width": BATCH_BITS,
        "adaptive_seconds": round(draw(narrow), 6),
        "fixed_seconds": round(draw(BATCH_BITS), 6),
    }


def measure(cases_count: int, repeats: int, stall: float, overlap: float):
    cases = _cases(cases_count)
    sequential_s, sequential_details = _run_arm(cases, repeats, stall, False)
    racing_s, racing_details = _run_arm(cases, repeats, stall, overlap)

    # Racing may answer via a *different* engine of the same guarantee
    # tier (that is the point); the value and tier must not change.
    agreement = all(
        s["guarantee"] == r["guarantee"] and s["value"] == r["value"]
        for s, r in zip(sequential_details, racing_details)
    )
    width = _batch_width_trial(budget=64, lanes=200, repeats=20)
    width_ok = (
        width["adaptive_width"] < width["fixed_width"]
        and width["adaptive_seconds"] < width["fixed_seconds"]
    )

    ok = racing_s < sequential_s and agreement and width_ok
    return {
        "benchmark": "racing",
        "workload": (
            f"{cases_count} reliability cases, n=4 dbs, exact stalled "
            f"{stall}s, overlap={overlap}"
        ),
        "sequential_total_s": round(sequential_s, 6),
        "racing_total_s": round(racing_s, 6),
        "speedup": round(sequential_s / racing_s, 2),
        "answers_agree": agreement,
        "batch_width": width,
        "batch_width_pass": width_ok,
        "sequential_cases": sequential_details,
        "racing_cases": racing_details,
        "pass": ok,
    }


def smoke() -> int:
    """CI lane: one stalled case; racing must win with the same answer."""
    cases = _cases(1)
    sequential_s, seq_details = _run_arm(cases, 1, 0.4, False)
    racing_s, race_details = _run_arm(cases, 1, 0.4, 0.1)
    agree = (
        seq_details[0]["guarantee"] == race_details[0]["guarantee"]
        and seq_details[0]["value"] == race_details[0]["value"]
    )
    result = {
        "benchmark": "racing-smoke",
        "sequential_s": round(sequential_s, 6),
        "racing_s": round(racing_s, 6),
        "answers_agree": agree,
        "pass": racing_s < sequential_s and agree,
    }
    print(json.dumps(result, indent=2))
    if not result["pass"]:
        print("FAIL: racing did not beat the stalled sequential walk")
        return 1
    print("smoke OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cases", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--stall", type=float, default=STALL_SECONDS)
    parser.add_argument("--overlap", type=float, default=OVERLAP)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI workload; exit nonzero unless racing beats the "
        "stalled sequential walk with an identical answer",
    )
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_racing.json"
        ),
    )
    parser.add_argument(
        "--history",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"
        ),
        help="trajectory store for schema-versioned records",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip appending to the trajectory store",
    )
    args = parser.parse_args()
    if args.smoke:
        return smoke()
    result = measure(args.cases, args.repeats, args.stall, args.overlap)
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {args.out}")
    if not args.no_history:
        from repro.bench.convert import convert_racing
        from repro.bench.history import History

        count = History(args.history).append_all(
            convert_racing(result, source="script")
        )
        print(f"appended {count} record(s) to {args.history}")
    return 0 if result["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
