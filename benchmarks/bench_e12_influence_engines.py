"""E12 — extension ablation: influence computation, conditioning vs BDD.

The conditioning engine computes each atom's Birnbaum influence with two
Shannon-expansion probability calls (``2u`` counter calls for ``u``
atoms); the ROBDD engine compiles once and reads *all* influences off
two linear passes.  This benchmark measures the gap as the number of
uncertain atoms grows, and a companion test pins exact agreement.

Also benchmarked: the verification planner built on top (greedy exact
lookahead), since its inner loop is exactly these influence-style
computations — the practical payoff of the faster engine.
"""

import pytest

from repro.logic.evaluator import FOQuery
from repro.reliability.influence import atom_influence
from repro.reliability.repair import greedy_verification_plan
from repro.util.rng import make_rng
from repro.bench.registry import workload
from repro.workloads.random_db import random_unreliable_database

SIZES = tuple(workload("experiments.e12_influence")["sizes"])
SENTENCE = "exists x y. E(x, y) & S(x) & S(y)"


def _database(size):
    return random_unreliable_database(
        make_rng(size),
        size=size,
        relations={"E": 2, "S": 1},
        density=0.4,
        error_choices=["1/6", "1/4"],
        uncertain_fraction=1.0,
    )


@pytest.mark.parametrize("size", SIZES)
def test_e12_conditioning_engine(benchmark, size):
    db = _database(size)
    influences = benchmark.pedantic(
        lambda: atom_influence(db, SENTENCE, engine="conditioning"),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert influences


@pytest.mark.parametrize("size", SIZES)
def test_e12_bdd_engine(benchmark, size):
    db = _database(size)
    influences = benchmark.pedantic(
        lambda: atom_influence(db, SENTENCE, engine="bdd"),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert influences


@pytest.mark.parametrize("size", SIZES)
def test_e12_engines_agree(benchmark, size):
    db = _database(size)

    def both():
        return (
            atom_influence(db, SENTENCE, engine="conditioning"),
            atom_influence(db, SENTENCE, engine="bdd"),
        )

    conditioning, bdd = benchmark.pedantic(
        both, rounds=1, iterations=1, warmup_rounds=0
    )
    assert conditioning == bdd


def test_e12_verification_planner(benchmark):
    db = _database(4)
    plan = benchmark.pedantic(
        lambda: greedy_verification_plan(db, SENTENCE, budget=3),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert all(gain > 0 for _atom, gain in plan)
