#!/usr/bin/env python
"""Standalone experiment harness: regenerate every table in EXPERIMENTS.md.

``pytest benchmarks/ --benchmark-only`` gives per-operation timings with
statistical rigor; this script complements it by printing the
*shape-level* tables the reproduction is judged on — who wins, by what
factor, where the crossovers fall — in one run.

Each experiment runs under its own :mod:`repro.obs` recorder, so the
record attached to it carries engine-internal metrics (worlds
enumerated, clauses grounded, samples drawn, Shannon nodes, ...), not
just wall-clock.  Failures are routed through a module-level logger —
one experiment blowing up is reported and attributed, and the remaining
experiments still run.

Usage::

    python benchmarks/run_experiments.py                   # all experiments
    python benchmarks/run_experiments.py E2 E9             # a subset
    python benchmarks/run_experiments.py --json out.json   # machine-readable records
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from fractions import Fraction

from repro import obs

from repro.logic.conjunctive import hardness_query
from repro.logic.datalog import reachability_query
from repro.logic.evaluator import FOQuery
from repro.propositional.counting import probability_exact
from repro.propositional.formula import DNF, Clause, Literal
from repro.propositional.karp_luby import (
    karp_luby,
    karp_luby_samples,
    naive_probability_estimate,
    sample_count,
)
from repro.reductions.fourcolouring import (
    four_colourable_via_absolute_reliability,
    is_four_colourable,
)
from repro.reductions.monotone2sat import (
    count_satisfying_assignments,
    sat_count_via_expected_error,
)
from repro.reliability.approx import reliability_additive
from repro.reliability.exact import reliability, truth_probability
from repro.reliability.grounding import ground_existential_to_dnf
from repro.reliability.montecarlo import estimate_reliability_hamming
from repro.reliability.padding import padded_truth_probability
from repro.reliability.space import scaled_world_counts, world_granularity
from repro.relational.builder import graph_structure
from repro.reliability.unreliable import uniform_error
from repro.metafinite.reliability import (
    estimate_metafinite_reliability,
    metafinite_reliability,
    metafinite_reliability_qf,
)
from repro.util.rng import make_rng
from repro.workloads.graphs import complete_graph, random_colourable_graph, random_digraph
from repro.workloads.random_cnf import random_monotone_2cnf
from repro.workloads.random_db import random_unreliable_database
from repro.workloads.random_dnf import random_kdnf, random_probabilities
from repro.workloads.scenarios import sensor_scenario


logger = logging.getLogger("repro.benchmarks")


def _timed(thunk):
    start = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - start


def e1() -> None:
    print("== E1: Prop 3.1 — quantifier-free reliability is polynomial ==")
    query = FOQuery("E(x, y) & ~S(x) | S(y)", ("x", "y"))
    print(f"{'n':>4} {'uncertain':>10} {'time (s)':>9} {'R':>8}")
    previous = None
    for size in (4, 8, 16, 32, 48):
        db = random_unreliable_database(
            make_rng(size), size, {"E": 2, "S": 1}, density=0.3, error="1/16"
        )
        value, seconds = _timed(lambda: reliability(db, query, method="qf"))
        ratio = "" if previous is None else f"  x{seconds / previous:.1f}"
        print(
            f"{size:>4} {len(db.uncertain_atoms()):>10} {seconds:>9.3f} "
            f"{float(value):>8.4f}{ratio}"
        )
        previous = seconds
    print("shape: time ratios track (n2/n1)^2 — polynomial, never exponential\n")


def e2() -> None:
    print("== E2: Prop 3.2 — conjunctive expected error is #P-hard ==")
    print(f"{'m vars':>6} {'#SAT':>8} {'via H_psi':>10} {'time (s)':>9}")
    previous = None
    for variables in (6, 9, 12, 15, 18):
        formula = random_monotone_2cnf(make_rng(variables), variables, variables)
        brute = count_satisfying_assignments(formula)
        value, seconds = _timed(lambda: sat_count_via_expected_error(formula))
        assert value == brute
        ratio = "" if previous is None else f"  x{seconds / previous:.1f}"
        print(f"{variables:>6} {brute:>8} {value:>10} {seconds:>9.3f}{ratio}")
        previous = seconds
    print("shape: identity H*2^m == #SAT holds; cost climbs with m "
          "(model counting)\n")


def e3() -> None:
    print("== E3: Thm 4.2 — the exact FP^#P algorithm ==")
    query = FOQuery("exists x y. E(x, y) & S(y)")
    print(f"{'uncertain':>10} {'worlds':>8} {'g':>12} {'time (s)':>9} {'ok':>3}")
    for uncertain in (4, 8, 12, 16):
        rng = make_rng(uncertain)
        from repro.workloads.random_db import random_structure
        from repro.relational.atoms import Atom
        from repro.reliability.unreliable import UnreliableDatabase

        structure = random_structure(rng, 4, {"E": 2, "S": 1}, 0.4)
        atoms = sorted(structure.atoms(), key=repr)
        mu = {a: Fraction(1, rng.choice([3, 4, 5])) for a in rng.sample(atoms, uncertain)}
        db = UnreliableDatabase(structure, mu)
        g = world_granularity(db)

        def walk():
            accepted = total = 0
            for world, count in scaled_world_counts(db):
                total += count
                if query.evaluate(world, ()):
                    accepted += count
            return accepted, total

        (accepted, total), seconds = _timed(walk)
        ok = total == g and Fraction(accepted, g) == truth_probability(
            db, query, method="dnf"
        )
        print(
            f"{uncertain:>10} {2**uncertain:>8} {g:>12} {seconds:>9.3f} "
            f"{'yes' if ok else 'NO':>3}"
        )
    print("shape: 2^u growth; nu(B)*g integral and counts sum to g on "
          "every row\n")


def e4() -> None:
    print("== E4: Thm 5.3 — FPTRAS for Prob-kDNF ==")
    rng = make_rng(1)
    dnf = random_kdnf(rng, variables=12, clauses=8, width=3)
    probs = random_probabilities(rng, dnf)
    exact = float(probability_exact(dnf, probs))
    print(f"exact nu = {exact:.6f}")
    print(f"{'epsilon':>8} {'samples':>9} {'estimate':>10} {'rel err':>8} {'time (s)':>9}")
    for epsilon in (0.2, 0.1, 0.05, 0.025):
        run, seconds = _timed(
            lambda: karp_luby(dnf, probs, epsilon, 0.05, make_rng(2))
        )
        rel = abs(run.estimate - exact) / exact
        print(
            f"{epsilon:>8} {run.samples:>9} {run.estimate:>10.6f} "
            f"{rel:>8.4f} {seconds:>9.3f}"
        )
    print("shape: samples scale as 1/eps^2; relative error stays below "
          "each eps\n")


def e5() -> None:
    print("== E5: Thm 5.4 + Cor 5.5 — additive reliability approximation ==")
    query = FOQuery("exists x y. E(x, y) & S(x) & S(y)")
    print(f"{'n':>4} {'clauses raw':>12} {'kept':>6} {'exact R':>9} "
          f"{'estimate':>9} {'|err|':>7}")
    for size in (4, 6, 8):
        db = random_unreliable_database(
            make_rng(size),
            size,
            {"E": 2, "S": 1},
            density=0.3,
            error_choices=["1/8", "1/5"],
            uncertain_fraction=1.0,
        )
        grounding = ground_existential_to_dnf(db, query.formula)
        exact = float(reliability(db, query))
        estimate = reliability_additive(db, query, 0.05, 0.1, make_rng(50 + size))
        print(
            f"{size:>4} {grounding.clauses_before_folding:>12} "
            f"{len(grounding.dnf):>6} {exact:>9.4f} {estimate.value:>9.4f} "
            f"{abs(estimate.value - exact):>7.4f}"
        )
    print("shape: |err| <= 0.05 on every row; folding shrinks the "
          "grounded DNF\n")


def e6() -> None:
    print("== E6: Lemma 5.9/5.10 — absolute reliability is coNP-hard ==")
    print(f"{'graph':<12} {'4-col':>6} {'AR fails':>9} {'agree':>6} {'time (s)':>9}")
    rng = make_rng(4)
    cases = [("K4", complete_graph(4)), ("K5", complete_graph(5))]
    for nodes in (6, 7):
        cases.append(
            (f"col({nodes})", random_colourable_graph(make_rng(nodes), nodes, 4, 0.7))
        )
    for name, (vertex_list, edges) in cases:
        if not edges:
            continue
        expected = is_four_colourable(vertex_list, edges)
        got, seconds = _timed(
            lambda: four_colourable_via_absolute_reliability(vertex_list, edges)
        )
        print(
            f"{name:<12} {str(expected):>6} {str(got):>9} "
            f"{str(expected == got):>6} {seconds:>9.3f}"
        )
    # Lemma 5.10: naive MC on a rare flip event.
    from repro.reductions.fourcolouring import (
        encode_four_colouring,
        non_four_colouring_query,
    )
    from repro.logic.fo import neg
    from repro.reliability.exact import expected_error
    from repro.reliability.montecarlo import estimate_truth_probability

    vertex_list, edges = complete_graph(4)
    shifted_nodes = vertex_list + [v + 10 for v in vertex_list]
    shifted_edges = edges + [(u + 10, v + 10) for u, v in edges]
    db = encode_four_colouring(shifted_nodes, shifted_edges)
    query = non_four_colouring_query()
    h = float(expected_error(db, query))
    naive = estimate_truth_probability(
        db, neg(query.formula), make_rng(1), samples=100
    )
    print(f"Lemma 5.10: H = {h:.6f}; naive MC (100 samples) = {naive:.6f}")
    print("shape: reduction agrees with brute force; naive MC reports ~0 "
          "on the rare event\n")


def e7() -> None:
    print("== E7: Thm 5.12 — estimator for arbitrary PTIME queries ==")
    query = reachability_query()
    print(f"{'n':>4} {'xi':>6} {'samples':>8} {'wrong est':>10} {'time (s)':>9}")
    for size, xi in ((5, Fraction(1, 4)), (7, Fraction(1, 4)), (7, Fraction(1, 10)), (7, Fraction(2, 5))):
        nodes, edges = random_digraph(make_rng(size), size, 0.25)
        db = uniform_error(graph_structure(nodes, edges), Fraction(1, 10))
        target = (0, size - 1)
        observed = query.evaluate(db.structure, target)
        estimate, seconds = _timed(
            lambda: padded_truth_probability(
                db, query, 0.15, 0.2, make_rng(size), xi=xi, args=target
            )
        )
        wrong = 1.0 - estimate.value if observed else estimate.value
        print(
            f"{size:>4} {str(xi):>6} {estimate.samples:>8} {wrong:>10.4f} "
            f"{seconds:>9.3f}"
        )
    nodes, edges = random_digraph(make_rng(3), 4, 0.4)
    db = uniform_error(graph_structure(nodes, edges), Fraction(1, 8))
    from repro.reliability.exact import wrong_probability

    exact = float(wrong_probability(db, query, (0, 3)))
    estimate = padded_truth_probability(
        db, query, 0.1, 0.1, make_rng(4), args=(0, 3)
    )
    observed = query.evaluate(db.structure, (0, 3))
    wrong = 1.0 - estimate.value if observed else estimate.value
    print(f"guarantee check (n=4): exact wrong = {exact:.4f}, "
          f"estimate = {wrong:.4f}, |err| = {abs(exact - wrong):.4f} <= 0.1")
    print("shape: samples ~ 1/xi; additive guarantee verified against the "
          "exact engine\n")


def e8() -> None:
    print("== E8: Thm 6.2 — metafinite reliability ==")
    print(f"{'sensors':>8} {'engine':<10} {'R[total]':>9} {'time (s)':>9}")
    for sensors in (4, 8, 12):
        scenario = sensor_scenario(make_rng(sensors), sensors=sensors)
        value, seconds = _timed(
            lambda: metafinite_reliability(scenario.db, scenario.queries["total"])
        )
        print(f"{sensors:>8} {'exact':<10} {float(value):>9.4f} {seconds:>9.3f}")
    scenario = sensor_scenario(make_rng(30), sensors=30)
    value, seconds = _timed(
        lambda: metafinite_reliability_qf(scenario.db, scenario.queries["local"])
    )
    print(f"{30:>8} {'qf-exact':<10} {float(value):>9.4f} {seconds:>9.3f}"
          "   (2^30 worlds, polynomial engine)")
    value, seconds = _timed(
        lambda: estimate_metafinite_reliability(
            scenario.db, scenario.queries["total"], make_rng(31), samples=2000
        )
    )
    print(f"{30:>8} {'MC':<10} {value:>9.4f} {seconds:>9.3f}")
    print("shape: exact aggregate engine is exponential in sensors; the "
          "QF engine and MC scale\n")


def e9() -> None:
    print("== E9: ablation — Karp-Luby vs naive MC on rare unions ==")
    print(f"{'width':>6} {'exact':>12} {'KL est':>12} {'KL rel':>7} "
          f"{'naive est':>10}")
    for width in (6, 10, 14):
        clauses = []
        for index in range(5):
            names = [f"v{index}_{j}" for j in range(width)]
            clauses.append(Clause(Literal(v, True) for v in names))
        dnf = DNF(clauses)
        probs = {v: Fraction(1, 4) for v in dnf.variables}
        exact = float(probability_exact(dnf, probs))
        kl = karp_luby_samples(dnf, probs, 3000, make_rng(width)).estimate
        naive = naive_probability_estimate(dnf, probs, 3000, make_rng(width))
        print(
            f"{width:>6} {exact:>12.3e} {kl:>12.3e} "
            f"{abs(kl - exact) / exact:>7.3f} {naive:>10.3e}"
        )
    print("shape: KL's relative error is flat; naive MC collapses to 0\n")


def e10() -> None:
    print("== E10: ablation — exact Shannon expansion vs FPTRAS crossover ==")
    print("chain workload (sparse overlap):")
    print(f"{'chain':>6} {'exact (s)':>10} {'KL (s)':>8} {'winner':>8}")
    for length in (8, 32, 128):
        clauses = []
        for index in range(length):
            names = [f"v{index * 3 + j}" for j in range(4)]
            clauses.append(Clause(Literal(v, True) for v in names))
        dnf = DNF(clauses)
        probs = {v: Fraction(1, 3) for v in dnf.variables}
        _value, exact_seconds = _timed(lambda: probability_exact(dnf, probs))
        _run, kl_seconds = _timed(
            lambda: karp_luby(dnf, probs, 0.2, 0.2, make_rng(length))
        )
        winner = "exact" if exact_seconds < kl_seconds else "KL"
        print(
            f"{length:>6} {exact_seconds:>10.3f} {kl_seconds:>8.3f} {winner:>8}"
        )
    print("dense-overlap workload (random 4DNF, clauses = 3.2 x vars):")
    print(f"{'vars':>6} {'exact (s)':>10} {'KL (s)':>8} {'winner':>8}")
    for variables in (15, 20, 25, 28):
        rng = make_rng(variables)
        dnf = random_kdnf(
            rng, variables=variables, clauses=int(variables * 3.2), width=4
        )
        probs = random_probabilities(rng, dnf)
        _value, exact_seconds = _timed(lambda: probability_exact(dnf, probs))
        _run, kl_seconds = _timed(
            lambda: karp_luby(dnf, probs, 0.2, 0.2, make_rng(variables))
        )
        winner = "exact" if exact_seconds < kl_seconds else "KL"
        print(
            f"{variables:>6} {exact_seconds:>10.3f} {kl_seconds:>8.3f} {winner:>8}"
        )
    print("shape: exact wins on sparse-overlap chains at every size; on "
          "dense overlap it\nexplodes past ~25 variables while KL grows "
          "polynomially — the crossover\n")


EXPERIMENTS = {
    "E1": e1,
    "E2": e2,
    "E3": e3,
    "E4": e4,
    "E5": e5,
    "E6": e6,
    "E7": e7,
    "E8": e8,
    "E9": e9,
    "E10": e10,
}


def _run_experiment(name: str):
    """Run one experiment under its own recorder; never raises.

    Returns ``(ok, record)`` where ``record`` is a schema-versioned
    :class:`repro.bench.BenchResult` carrying wall-clock, the engine
    metrics the run produced (``repro.obs`` registry snapshot), and the
    span-tree profile of the run.
    """
    from repro.bench.record import (
        BenchResult,
        environment_fingerprint,
        wall_clock_stats,
    )

    sink = obs.ListSink()
    recorder = obs.StatsRecorder(sink=sink)
    ok = True
    start = time.perf_counter()
    with obs.use(recorder):
        try:
            EXPERIMENTS[name]()
        except Exception:
            ok = False
            logger.exception("experiment %s failed", name)
    elapsed = time.perf_counter() - start
    record = BenchResult(
        bench=f"experiments.table_{name.lower()}",
        group="experiments",
        workload={"experiment": name, "harness": "run_experiments"},
        environment=environment_fingerprint(),
        methodology={
            "repeats": 1,
            "warmup": 0,
            "timer": "perf_counter",
            "reduce": "median",
            "quick": False,
        },
        wall_clock=wall_clock_stats([elapsed]),
        metrics=recorder.summary(),
        profile=obs.profile_spans(sink.events).to_dict(),
        source="run_experiments",
    )
    record.extra = {"ok": ok}
    counters = record.metrics["counters"]
    if counters:
        shown = ", ".join(f"{key}={value}" for key, value in counters.items())
        print(f"[obs] {name}: {shown}\n")
    return ok, record


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiments", nargs="*", help="subset, e.g. E2 E9")
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write schema-versioned per-experiment records "
        "(incl. engine metrics and span profiles)",
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        help="append the records to this trajectory store "
        "(e.g. BENCH_history.jsonl)",
    )
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.INFO,
        format="%(levelname)s %(name)s: %(message)s",
    )
    chosen = [name.upper() for name in args.experiments] or list(EXPERIMENTS)
    for name in chosen:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; known: {list(EXPERIMENTS)}")
            return 2
    outcomes = [_run_experiment(name) for name in chosen]
    records = [record for _ok, record in outcomes]
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(
                [record.to_dict() for record in records], handle, indent=2
            )
        print(f"wrote {len(records)} experiment records to {args.json}")
    if args.history:
        from repro.bench.history import History

        count = History(args.history).append_all(records)
        print(f"appended {count} record(s) to {args.history}")
    return 0 if all(ok for ok, _record in outcomes) else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
