"""E5 — Theorem 5.4 + Corollary 5.5: additive reliability approximation.

Series over database size for a fixed conjunctive query: the estimator's
cost is polynomial in n (grounding produces O(n^2) clauses; Karp-Luby is
polynomial in that), where exact computation is #P-hard in general.
Every row asserts |estimate - exact| <= epsilon against the exact engine
(feasible at these sizes; the estimator is the one that keeps scaling).

The second series sweeps epsilon at fixed size — additive accuracy is
bought at 1/eps^2 samples, matching the corollary's budget.

The grounding-simplification ablation (DESIGN.md section 5) is reported
as the clause count before/after deterministic-atom folding.
"""

import pytest

from repro.logic.evaluator import FOQuery
from repro.reliability.approx import reliability_additive
from repro.reliability.exact import reliability
from repro.reliability.grounding import ground_existential_to_dnf
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

from repro.bench.registry import workload

QUERY = FOQuery("exists x y. E(x, y) & S(x) & S(y)")
_W = workload("experiments.e5_additive")
SIZES = tuple(_W["sizes"])
EPSILONS = tuple(_W["epsilon_sweep"])


def _database(size, uncertain_fraction=1.0):
    return random_unreliable_database(
        make_rng(size),
        size=size,
        relations={"E": 2, "S": 1},
        density=0.3,
        error_choices=["1/8", "1/5"],
        uncertain_fraction=uncertain_fraction,
    )


@pytest.mark.parametrize("size", SIZES)
def test_e5_additive_estimate_vs_database_size(benchmark, size):
    db = _database(size)
    exact = float(reliability(db, QUERY))
    rng = make_rng(1000 + size)

    estimate = benchmark.pedantic(
        lambda: reliability_additive(db, QUERY, 0.1, 0.1, rng),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert abs(estimate.value - exact) <= 0.1


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_e5_cost_vs_epsilon(benchmark, epsilon):
    db = _database(6)
    exact = float(reliability(db, QUERY))
    rng = make_rng(2000)
    estimate = benchmark.pedantic(
        lambda: reliability_additive(db, QUERY, epsilon, 0.1, rng),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert abs(estimate.value - exact) <= epsilon


@pytest.mark.parametrize("size", SIZES)
def test_e5_grounding_folding_ablation(benchmark, size):
    """Folding deterministic atoms shrinks the grounded DNF drastically."""
    db = _database(size, uncertain_fraction=0.25)
    result = benchmark(lambda: ground_existential_to_dnf(db, QUERY.formula))
    kept = len(result.dnf)
    raw = result.clauses_before_folding
    assert raw == size * size  # one clause per (x, y) valuation
    assert kept < raw  # folding must have removed certainly-false clauses
