"""E4 — Theorem 5.3: the FPTRAS for Prob-kDNF.

Two series:

* runtime vs 1/epsilon at fixed formula size — fully polynomial means
  the sample count (and time) grows as 1/eps^2, not with the model count;
* runtime vs formula size at fixed epsilon — linear-ish in clauses.

Each run asserts the relative-error guarantee against the exact engine.
A third benchmark runs the paper's literal bit-vector reduction pipeline
(Prob-kDNF -> #DNF -> Karp-Luby), and a comparison of the two Karp-Luby
estimator variants (ablation from DESIGN.md section 5).
"""

import pytest

from repro.propositional.bitvector import probability_via_bitvector
from repro.propositional.counting import probability_exact
from repro.propositional.karp_luby import karp_luby, sample_count
from repro.util.rng import make_rng
from repro.workloads.random_dnf import random_kdnf, random_probabilities

from repro.bench.registry import workload

_W = workload("experiments.e4_fptras")
EPSILONS = tuple(_W["epsilons"])
CLAUSE_COUNTS = tuple(_W["clause_counts"])


def _instance(seed, variables=12, clauses=8, width=3):
    rng = make_rng(seed)
    dnf = random_kdnf(rng, variables=variables, clauses=clauses, width=width)
    probs = random_probabilities(rng, dnf)
    return dnf, probs


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_e4_sample_cost_scales_inverse_quadratically(benchmark, epsilon):
    dnf, probs = _instance(1)
    exact = float(probability_exact(dnf, probs))
    rng = make_rng(2)

    run = benchmark(
        lambda: karp_luby(dnf, probs, epsilon, 0.05, rng, method="coverage")
    )
    assert run.samples == sample_count(len(dnf.clauses), epsilon, 0.05)
    assert abs(run.estimate - exact) <= 2 * epsilon * exact


@pytest.mark.parametrize("clauses", CLAUSE_COUNTS)
def test_e4_cost_vs_formula_size(benchmark, clauses):
    dnf, probs = _instance(clauses, variables=24, clauses=clauses, width=3)
    rng = make_rng(3)
    run = benchmark(lambda: karp_luby(dnf, probs, 0.2, 0.2, rng))
    assert 0 <= run.estimate <= 1


@pytest.mark.parametrize("method", ("coverage", "canonical"))
def test_e4_estimator_variant_ablation(benchmark, method):
    dnf, probs = _instance(7)
    exact = float(probability_exact(dnf, probs))
    rng = make_rng(4)
    run = benchmark(lambda: karp_luby(dnf, probs, 0.1, 0.05, rng, method))
    assert abs(run.estimate - exact) <= 0.2 * exact


def test_e4_bitvector_reduction_pipeline(benchmark):
    """The paper's literal Theorem 5.3 construction, counted exactly."""
    dnf, probs = _instance(9, variables=5, clauses=4, width=2)
    via_reduction = benchmark(lambda: probability_via_bitvector(dnf, probs))
    assert via_reduction == probability_exact(dnf, probs)


def test_e4_stopping_rule_ablation(benchmark):
    """DKLR adaptive stopping rule vs the fixed Karp-Luby budget.

    On a fat union (high target probability) the adaptive rule stops
    long before the fixed m-scaled budget while keeping the same
    relative guarantee.
    """
    from repro.propositional.stopping_rule import karp_luby_stopping_rule

    rng = make_rng(21)
    dnf = random_kdnf(rng, variables=10, clauses=40, width=2)
    from fractions import Fraction

    probs = {v: Fraction(1, 2) for v in dnf.variables}
    exact = float(probability_exact(dnf, probs))

    run = benchmark(
        lambda: karp_luby_stopping_rule(dnf, probs, 0.1, 0.05, make_rng(22))
    )
    assert abs(run.estimate - exact) / exact <= 0.1
    fixed = sample_count(len(dnf.clauses), 0.1, 0.05)
    assert run.samples < fixed  # the adaptive rule must win here
