"""E9 — ablation: Karp–Luby importance sampling vs naive Monte Carlo.

The union-of-rare-events workload: a DNF whose clauses are long
conjunctions, so the target probability is around 10^-4 .. 10^-6.  At a
fixed sample budget:

* Karp–Luby's relative error stays bounded (it samples *inside* the
  union);
* naive Monte Carlo usually returns exactly 0 — unbounded relative
  error — because it wastes its budget outside the event.

The benchmark rows pair the two estimators at the same budget per
clause-width; the assertions encode "who wins": KL within 20% relative,
naive either 0 or far off.  This is the operational content of Theorem
5.2's "fully polynomial" claim.
"""

import pytest

from repro.propositional.counting import probability_exact
from repro.propositional.formula import DNF, Clause, Literal
from repro.propositional.karp_luby import (
    karp_luby_samples,
    naive_probability_estimate,
)
from repro.util.rng import make_rng

from fractions import Fraction

from repro.bench.registry import workload

_W = workload("experiments.e9_rare_unions")
WIDTHS = tuple(_W["widths"])
BUDGET = _W["budget"]


def _rare_union(width, clauses=5):
    """Clauses of `width` distinct positive literals at p = 1/4 each."""
    built = []
    for index in range(clauses):
        variables = [f"v{index}_{j}" for j in range(width)]
        built.append(Clause(Literal(v, True) for v in variables))
    dnf = DNF(built)
    probs = {v: Fraction(1, 4) for v in dnf.variables}
    return dnf, probs


@pytest.mark.parametrize("width", WIDTHS)
def test_e9_karp_luby_on_rare_unions(benchmark, width):
    dnf, probs = _rare_union(width)
    exact = float(probability_exact(dnf, probs))
    rng = make_rng(width)
    run = benchmark(lambda: karp_luby_samples(dnf, probs, BUDGET, rng))
    assert exact > 0
    assert abs(run.estimate - exact) / exact <= 0.2


@pytest.mark.parametrize("width", WIDTHS)
def test_e9_naive_mc_on_rare_unions(benchmark, width):
    dnf, probs = _rare_union(width)
    exact = float(probability_exact(dnf, probs))
    rng = make_rng(width)
    estimate = benchmark(
        lambda: naive_probability_estimate(dnf, probs, BUDGET, rng)
    )
    # The naive estimator's relative error is catastrophic: with
    # probability ~ (1 - exact)^BUDGET it reports exactly zero; widths
    # >= 10 make that essentially certain.  (At width 6 the event is
    # merely rare, not invisible, so only sanity is asserted — the
    # benchmark fixture re-runs the closure with an advancing rng, so a
    # per-run error band would be flaky by construction.)
    if width >= 10:
        assert estimate == 0.0
    else:
        assert 0.0 <= estimate <= 1.0
