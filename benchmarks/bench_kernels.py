#!/usr/bin/env python
"""Benchmark: bit-parallel kernels vs scalar loops (E1/E4/E9 workloads).

Measures the three kernel families introduced in ``repro.kernels``:

* **E1 Monte-Carlo truth probability** — world sampling on a random
  n=24 database.  Scalar samples one world per RNG draw; batched packs
  :data:`repro.kernels.bitops.BATCH_BITS` worlds into per-atom integer
  columns and evaluates the grounded query with AND/OR/popcount.
* **E4/E9 Karp–Luby** — DNF cover sampling, scalar vs batched vs
  sharded (multiprocessing fan-out; identical results per seed).
* **Gray-code exact enumeration** — a 16-atom world enumeration via
  one-flip Gray steps with incremental ``Fraction`` weights, compared
  against the ``itertools.product`` sweep; the two sums must be
  *bit-identical* (both exact rationals).

Results go to ``BENCH_kernels.json`` at the repo root.  ``--smoke``
runs a tiny version (suitable for CI): it checks the batched Karp–Luby
kernel clears a 2x speedup on the E9 rare-union case and that a
10-atom Gray sweep matches the product sweep bit-identically, exiting
nonzero otherwise.

Usage::

    python benchmarks/bench_kernels.py [--samples 100000] [--repeats 3]
    python benchmarks/bench_kernels.py --smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from fractions import Fraction
from pathlib import Path

from repro.kernels import clear_caches
from repro.kernels.gray import (
    gray_enumeration_probability,
    product_enumeration_probability,
)
from repro.logic.evaluator import FOQuery
from repro.propositional.formula import DNF, Clause, Literal
from repro.propositional.karp_luby import karp_luby_samples
from repro.reliability.montecarlo import estimate_truth_probability
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

E1_QUERY = FOQuery("E(x, y) & ~S(x) | S(y)", ("x", "y"))


def _median_seconds(thunk, repeats: int):
    value = thunk()  # warm-up: compilation cache, imports
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        value = thunk()
        times.append(time.perf_counter() - start)
    return statistics.median(times), value


def _e1_db(size: int):
    return random_unreliable_database(
        make_rng(size), size, {"E": 2, "S": 1}, density=0.3, error="1/16"
    )


def bench_e1_truth(size: int, samples: int, repeats: int, shards: int) -> dict:
    """Monte-Carlo truth probability: scalar vs batched vs sharded."""
    db = _e1_db(size)
    args = (min(3, size - 1), min(17, size - 1))

    def run(kernel: str, n_shards: int = 1):
        return lambda: estimate_truth_probability(
            db,
            E1_QUERY,
            make_rng(7),
            samples=samples,
            args=args,
            kernel=kernel,
            shards=n_shards,
        )

    scalar_s, scalar_v = _median_seconds(run("scalar"), repeats)
    batched_s, batched_v = _median_seconds(run("batched"), repeats)
    sharded_s, sharded_v = _median_seconds(
        run("batched", shards), repeats
    )
    single = run("batched")()
    return {
        "workload": f"E1 MC truth probability, n={size}, {samples} samples",
        "scalar_s": round(scalar_s, 6),
        "batched_s": round(batched_s, 6),
        "sharded_s": round(sharded_s, 6),
        "shards": shards,
        "speedup_batched": round(scalar_s / batched_s, 2),
        "speedup_sharded": round(scalar_s / sharded_s, 2),
        "scalar_estimate": scalar_v,
        "batched_estimate": batched_v,
        "shard_invariant": sharded_v == single,
    }


def _rare_union(width: int, clauses: int = 5):
    """The E9 workload: a union of rare conjunctive events."""
    built = []
    for index in range(clauses):
        variables = [f"v{index}_{j}" for j in range(width)]
        built.append(Clause(Literal(v, True) for v in variables))
    dnf = DNF(built)
    return dnf, {v: Fraction(1, 4) for v in dnf.variables}


def _kdnf(variables: int, clauses: int, width: int):
    """The E4 workload: random k-DNF over a shared variable pool."""
    rng = make_rng(variables * clauses)
    pool = [f"x{i}" for i in range(variables)]
    built = []
    for _ in range(clauses):
        chosen = rng.sample(pool, width)
        built.append(
            Clause(Literal(v, rng.random() < 0.7) for v in chosen)
        )
    dnf = DNF(built)
    return dnf, {v: Fraction(1, 3) for v in dnf.variables}


def bench_karp_luby(
    name: str, dnf, probs, samples: int, repeats: int, shards: int
) -> dict:
    def run(kernel: str, n_shards: int = 1):
        return lambda: karp_luby_samples(
            dnf, probs, samples, make_rng(11), kernel=kernel, shards=n_shards
        ).estimate

    scalar_s, scalar_v = _median_seconds(run("scalar"), repeats)
    batched_s, batched_v = _median_seconds(run("batched"), repeats)
    sharded_s, sharded_v = _median_seconds(run("batched", shards), repeats)
    return {
        "workload": name,
        "clauses": len(dnf.clauses),
        "variables": len(dnf.variables),
        "samples": samples,
        "scalar_s": round(scalar_s, 6),
        "batched_s": round(batched_s, 6),
        "sharded_s": round(sharded_s, 6),
        "shards": shards,
        "speedup_batched": round(scalar_s / batched_s, 2),
        "speedup_sharded": round(scalar_s / sharded_s, 2),
        "scalar_estimate": scalar_v,
        "batched_estimate": batched_v,
        "shard_invariant": sharded_v == batched_v,
    }


def bench_gray(atom_count: int, repeats: int) -> dict:
    """Gray-code vs itertools.product on one exact enumeration."""
    db = random_unreliable_database(
        make_rng(atom_count),
        atom_count,
        {"S": 1},
        density=0.5,
        error="1/8",
    )
    atoms = sorted(db.uncertain_atoms(), key=repr)[:atom_count]
    target = atoms[0]
    predicate = lambda world: world.holds(target)

    product_s, product_v = _median_seconds(
        lambda: product_enumeration_probability(db, atoms, predicate),
        repeats,
    )
    gray_s, gray_v = _median_seconds(
        lambda: gray_enumeration_probability(db, atoms, predicate),
        repeats,
    )
    return {
        "workload": f"exact enumeration over {len(atoms)} atoms "
        f"({2 ** len(atoms)} worlds)",
        "product_s": round(product_s, 6),
        "gray_s": round(gray_s, 6),
        "speedup_gray": round(product_s / gray_s, 2),
        "bit_identical": gray_v == product_v,
        "value": str(gray_v),
    }


def measure(samples: int, repeats: int, shards: int) -> dict:
    clear_caches()
    e1 = bench_e1_truth(24, samples, repeats, shards)
    e4_dnf, e4_probs = _kdnf(40, 12, 4)
    e4 = bench_karp_luby(
        "E4 Karp-Luby on random 4-DNF", e4_dnf, e4_probs,
        samples, repeats, shards,
    )
    e9_dnf, e9_probs = _rare_union(10)
    e9 = bench_karp_luby(
        "E9 Karp-Luby on rare unions (width 10)", e9_dnf, e9_probs,
        samples, repeats, shards,
    )
    gray = bench_gray(16, repeats)
    ok = (
        e1["speedup_batched"] >= 5.0
        and e1["shard_invariant"]
        and e4["shard_invariant"]
        and e9["shard_invariant"]
        and gray["bit_identical"]
        and gray["speedup_gray"] >= 1.0
    )
    return {
        "benchmark": "kernels",
        "samples": samples,
        "repeats": repeats,
        "e1_truth": e1,
        "e4_karp_luby": e4,
        "e9_karp_luby": e9,
        "gray_enumeration": gray,
        "thresholds": {
            "e1_speedup_batched_min": 5.0,
            "gray_speedup_min": 1.0,
        },
        "pass": ok,
    }


def smoke() -> int:
    """CI lane: tiny E9 case (batched must clear 2x scalar) plus a
    10-atom Gray/product bit-identity check."""
    clear_caches()
    dnf, probs = _rare_union(8, clauses=4)
    result = bench_karp_luby(
        "E9 smoke: rare unions (width 8)", dnf, probs,
        samples=20000, repeats=3, shards=1,
    )
    result["threshold_speedup"] = 2.0
    gray = bench_gray(10, repeats=1)
    result["gray_bit_identical"] = gray["bit_identical"]
    result["pass"] = (
        result["speedup_batched"] >= 2.0
        and result["shard_invariant"]
        and gray["bit_identical"]
    )
    print(json.dumps(result, indent=2))
    if not result["pass"]:
        print(
            "FAIL: batched Karp-Luby under 2x scalar, or Gray sweep "
            "not bit-identical, on the smoke case"
        )
        return 1
    print("smoke OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=100000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI workload; exit nonzero if batched < 2x scalar",
    )
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
        ),
    )
    parser.add_argument(
        "--history",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"
        ),
        help="trajectory store for schema-versioned records",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip appending to the trajectory store",
    )
    args = parser.parse_args()
    if args.smoke:
        return smoke()
    result = measure(args.samples, args.repeats, args.shards)
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {args.out}")
    if not args.no_history:
        from repro.bench.convert import convert_kernels
        from repro.bench.history import History

        count = History(args.history).append_all(
            convert_kernels(result, source="script")
        )
        print(f"appended {count} record(s) to {args.history}")
    return 0 if result["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
