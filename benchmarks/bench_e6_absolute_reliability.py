"""E6 — Lemmas 5.9/5.10: absolute reliability is hard; H near 0 resists
relative approximation.

Series 1: deciding AR_psi through the 4-colourability reduction as the
graph grows — the decision costs grow like graph colouring (the query's
grounded tautology check), matching coNP-hardness.

Series 2 (Lemma 5.10's phenomenon, measured): for a nearly-4-colourable
graph the expected error H_psi is tiny; naive Monte-Carlo with a fixed
budget returns 0 hits — infinite relative error — while the absolute
guarantee of Corollary 5.5 is untroubled.  The benchmark asserts that
naive MC indeed fails to see the event at the budget where the exact
value is provably positive.
"""

from fractions import Fraction

import pytest

from repro.logic.fo import neg
from repro.reductions.fourcolouring import (
    encode_four_colouring,
    four_colourable_via_absolute_reliability,
    is_four_colourable,
    non_four_colouring_query,
)
from repro.reliability.exact import expected_error, truth_probability
from repro.reliability.montecarlo import estimate_truth_probability
from repro.util.rng import make_rng
from repro.bench.registry import workload
from repro.workloads.graphs import complete_graph, random_colourable_graph

NODE_COUNTS = tuple(workload("experiments.e6_ar_decision")["nodes"])


@pytest.mark.parametrize("nodes", NODE_COUNTS)
def test_e6_ar_decision_scaling(benchmark, nodes):
    rng = make_rng(nodes)
    vertex_list, edges = random_colourable_graph(rng, nodes, 4, 0.7)
    if not edges:
        pytest.skip("degenerate draw")
    decision = benchmark.pedantic(
        lambda: four_colourable_via_absolute_reliability(vertex_list, edges),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert decision == is_four_colourable(vertex_list, edges)


def test_e6_k5_not_colourable(benchmark):
    vertex_list, edges = complete_graph(5)
    decision = benchmark.pedantic(
        lambda: four_colourable_via_absolute_reliability(vertex_list, edges),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert decision is False


def test_e6_lemma_510_naive_mc_misses_rare_error(benchmark):
    """H_psi > 0 but tiny: fixed-budget naive MC sees nothing.

    Two disjoint K4s: the actual world flips the answer only when *both*
    cliques come out properly coloured — probability (24/256)^2 ~ 0.9%.
    A 100-sample naive estimator almost surely reports 0, i.e. infinite
    relative error, which is Lemma 5.10's obstruction in the flesh.
    """
    vertex_list, edges = complete_graph(4)
    shifted = [v + 10 for v in vertex_list]
    all_nodes = list(vertex_list) + shifted
    all_edges = list(edges) + [(u + 10, v + 10) for u, v in edges]
    db = encode_four_colouring(all_nodes, all_edges)
    query = non_four_colouring_query()
    h = expected_error(db, query)
    assert h == Fraction(24, 256) ** 2  # both cliques properly coloured

    def naive():
        return estimate_truth_probability(
            db, neg(query.formula), make_rng(1), samples=100
        )

    estimate = benchmark(naive)
    exact = float(h)
    assert estimate == 0.0 or abs(estimate - exact) >= 0.5 * exact
