"""E11 — extension: lifted (safe-plan) inference vs grounded exact.

Proposition 3.2 says conjunctive reliability is #P-hard *somewhere*; the
hierarchical/safe fragment is where it is not.  This ablation measures
the gap on the safe query ``exists x y. R(x) & S(x, y) & T(x)``:

* the lifted engine's cost grows polynomially in the universe size,
* the grounded-DNF Shannon engine handles the same instances but as a
  model counter (its cost is formula-structure dependent),
* both agree exactly on every row (asserted).

The unsafe pattern ``R(x), S(x, y), T(y)`` is also run through the
grounded engine to show what the lifted engine refuses — the refusal is
asserted.
"""

import pytest

from repro.logic.conjunctive import ConjunctiveQuery
from repro.reliability.exact import truth_probability
from repro.reliability.lifted import (
    UnsafeQueryError,
    lifted_probability,
)
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

from repro.bench.registry import workload

SAFE = ConjunctiveQuery.from_text("exists x y. R(x) & S(x, y) & T(x)")
UNSAFE = ConjunctiveQuery.from_text("exists x y. R(x) & S(x, y) & T(y)")

SIZES = tuple(workload("experiments.e11_lifted")["sizes"])


def _database(size):
    return random_unreliable_database(
        make_rng(size),
        size=size,
        relations={"R": 1, "S": 2, "T": 1},
        density=0.3,
        error="1/6",
    )


@pytest.mark.parametrize("size", SIZES)
def test_e11_lifted_scaling(benchmark, size):
    db = _database(size)
    value = benchmark(lambda: lifted_probability(db, SAFE))
    assert 0 <= value <= 1


@pytest.mark.parametrize("size", SIZES[:3])
def test_e11_grounded_exact_on_same_instances(benchmark, size):
    db = _database(size)
    value = benchmark.pedantic(
        lambda: truth_probability(db, SAFE.to_formula(), method="dnf"),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert value == lifted_probability(db, SAFE)


def test_e11_unsafe_query_refused(benchmark):
    db = _database(4)

    def attempt():
        try:
            lifted_probability(db, UNSAFE)
            return False
        except UnsafeQueryError:
            return True

    refused = benchmark(attempt)
    assert refused
    # The grounded engine still answers it (the #P-hard route).
    value = truth_probability(db, UNSAFE.to_formula(), method="dnf")
    assert 0 <= value <= 1
