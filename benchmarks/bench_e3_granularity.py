"""E3 — Theorem 4.2: the exact FP^#P algorithm, run literally.

The benchmark walks the theorem's computation tree: enumerate the worlds
of Omega(D), split each into nu(B)*g integer branches (granularity g),
evaluate the query at each leaf.  Asserted invariants on every row:

* nu(B) * g is integral for every world (the splitting is well defined);
* the scaled counts sum to g (the tree partitions the probability mass);
* the resulting probability equals the grounded-DNF engine's answer.

The series over the number of uncertain atoms shows the expected 2^u
growth — the algorithm is an oracle machine, not an efficient one, which
is the point of the FP^#P classification.  A second-order query
(3-colourability) exercises the beyond-PTIME branch of the proof.
"""

from fractions import Fraction

import pytest

from repro.logic.evaluator import FOQuery
from repro.logic.so import three_colourability
from repro.relational.atoms import Atom
from repro.reliability.exact import truth_probability
from repro.reliability.space import scaled_world_counts, world_granularity
from repro.reliability.unreliable import UnreliableDatabase
from repro.bench.registry import workload
from repro.util.rng import make_rng
from repro.workloads.random_db import random_structure

UNCERTAIN_COUNTS = tuple(workload("experiments.e3_tree_walk")["uncertain"])
QUERY = FOQuery("exists x y. E(x, y) & S(y)")


def _database(uncertain):
    rng = make_rng(uncertain)
    structure = random_structure(rng, 4, {"E": 2, "S": 1}, density=0.4)
    atoms = sorted(structure.atoms(), key=repr)
    chosen = rng.sample(atoms, uncertain)
    mu = {atom: Fraction(1, rng.choice([3, 4, 5])) for atom in chosen}
    return UnreliableDatabase(structure, mu)


@pytest.mark.parametrize("uncertain", UNCERTAIN_COUNTS)
def test_e3_theorem_42_tree_walk(benchmark, uncertain):
    db = _database(uncertain)
    g = world_granularity(db)

    def run():
        accepted = 0
        total = 0
        for world, count in scaled_world_counts(db):
            total += count
            if QUERY.evaluate(world, ()):
                accepted += count
        return accepted, total

    accepted, total = benchmark(run)
    assert total == g
    assert Fraction(accepted, g) == truth_probability(db, QUERY, method="dnf")


def test_e3_second_order_leaf_evaluation(benchmark):
    """PH-hard query at the leaves: non-3-colourability of small worlds."""
    from repro.relational.builder import graph_structure

    structure = graph_structure(
        [0, 1, 2, 3],
        [(0, 1), (1, 2), (2, 3), (3, 0)],
        symmetric=True,
    )
    db = UnreliableDatabase(
        structure,
        {
            Atom("E", (0, 2)): Fraction(1, 3),
            Atom("E", (2, 0)): Fraction(1, 3),
            Atom("E", (1, 3)): Fraction(1, 2),
            Atom("E", (3, 1)): Fraction(1, 2),
        },
    )
    query = three_colourability()

    def run():
        g = world_granularity(db)
        accepted = sum(
            count
            for world, count in scaled_world_counts(db)
            if query.evaluate(world, ())
        )
        return Fraction(accepted, g)

    probability = benchmark.pedantic(run, rounds=2, iterations=1, warmup_rounds=0)
    assert 0 <= probability <= 1
    assert probability == truth_probability(db, query, method="worlds")
