#!/usr/bin/env python
"""Micro-benchmark: instrumentation overhead on the E1 qf workload.

The observability layer promises that instrumented engines cost roughly
nothing when observability is off (the default :class:`NullRecorder`)
and <5% when a :class:`StatsRecorder` aggregates counters, with a
buffered JSONL sink adding at most 10% (one joined write per 256
events; see ``repro.obs.sink.JsonlSink``).  This script measures both
on the E1 workload — quantifier-free reliability, the
library's hottest polynomial path, whose inner loop
(``_atom_enumeration_probability``) runs thousands of times per call —
and writes the result to ``BENCH_obs_overhead.json`` at the repo root.

Timings are the *minimum* over ``--repeats`` interleaved runs after a
warm-up — the workload is deterministic, so timer noise is strictly
additive and the minimum is the best estimator of true cost (the same
reasoning as ``timeit``'s documented recommendation).  The reported
overheads compare:

* ``stats_vs_null`` — StatsRecorder (counters only) vs. NullRecorder;
* ``traced_vs_null`` — StatsRecorder with a JSONL sink to ``os.devnull``
  vs. NullRecorder.

Usage::

    python benchmarks/bench_obs_overhead.py [--size 24] [--repeats 5]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro import obs
from repro.logic.evaluator import FOQuery
from repro.reliability.exact import reliability
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

QUERY = FOQuery("E(x, y) & ~S(x) | S(y)", ("x", "y"))


def _workload(size: int):
    db = random_unreliable_database(
        make_rng(size), size, {"E": 2, "S": 1}, density=0.3, error="1/16"
    )
    return lambda: reliability(db, QUERY, method="qf")


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


def measure(size: int, repeats: int) -> dict:
    run = _workload(size)

    devnull = open(os.devnull, "w")
    try:
        recorders = {
            "null": obs.NullRecorder(),
            "stats": obs.StatsRecorder(),
            "traced": obs.StatsRecorder(sink=obs.JsonlSink(devnull)),
        }
        times = {name: [] for name in recorders}
        # Warm up each configuration (caches, imports), then interleave
        # the timed runs round-robin so clock-frequency drift and cache
        # warmth bias no single configuration.
        for recorder in recorders.values():
            with obs.use(recorder):
                run()
        for _ in range(repeats):
            for name, recorder in recorders.items():
                with obs.use(recorder):
                    times[name].append(_timed(run))
    finally:
        devnull.close()

    null_s = min(times["null"])
    stats_s = min(times["stats"])
    traced_s = min(times["traced"])

    def pct(measured: float, baseline: float) -> float:
        return round(100.0 * (measured - baseline) / baseline, 3)

    return {
        "benchmark": "obs_overhead",
        "workload": (
            f"E1 quantifier-free reliability, n={size}, "
            "query='E(x, y) & ~S(x) | S(y)'"
        ),
        "repeats": repeats,
        "null_recorder_s": round(null_s, 6),
        "stats_recorder_s": round(stats_s, 6),
        "traced_recorder_s": round(traced_s, 6),
        "overhead_pct": {
            "stats_vs_null": pct(stats_s, null_s),
            "traced_vs_null": pct(traced_s, null_s),
        },
        "threshold_pct": {"stats_vs_null": 5.0, "traced_vs_null": 10.0},
        "pass": stats_s <= null_s * 1.05 and traced_s <= null_s * 1.10,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=24, help="universe size")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_obs_overhead.json"),
    )
    parser.add_argument(
        "--history",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_history.jsonl"),
        help="trajectory store for schema-versioned records",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip appending to the trajectory store",
    )
    args = parser.parse_args()
    result = measure(args.size, args.repeats)
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {args.out}")
    if not args.no_history:
        from repro.bench.convert import convert_obs_overhead
        from repro.bench.history import History

        count = History(args.history).append_all(
            convert_obs_overhead(result, source="script")
        )
        print(f"appended {count} record(s) to {args.history}")
    return 0 if result["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
