"""E7 — Theorem 5.12: reliability estimation for arbitrary PTIME queries.

Workload: Datalog reachability (not first-order expressible) over random
digraphs with uncertain edges — exactly the gap between Corollary 5.5
(existential/universal only) and Theorem 5.12 (any PTIME query).

Series:

* estimator cost vs database size at fixed (epsilon, delta) — the t
  world samples each cost one polynomial query evaluation;
* the xi ablation from DESIGN.md: the paper's budget t ~ 1/xi, so larger
  xi is cheaper, while the de-biasing factor 1/(xi - xi^2) inflates the
  variance as xi -> 0 or 1/2;
* comparison against the Hoeffding-budget Hamming-sampling baseline,
  which estimates all n^2 tuples from each world sample.

Every row asserts the additive guarantee against the exact engine on a
small instance (and plain bounds on larger ones).
"""

from fractions import Fraction

import pytest

from repro.logic.datalog import reachability_query
from repro.reliability.exact import truth_probability
from repro.reliability.montecarlo import estimate_reliability_hamming
from repro.reliability.padding import (
    padded_truth_probability,
    padding_sample_count,
)
from repro.relational.builder import graph_structure
from repro.reliability.unreliable import uniform_error
from repro.util.rng import make_rng
from repro.bench.registry import workload
from repro.workloads.graphs import random_digraph

_W = workload("experiments.e7_padded")
SIZES = tuple(_W["sizes"])
XIS = tuple(Fraction(x) for x in _W["xis"])


def _database(size, error=Fraction(1, 10)):
    nodes, edges = random_digraph(make_rng(size), size, 0.25)
    structure = graph_structure(nodes, edges)
    return uniform_error(structure, error)


@pytest.mark.parametrize("size", SIZES)
def test_e7_padded_estimator_vs_size(benchmark, size):
    db = _database(size)
    query = reachability_query()
    target = (0, size - 1)
    rng = make_rng(500 + size)

    estimate = benchmark.pedantic(
        lambda: padded_truth_probability(
            db, query, 0.15, 0.2, rng, args=target
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert 0.0 <= estimate.value <= 1.0


@pytest.mark.parametrize("xi", XIS)
def test_e7_xi_ablation(benchmark, xi):
    db = _database(5)
    query = reachability_query()
    rng = make_rng(900)
    estimate = benchmark.pedantic(
        lambda: padded_truth_probability(
            db, query, 0.2, 0.2, rng, xi=xi, args=(0, 4)
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    # The paper's budget: t proportional to 1/xi at fixed eps, delta.
    assert estimate.samples == padding_sample_count(xi, 0.1, 0.2)
    assert 0.0 <= estimate.value <= 1.0


def test_e7_additive_guarantee_against_exact(benchmark):
    """Small instance where exact world enumeration is feasible."""
    nodes, edges = random_digraph(make_rng(3), 4, 0.4)
    structure = graph_structure(nodes, edges)
    db = uniform_error(structure, Fraction(1, 8))
    assert len(db.uncertain_atoms()) == 16
    query = reachability_query()
    from repro.reliability.exact import wrong_probability

    exact_wrong = float(wrong_probability(db, query, (0, 3)))
    rng = make_rng(4)
    estimate = benchmark.pedantic(
        lambda: padded_truth_probability(db, query, 0.1, 0.1, rng, args=(0, 3)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    observed = query.evaluate(db.structure, (0, 3))
    wrong = 1.0 - estimate.value if observed else estimate.value
    assert abs(wrong - exact_wrong) <= 0.1


def test_e7_hamming_baseline(benchmark):
    """The whole-table estimator the padding construction is compared to."""
    db = _database(7)
    query = reachability_query()
    value = benchmark.pedantic(
        lambda: estimate_reliability_hamming(db, query, make_rng(5), samples=800),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert 0.0 <= value <= 1.0
