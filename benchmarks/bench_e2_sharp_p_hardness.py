"""E2 — Proposition 3.2: conjunctive-query reliability is #P-hard.

Series: exact expected error of the fixed conjunctive query
``exists x y z. L(x,y) & R(x,z) & S(y) & S(z)`` on the Prop 3.2 encoding
of random monotone 2-CNFs with a growing number of variables.  The
correctness identity ``H_psi * 2^m == #SAT`` is asserted on every row.

Shape to read off: exact time grows exponentially in m (the engine is
doing model counting), while E4 shows the FPTRAS flat-lining on the same
instances — together they are the paper's hardness/approximability
dichotomy.
"""

import pytest

from repro.reductions.monotone2sat import (
    count_satisfying_assignments,
    sat_count_via_expected_error,
)
from repro.bench.registry import workload
from repro.util.rng import make_rng
from repro.workloads.random_cnf import random_monotone_2cnf

VARIABLES = tuple(workload("experiments.e2_sat_count")["variables"])


@pytest.mark.parametrize("variables", VARIABLES)
def test_e2_exact_expected_error_scaling(benchmark, variables):
    formula = random_monotone_2cnf(
        make_rng(variables), variables=variables, clauses=variables
    )
    expected = count_satisfying_assignments(formula)

    result = benchmark.pedantic(
        lambda: sat_count_via_expected_error(formula),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert result == expected


def test_e2_bruteforce_baseline(benchmark):
    """The direct #SAT oracle at the largest size, for comparison."""
    formula = random_monotone_2cnf(make_rng(15), variables=15, clauses=15)
    count = benchmark.pedantic(
        lambda: count_satisfying_assignments(formula),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert count >= 1
