"""E8 — Theorem 6.2: reliability on metafinite (aggregate) databases.

Series:

* quantifier-free terms: exact reliability scales polynomially with the
  number of sensors (Theorem 6.2(i)) — far beyond where world
  enumeration dies;
* aggregate terms (SUM / MAX / COUNT): the exact engine walks the
  2^u support (the FP^#P algorithm of 6.2(ii)); Monte Carlo stays cheap
  and is asserted against the exact value;
* the robustness ordering the sensor scenario predicts:
  R[SUM] <= R[COUNT-threshold] <= R[MAX] on the standard workload.
"""

from fractions import Fraction

import pytest

from repro.metafinite.reliability import (
    estimate_metafinite_reliability,
    metafinite_reliability,
    metafinite_reliability_qf,
)
from repro.util.rng import make_rng
from repro.bench.registry import workload
from repro.workloads.scenarios import sensor_scenario

_W = workload("experiments.e8_metafinite")
QF_SIZES = tuple(_W["qf_sensors"])
AGG_SIZES = tuple(_W["agg_sizes"])


@pytest.mark.parametrize("sensors", QF_SIZES)
def test_e8_quantifier_free_polynomial(benchmark, sensors):
    scenario = sensor_scenario(make_rng(sensors), sensors=sensors)
    query = scenario.queries["local"]
    value = benchmark(
        lambda: metafinite_reliability_qf(scenario.db, query)
    )
    assert 0 < value <= 1


@pytest.mark.parametrize("sensors", AGG_SIZES)
def test_e8_aggregate_exact_exponential(benchmark, sensors):
    scenario = sensor_scenario(make_rng(sensors), sensors=sensors)
    query = scenario.queries["total"]
    value = benchmark.pedantic(
        lambda: metafinite_reliability(scenario.db, query),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert 0 < value <= 1


def test_e8_monte_carlo_tracks_exact(benchmark):
    scenario = sensor_scenario(make_rng(6), sensors=6)
    query = scenario.queries["alarms"]
    exact = float(metafinite_reliability(scenario.db, query))
    estimate = benchmark.pedantic(
        lambda: estimate_metafinite_reliability(
            scenario.db, query, make_rng(7), samples=4000
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert abs(estimate - exact) <= 0.03


def test_e8_aggregate_robustness_ordering(benchmark):
    """SUM is the most fragile aggregate, MAX the most robust."""
    scenario = sensor_scenario(make_rng(11), sensors=8)

    def run():
        return {
            name: float(
                estimate_metafinite_reliability(
                    scenario.db, scenario.queries[name], make_rng(12), samples=3000
                )
            )
            for name in ("total", "alarms", "hottest")
        }

    values = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    # SUM reacts to every sensor's jitter, so it is the least reliable of
    # the three.  (COUNT and MAX trade places depending on whether any
    # sensor straddles the alarm threshold, so no ordering is asserted
    # between them.)
    assert values["total"] <= values["alarms"] + 0.02
    assert values["total"] <= values["hottest"] + 0.02
