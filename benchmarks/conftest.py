"""Shared helpers for the experiment benchmarks.

Each ``bench_eN_*`` file regenerates one experiment from DESIGN.md's
index.  The pytest-benchmark table is the experiment's "figure": the
parametrised test names carry the sweep variable, so the timing column
read top to bottom is the scaling series the paper's claim predicts.
Correctness assertions inside each benchmark keep the numbers honest —
a benchmark that silently computed the wrong value would be meaningless.

Run:  pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.util.rng import make_rng


@pytest.fixture
def rng():
    return make_rng(20260706)
