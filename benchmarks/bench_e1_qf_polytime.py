"""E1 — Proposition 3.1: quantifier-free reliability is polynomial time.

Series: exact reliability of a fixed binary QF query on random databases
of growing size.  The paper's claim is a *shape*: time grows polynomially
in the universe size (here O(n^2) tuples, constant work per tuple), in
contrast to E2's exponential blowup for conjunctive queries.

Read the benchmark table top-to-bottom: doubling n should roughly
quadruple the time, never square it into the exponent.
"""

import pytest

from repro.bench.registry import workload
from repro.logic.evaluator import FOQuery
from repro.reliability.exact import reliability
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

QUERY = FOQuery("E(x, y) & ~S(x) | S(y)", ("x", "y"))

# The sweep is declared once, in the benchmark registry.
SIZES = tuple(workload("experiments.e1_qf_reliability")["sizes"])


@pytest.mark.parametrize("size", SIZES)
def test_e1_qf_reliability_scaling(benchmark, size):
    db = random_unreliable_database(
        make_rng(size),
        size=size,
        relations={"E": 2, "S": 1},
        density=0.3,
        error="1/16",
    )
    # Far beyond world enumeration (2^(n^2+n) worlds), yet exact:
    assert len(db.uncertain_atoms()) == size * size + size

    result = benchmark(lambda: reliability(db, QUERY, method="qf"))
    assert 0 < result <= 1


def test_e1_per_tuple_cost_is_constant(benchmark):
    """The inner loop of Prop 3.1 touches <= n(psi) atoms regardless of n."""
    from repro.reliability.exact import qf_tuple_wrong_probability

    db = random_unreliable_database(
        make_rng(99), size=24, relations={"E": 2, "S": 1}, error="1/16"
    )
    result = benchmark(
        lambda: qf_tuple_wrong_probability(db, QUERY, (3, 17))
    )
    assert 0 <= result <= 1
