"""E10 — ablation: exact Shannon expansion vs FPTRAS, and the crossover.

The exact engine (Shannon expansion with memoisation and component
factoring) is excellent while the grounded DNF is small or loosely
connected, and #P-hard in general; the FPTRAS costs
O(m^2 log(1/delta)/eps^2) regardless of the formula's internal
structure.  Two workloads expose both regimes:

* **chains** — clauses overlapping in one variable: a single connected
  component, but the conditioning cascade keeps the exact recursion
  shallow, so *exact wins* at every size (a finding worth recording:
  connectivity alone does not defeat Shannon expansion);
* **dense overlap** — random 4DNF with clauses/variables = 3.2: the
  memoisation stops helping and exact time explodes around ~25
  variables, while Karp-Luby's grows quadratically at worst — the
  crossover the `reliability_additive` API exists for.
"""

import pytest

from fractions import Fraction

from repro.propositional.counting import probability_exact
from repro.propositional.formula import DNF, Clause, Literal
from repro.propositional.karp_luby import karp_luby
from repro.util.rng import make_rng
from repro.workloads.random_dnf import random_kdnf, random_probabilities

from repro.bench.registry import workload

_W = workload("experiments.e10_exact_vs_sampling")
CHAIN_LENGTHS = tuple(_W["chain_lengths"])
DENSE_SIZES = tuple(_W["dense_sizes"])  # variables; clauses = 3.2 * variables


def _chained_dnf(length, width=4):
    """Clauses overlapping in one variable: a single connected component."""
    clauses = []
    for index in range(length):
        variables = [f"v{index * (width - 1) + j}" for j in range(width)]
        clauses.append(Clause(Literal(v, True) for v in variables))
    dnf = DNF(clauses)
    probs = {v: Fraction(1, 3) for v in dnf.variables}
    return dnf, probs


def _dense_dnf(variables):
    rng = make_rng(variables)
    dnf = random_kdnf(
        rng, variables=variables, clauses=int(variables * 3.2), width=4
    )
    probs = random_probabilities(rng, dnf)
    return dnf, probs


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_e10_exact_engine_on_chains(benchmark, length):
    dnf, probs = _chained_dnf(length)
    value = benchmark.pedantic(
        lambda: probability_exact(dnf, probs),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert 0 < value < 1


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_e10_fptras_on_chains(benchmark, length):
    dnf, probs = _chained_dnf(length)
    rng = make_rng(length)
    run = benchmark.pedantic(
        lambda: karp_luby(dnf, probs, 0.2, 0.2, rng),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert 0 < run.estimate < 1


@pytest.mark.parametrize("variables", DENSE_SIZES)
def test_e10_exact_engine_on_dense_overlap(benchmark, variables):
    dnf, probs = _dense_dnf(variables)
    value = benchmark.pedantic(
        lambda: probability_exact(dnf, probs),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert 0 < value <= 1


@pytest.mark.parametrize("variables", DENSE_SIZES)
def test_e10_fptras_on_dense_overlap(benchmark, variables):
    dnf, probs = _dense_dnf(variables)
    rng = make_rng(variables)
    run = benchmark.pedantic(
        lambda: karp_luby(dnf, probs, 0.2, 0.2, rng),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert 0 < run.estimate <= 1


def test_e10_engines_agree_where_both_feasible(benchmark):
    dnf, probs = _dense_dnf(15)
    exact = float(probability_exact(dnf, probs))
    rng = make_rng(1)
    run = benchmark.pedantic(
        lambda: karp_luby(dnf, probs, 0.05, 0.05, rng),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert abs(run.estimate - exact) / exact <= 0.1


@pytest.mark.parametrize("variables", DENSE_SIZES[:2])
def test_e10_bdd_engine_on_dense_overlap(benchmark, variables):
    """Knowledge compilation (ROBDD) as a third engine on the same data.

    BDD size is order-sensitive and can blow up where Shannon expansion
    with components does not (and vice versa) — compiled once, it then
    answers probability *and* all influences in linear passes.
    """
    from repro.propositional.bdd import probability_via_bdd

    dnf, probs = _dense_dnf(variables)
    value = benchmark.pedantic(
        lambda: probability_via_bdd(dnf, probs),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert value == probability_exact(dnf, probs)
