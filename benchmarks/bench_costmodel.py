#!/usr/bin/env python
"""Benchmark: calibrated vs static engine-chain ordering.

Fits the per-engine cost model on the seeded calibration workload
(``repro.runtime.costmodel.calibrate``), then replays a mixed evaluation
workload through :func:`run_with_fallback` twice — once with the static
default chain, once with the calibrated model re-ordering each chain
within guarantee tiers — and compares total wall-clock.

The evaluation workload is built so the static order is expensive: the
databases carry more uncertain atoms than the ``max_atoms`` cap (exact
is cost-refused after a preflight), the queries are unions (the lifted
safe-plan engine mismatches), and the quantity is reliability, where
Karp-Luby and Monte-Carlo sit in the *same* additive guarantee tier
(Corollary 5.5) — so a calibrated model may legally move the cheap
Hoeffding sampler ahead of Karp-Luby's grounding + union sampling.

Results go to ``BENCH_costmodel.json`` at the repo root; ``pass`` is
true when the calibrated arm beats the static arm on total wall-clock
and every case still selects an engine whose forecast (``plan_chain``)
matches the executed selection.

``--smoke`` is the CI lane: a tiny calibration fit plus checks that
(a) analyze-vs-run agreement holds on every smoke case, and (b) the
median predicted-vs-observed error of the fitted model stays inside a
10x band (|log10 ratio| <= 1).

Usage::

    python benchmarks/bench_costmodel.py [--repeats 3] [--cases 12]
    python benchmarks/bench_costmodel.py --smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.kernels import clear_caches
from repro.logic.evaluator import FOQuery
from repro.runtime.budget import Budget
from repro.runtime.costmodel import calibrate, plan_chain, plan_features
from repro.runtime.executor import run_with_fallback
from repro.util.errors import FallbackExhausted
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

# Unions and a k-ary query: outside the safe-plan fragment, so the
# static chain burns its exact-tier attempts before sampling.
EVAL_QUERIES = [
    ("exists x. S(x) | (exists y. E(x, y) & S(y))", []),
    ("exists x. exists y. E(x, y) & S(y) | exists x. S(x)", []),
    ("exists y. E(x, y) | S(x)", ["x"]),
]

EVAL_BUDGET_ATOMS = 16  # below every eval db's atom count: exact refuses


def _eval_cases(count: int, epsilon: float, delta: float):
    cases = []
    for index in range(count):
        rng = make_rng(500 + index)
        db = random_unreliable_database(
            rng, size=6, relations={"E": 2, "S": 1}, density=0.6,
            uncertain_fraction=1.0,
        )
        assert len(db.uncertain_atoms()) > EVAL_BUDGET_ATOMS
        text, free = EVAL_QUERIES[index % len(EVAL_QUERIES)]
        cases.append(
            {
                "query": FOQuery(text, free),
                "db": db,
                "epsilon": epsilon,
                "delta": delta,
                "seed": index,
            }
        )
    return cases


def _run_arm(cases, model, repeats: int):
    """Total wall-clock over the workload, median of ``repeats``."""
    totals = []
    details = []
    for _ in range(repeats):
        clear_caches()
        details = []
        start = time.perf_counter()
        for case in cases:
            case_start = time.perf_counter()
            result = run_with_fallback(
                case["db"],
                case["query"],
                budget=Budget(max_atoms=EVAL_BUDGET_ATOMS),
                epsilon=case["epsilon"],
                delta=case["delta"],
                rng=case["seed"],
                cost_model=model,
            )
            details.append(
                {
                    "engine": result.engine,
                    "attempts": [a.engine for a in result.attempts],
                    "seconds": round(time.perf_counter() - case_start, 6),
                }
            )
        totals.append(time.perf_counter() - start)
    return statistics.median(totals), details


def _agreement(cases, model):
    """Fraction of cases where plan_chain's pick matches run's engine."""
    agreed = 0
    for case in cases:
        plan = plan_chain(
            case["db"],
            case["query"],
            budget=Budget(max_atoms=EVAL_BUDGET_ATOMS),
            epsilon=case["epsilon"],
            delta=case["delta"],
            cost_model=model,
        )
        try:
            result = run_with_fallback(
                case["db"],
                case["query"],
                budget=Budget(max_atoms=EVAL_BUDGET_ATOMS),
                epsilon=case["epsilon"],
                delta=case["delta"],
                rng=case["seed"],
                cost_model=model,
            )
            selected = result.engine
        except FallbackExhausted:
            selected = None
        agreed += plan.selected == selected
    return agreed / len(cases)


def _prediction_errors(cases, model):
    """|log10(observed / predicted)| for the engine each case selects."""
    errors = []
    for case in cases:
        features = plan_features(
            case["db"], case["query"],
            epsilon=case["epsilon"], delta=case["delta"],
        )
        start = time.perf_counter()
        result = run_with_fallback(
            case["db"],
            case["query"],
            budget=Budget(max_atoms=EVAL_BUDGET_ATOMS),
            epsilon=case["epsilon"],
            delta=case["delta"],
            rng=case["seed"],
            cost_model=model,
        )
        observed = max(
            result.attempts[-1].elapsed, time.perf_counter() - start, 1e-7
        )
        predicted = model.predict_seconds(result.engine, features)
        if predicted > 0 and predicted != float("inf"):
            import math

            errors.append(abs(math.log10(observed / predicted)))
    return errors


def measure(cases_count: int, repeats: int, epsilon: float, delta: float):
    clear_caches()
    train_start = time.perf_counter()
    model = calibrate(seed=0, repeats=2)
    train_seconds = time.perf_counter() - train_start

    cases = _eval_cases(cases_count, epsilon, delta)
    static_s, static_details = _run_arm(cases, None, repeats)
    calibrated_s, calibrated_details = _run_arm(cases, model, repeats)
    agreement = _agreement(cases, model)

    ok = calibrated_s < static_s and agreement == 1.0
    return {
        "benchmark": "costmodel",
        "workload": (
            f"{cases_count} union/k-ary reliability cases, n=6 dbs, "
            f"max_atoms={EVAL_BUDGET_ATOMS}, eps={epsilon}, delta={delta}"
        ),
        "calibrated_engines": sorted(model.engines),
        "train_seconds": round(train_seconds, 3),
        "static_total_s": round(static_s, 6),
        "calibrated_total_s": round(calibrated_s, 6),
        "speedup": round(static_s / calibrated_s, 2),
        "analyze_run_agreement": agreement,
        "static_cases": static_details,
        "calibrated_cases": calibrated_details,
        "pass": ok,
    }


def smoke() -> int:
    """CI lane: tiny fit, analyze/run agreement, 10x prediction band."""
    clear_caches()
    model = calibrate(seed=0, repeats=1)
    if not model.engines:
        print("FAIL: calibration workload fitted no engine")
        return 1
    cases = _eval_cases(4, epsilon=0.2, delta=0.2)
    agreement = _agreement(cases, model)
    errors = _prediction_errors(cases, model)
    median_error = statistics.median(errors) if errors else float("inf")
    result = {
        "benchmark": "costmodel-smoke",
        "calibrated_engines": sorted(model.engines),
        "analyze_run_agreement": agreement,
        "median_abs_log10_error": round(median_error, 3),
        "threshold_band": 1.0,
        "pass": agreement == 1.0 and median_error <= 1.0,
    }
    print(json.dumps(result, indent=2))
    if not result["pass"]:
        print(
            "FAIL: analyze/run disagreement or predictions outside the "
            "10x band on the smoke workload"
        )
        return 1
    print("smoke OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cases", type=int, default=12)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--delta", type=float, default=0.05)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI workload; exit nonzero when the fitted model "
        "misforecasts the selection or misses the 10x band",
    )
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_costmodel.json"
        ),
    )
    parser.add_argument(
        "--history",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"
        ),
        help="trajectory store for schema-versioned records",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip appending to the trajectory store",
    )
    args = parser.parse_args()
    if args.smoke:
        return smoke()
    result = measure(args.cases, args.repeats, args.epsilon, args.delta)
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {args.out}")
    if not args.no_history:
        from repro.bench.convert import convert_costmodel
        from repro.bench.history import History

        count = History(args.history).append_all(
            convert_costmodel(result, source="script")
        )
        print(f"appended {count} record(s) to {args.history}")
    return 0 if result["pass"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
