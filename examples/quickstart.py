#!/usr/bin/env python
"""Quickstart: build an unreliable database and measure query reliability.

Covers the core workflow of the library in ~60 lines:

1. build a finite relational structure (the *observed* database);
2. attach per-atom error probabilities (Definition 2.1 of the paper);
3. compute exact reliabilities for queries in different fragments;
4. fall back to randomized estimators when exact computation is too
   expensive (Corollary 5.5 and Theorem 5.12).

Run:  python examples/quickstart.py
"""

import logging
import random
from fractions import Fraction

from repro import (
    Atom,
    FOQuery,
    StructureBuilder,
    UnreliableDatabase,
    expected_error,
    is_absolutely_reliable,
    padded_reliability,
    reliability,
    reliability_additive,
    truth_probability,
)


def main() -> None:
    # 1. The observed database: people and a "Follows" graph.
    builder = StructureBuilder(["ann", "bob", "cat", "dan"])
    builder.relation("Follows", 2)
    builder.relation("Verified", 1)
    for edge in [("ann", "bob"), ("bob", "cat"), ("cat", "dan"), ("dan", "ann")]:
        builder.add("Follows", edge)
    builder.add("Verified", ("ann",)).add("Verified", ("cat",))
    observed = builder.build()

    # 2. Error probabilities: the crawler that produced "Follows" misses
    #    or invents edges 5% of the time; "Verified" flags are solid
    #    except for dan, whose status is disputed.
    mu = {}
    for atom in observed.atoms():
        if atom.relation == "Follows":
            mu[atom] = Fraction(1, 20)
    mu[Atom("Verified", ("dan",))] = Fraction(1, 4)
    db = UnreliableDatabase(observed, mu)

    print(f"database: {observed}")
    print(f"uncertain atoms: {len(db.uncertain_atoms())}")
    print()

    # 3a. A quantifier-free query: the Follows table itself.
    #     Proposition 3.1: exact reliability in polynomial time.
    table = FOQuery("Follows(x, y)", ["x", "y"])
    print(f"R[Follows(x, y)]          = {reliability(db, table)}")

    # 3b. A conjunctive (existential) query: some verified user follows
    #     another verified user.  Exact via grounded-DNF Shannon expansion.
    pair = FOQuery("exists x y. Verified(x) & Follows(x, y) & Verified(y)")
    print(f"nu[verified pair exists]  = {truth_probability(db, pair)}")
    print(f"R[verified pair exists]   = {reliability(db, pair)}")
    print(f"H[verified pair exists]   = {expected_error(db, pair)}")

    # 3c. Absolute reliability (Section 5): can we trust the observed
    #     answer unconditionally?
    print(f"absolutely reliable?      = {is_absolutely_reliable(db, pair)}")
    print()

    # 4a. Corollary 5.5: additive randomized estimate for the same query.
    rng = random.Random(2026)
    estimate = reliability_additive(db, pair, epsilon=0.02, delta=0.05, rng=rng)
    print(
        f"Cor. 5.5 estimate         = {estimate.value:.4f}"
        f"  ({estimate.samples} Karp-Luby samples)"
    )

    # 4b. Theorem 5.12: the xi-padding estimator works for *any*
    #     polynomial-time query, here a forall/exists alternation that
    #     Corollary 5.5 cannot touch.
    everyone_followed = FOQuery("forall x. exists y. Follows(y, x)")
    exact = reliability(db, everyone_followed)
    padded = padded_reliability(
        db, everyone_followed, epsilon=0.05, delta=0.05, rng=rng
    )
    print(f"R[everyone followed]      = {exact} (exact)")
    print(
        f"Thm 5.12 estimate         = {padded.value:.4f}"
        f"  ({padded.samples} world samples)"
    )


if __name__ == "__main__":
    # Engine failures are logged, not swallowed: a configured handler
    # makes the failing example attributable in scripted runs.
    logging.basicConfig(
        level=logging.INFO, format="%(levelname)s %(name)s: %(message)s"
    )
    try:
        main()
    except Exception:
        logging.getLogger("repro.examples.quickstart").exception(
            "quickstart example failed"
        )
        raise SystemExit(1)
