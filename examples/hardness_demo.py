#!/usr/bin/env python
"""The hardness results, live: Propositions 3.2 and Lemma 5.9.

This example runs the paper's two lower-bound reductions forwards:

1. #MONOTONE-2SAT -> expected error of a fixed conjunctive query
   (Proposition 3.2): we count satisfying assignments of random 2-CNFs
   *through* the reliability engine and watch exact computation slow
   down exponentially while the Karp-Luby FPTRAS stays put;
2. 4-colourability -> absolute reliability of a fixed existential query
   (Lemma 5.9): deciding whether a query answer is *perfectly* reliable
   is as hard as graph colouring.

Run:  python examples/hardness_demo.py
"""

import logging
import random
import time
from fractions import Fraction

from repro.logic.conjunctive import hardness_query
from repro.propositional.karp_luby import karp_luby
from repro.reductions.fourcolouring import (
    four_colourable_via_absolute_reliability,
    is_four_colourable,
)
from repro.reductions.monotone2sat import (
    count_satisfying_assignments,
    encode_monotone_2cnf,
    sat_count_via_expected_error,
)
from repro.reliability.grounding import (
    ground_existential_to_dnf,
    grounding_probabilities,
)
from repro.workloads.graphs import complete_graph, gnp_graph
from repro.workloads.random_cnf import random_monotone_2cnf


def proposition_32() -> None:
    print("=== Proposition 3.2: #MONOTONE-2SAT via query reliability ===")
    rng = random.Random(3)
    # The FPTRAS approximates nu(psi) = P[assignment falsifies] with
    # *relative* error, so the column it certifies is the number of
    # falsifying assignments nu(psi) * 2^m, shown next to its true value.
    print(f"{'vars':>5} {'clauses':>8} {'#SAT':>8} {'via H_psi':>10} "
          f"{'#falsify':>9} {'FPTRAS':>9} {'rel err':>8} "
          f"{'exact (s)':>10} {'FPTRAS (s)':>11}")
    for variables in (6, 9, 12, 15):
        formula = random_monotone_2cnf(rng, variables, variables)
        brute = count_satisfying_assignments(formula)

        start = time.perf_counter()
        via_reliability = sat_count_via_expected_error(formula)
        exact_seconds = time.perf_counter() - start

        db = encode_monotone_2cnf(formula)
        grounding = ground_existential_to_dnf(
            db, hardness_query().to_formula()
        )
        probs = grounding_probabilities(db, grounding.dnf)
        start = time.perf_counter()
        run = karp_luby(grounding.dnf, probs, 0.05, 0.05, random.Random(0))
        kl_seconds = time.perf_counter() - start

        falsifying = 2**variables - brute
        kl_falsifying = run.estimate * 2**variables
        rel_err = abs(kl_falsifying - falsifying) / falsifying

        print(
            f"{variables:>5} {variables:>8} {brute:>8} {via_reliability:>10} "
            f"{falsifying:>9} {kl_falsifying:>9.1f} {rel_err:>8.3f} "
            f"{exact_seconds:>10.3f} {kl_seconds:>11.3f}"
        )
    print(
        "note: the exact columns are doing #P-hard work; the FPTRAS\n"
        "approximates the falsifying-assignment count with bounded\n"
        "relative error in time polynomial in m.\n"
    )


def lemma_59() -> None:
    print("=== Lemma 5.9: 4-colourability = non-absolute-reliability ===")
    print(f"{'graph':<14} {'4-colourable':>13} {'AR fails':>9} {'agree':>6}")
    rng = random.Random(4)
    cases = [
        ("K4", complete_graph(4)),
        ("K5", complete_graph(5)),
        ("G(7, 0.4)", gnp_graph(rng, 7, 0.4)),
        ("G(7, 0.8)", gnp_graph(rng, 7, 0.8)),
    ]
    for name, (nodes, edges) in cases:
        if not edges:
            continue
        colourable = is_four_colourable(nodes, edges)
        via_ar = four_colourable_via_absolute_reliability(nodes, edges)
        print(
            f"{name:<14} {str(colourable):>13} {str(via_ar):>9} "
            f"{str(colourable == via_ar):>6}"
        )
    print(
        "\ndeciding AR_psi for the fixed existential non-4-colouring query\n"
        "answers an NP-complete question, so AR_psi is coNP-hard."
    )


def main() -> None:
    proposition_32()
    lemma_59()


if __name__ == "__main__":
    # Engine failures are logged, not swallowed: a configured handler
    # makes the failing example attributable in scripted runs.
    logging.basicConfig(
        level=logging.INFO, format="%(levelname)s %(name)s: %(message)s"
    )
    try:
        main()
    except Exception:
        logging.getLogger("repro.examples.hardness_demo").exception(
            "hardness_demo example failed"
        )
        raise SystemExit(1)
