"""Warm-start smoke: two processes, one persistent cache, zero recompiles.

This is the CI cache-warm-smoke lane (and a runnable example): generate
a small unreliable database, then run the same ``python -m repro run``
query in two *separate* subprocesses that share one ``--cache-dir``.
The first (cold) process must compile — its stats show
``kernels.cache.misses`` and ``kernels.cache.persist.stores`` — and the
second (warm) process must answer the same exact value from disk alone:
``kernels.cache.persist.hits`` present, ``kernels.cache.misses``
absent.  A warm process that recompiles anything fails the lane; so
does any drift in the reported reliability.

Run it directly::

    PYTHONPATH=src python examples/warm_start_smoke.py
"""

import os
import re
import subprocess
import sys
import tempfile

from repro.relational.encoding import encode_unreliable_database
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

QUERY = "exists x y. E(x, y) & E(y, x)"


def run_once(db_path: str, cache_dir: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "run",
            db_path,
            QUERY,
            "--engine-chain",
            "exact",
            "--cache-dir",
            cache_dir,
            "--stats",
        ],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"repro run failed ({proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return proc.stdout


def counter(output: str, name: str) -> int:
    match = re.search(rf"^{re.escape(name)}\s+(\d+)$", output, re.MULTILINE)
    return int(match.group(1)) if match else 0


def answer_line(output: str) -> str:
    for line in output.splitlines():
        if line.startswith("reliability"):
            # Drop the wall-clock suffix; only the value must agree.
            return line.split(" in ")[0]
    raise SystemExit(f"no reliability line in output:\n{output}")


def main() -> int:
    # Seed 20 yields a database whose self-join reliability is a
    # non-trivial fraction (175959/262144) — a constant-folded answer
    # would let a broken cache slip through on value equality alone.
    rng = make_rng(20)
    db = random_unreliable_database(
        rng, size=4, relations={"E": 2}, density=0.4, error="1/8",
        uncertain_fraction=0.4,
    )
    with tempfile.TemporaryDirectory() as workdir:
        db_path = os.path.join(workdir, "smoke.db")
        with open(db_path, "w") as handle:
            handle.write(encode_unreliable_database(db))
        cache_dir = os.path.join(workdir, "cache")

        cold = run_once(db_path, cache_dir)
        warm = run_once(db_path, cache_dir)

    cold_misses = counter(cold, "kernels.cache.misses")
    cold_stores = counter(cold, "kernels.cache.persist.stores")
    warm_hits = counter(warm, "kernels.cache.persist.hits")
    warm_misses = counter(warm, "kernels.cache.misses")

    failures = []
    if cold_misses == 0:
        failures.append("cold process reported no compile misses")
    if cold_stores == 0:
        failures.append("cold process persisted nothing")
    if warm_hits == 0:
        failures.append("warm process reported no persist hits")
    if warm_misses != 0:
        failures.append(
            f"warm process recompiled: kernels.cache.misses={warm_misses}"
        )
    if answer_line(cold) != answer_line(warm):
        failures.append(
            f"answers drifted: {answer_line(cold)!r} vs {answer_line(warm)!r}"
        )

    print(f"cold: misses={cold_misses} stores={cold_stores}")
    print(f"warm: persist hits={warm_hits} misses={warm_misses}")
    print(answer_line(warm))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("warm-start smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
