#!/usr/bin/env python
"""Beyond the reliability number: which facts should we re-check first?

Reliability (the paper's headline quantity) says *how much* to trust an
answer; influence analysis says *why* and *what to do about it*.  This
example builds a supplier/shipment database with uncertain facts, asks a
conjunctive availability query, and then:

1. ranks the uncertain atoms by their share of the answer's fragility
   (Birnbaum importance weighted by atom variance);
2. simulates re-verifying the top-ranked fact (setting its error to 0)
   and measures how much the reliability actually improves;
3. contrasts with re-verifying a low-influence fact — barely any gain.

Also shown: the lifted (safe-plan) engine computing exact probabilities
in polynomial time for the hierarchical query, and the relational
algebra front-end compiling to the same query.

Run:  python examples/influence_analysis.py
"""

import logging
import random
from fractions import Fraction

from repro import (
    Atom,
    StructureBuilder,
    UnreliableDatabase,
    atom_influence,
    most_fragile_atoms,
    reliability,
)
from repro.logic.algebra import rel
from repro.logic.conjunctive import ConjunctiveQuery
from repro.reliability.lifted import is_safe, lifted_probability


def main() -> None:
    suppliers = ["acme", "blue", "core"]
    parts = ["bolt", "gear"]
    builder = StructureBuilder(suppliers + parts)
    builder.relation("Supplies", 2)   # supplier supplies part
    builder.relation("Audited", 1)    # supplier passed the audit
    builder.add("Supplies", ("acme", "bolt"))
    builder.add("Supplies", ("blue", "bolt"))
    builder.add("Supplies", ("blue", "gear"))
    builder.add("Audited", ("acme",))
    builder.add("Audited", ("blue",))
    observed = builder.build()

    mu = {
        Atom("Supplies", ("acme", "bolt")): Fraction(1, 5),
        Atom("Supplies", ("blue", "bolt")): Fraction(1, 3),
        Atom("Supplies", ("blue", "gear")): Fraction(1, 4),
        Atom("Audited", ("acme",)): Fraction(1, 10),
        Atom("Audited", ("blue",)): Fraction(1, 2),
        Atom("Audited", ("core",)): Fraction(1, 8),
    }
    db = UnreliableDatabase(observed, mu)

    # The query, written in relational algebra and compiled to FO:
    expression = (
        rel("Audited", "s").join(rel("Supplies", "s", "p")).project("p")
    )
    availability = ConjunctiveQuery.from_text(
        "exists s p. Audited(s) & Supplies(s, p)"
    )
    print("query: some audited supplier supplies something")
    print(f"  algebra form: {expression!r}")
    print(f"  safe (hierarchical, no self-joins): {is_safe(availability)}")
    print(f"  lifted P[holds] = {float(lifted_probability(db, availability)):.4f}")

    base = reliability(db, availability.to_formula())
    print(f"  reliability: {float(base):.4f}")
    print()

    # Influence ranking.
    print("fragility ranking (influence x atom variance):")
    ranking = most_fragile_atoms(db, availability.to_formula(), limit=6)
    for atom, score in ranking:
        print(f"  {str(atom):<30} score {float(score):.4f}")
    print()

    # Re-verify the most fragile fact vs a marginal one.
    top_atom = ranking[0][0]
    bottom_atom = ranking[-1][0]
    for label, atom in (("most", top_atom), ("least", bottom_atom)):
        fixed = db.with_errors({atom: 0})
        improved = reliability(fixed, availability.to_formula())
        print(
            f"re-verifying the {label}-fragile fact {atom}: "
            f"R {float(base):.4f} -> {float(improved):.4f} "
            f"(gain {float(improved - base):+.4f})"
        )
    print()
    print(
        "takeaway: the influence ranking turns a reliability score into "
        "a prioritised re-verification worklist."
    )


if __name__ == "__main__":
    # Engine failures are logged, not swallowed: a configured handler
    # makes the failing example attributable in scripted runs.
    logging.basicConfig(
        level=logging.INFO, format="%(levelname)s %(name)s: %(message)s"
    )
    try:
        main()
    except Exception:
        logging.getLogger("repro.examples.influence_analysis").exception(
            "influence_analysis example failed"
        )
        raise SystemExit(1)
