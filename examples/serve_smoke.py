"""Serve smoke: boot the batch server end-to-end and check its answers.

This is the CI serve-smoke lane (and a runnable example): generate a
small unreliable database, write a mixed request batch — safe and
harder queries, tight and loose deadlines, one hopeless cost cap, one
malformed line — then boot ``python -m repro serve`` as a real
subprocess and assert that every submitted line comes back as exactly
one structured JSON response with a known code, that the easy requests
succeed, and that the hopeless ones are refused (not hung, not
crashed).  The server must drain the whole batch within the harness
timeout or the lane fails.

Run it directly::

    PYTHONPATH=src python examples/serve_smoke.py
"""

import json
import os
import subprocess
import sys
import tempfile

from repro.relational.encoding import encode_unreliable_database
from repro.serve import RESPONSE_CODES
from repro.util.rng import make_rng
from repro.workloads.random_db import random_unreliable_database

SAFE = "exists x. exists y. E(x, y) & S(y)"
BOOLEAN = "exists x. S(x)"


def build_requests():
    lines = []
    for index in range(10):
        payload = {
            "id": f"q{index}",
            "query": SAFE if index % 2 else BOOLEAN,
            "tenant": "even" if index % 2 == 0 else "odd",
            "seed": index,
            "epsilon": 0.3,
            "delta": 0.3,
            "deadline": 30.0,
        }
        lines.append(json.dumps(payload))
    # A deadline no engine forecast can meet: refused up front.
    lines.append(
        json.dumps(
            {"id": "tight", "query": SAFE, "deadline": 1e-9, "seed": 99}
        )
    )
    # A hopeless cost cap with the exact engine pinned: cost_refused.
    lines.append(
        json.dumps(
            {"id": "capped", "query": SAFE, "chain": ["exact"], "max_cost": 2}
        )
    )
    # A malformed line: must come back `invalid`, not crash the server.
    lines.append("{this is not json")
    return lines


def main() -> int:
    db = random_unreliable_database(
        make_rng(42), size=4, relations={"E": 2, "S": 1}, density=0.5
    )
    requests = build_requests()
    with tempfile.TemporaryDirectory() as tmp:
        db_path = os.path.join(tmp, "db.txt")
        with open(db_path, "w") as handle:
            handle.write(encode_unreliable_database(db))
        requests_path = os.path.join(tmp, "requests.jsonl")
        with open(requests_path, "w") as handle:
            handle.write("\n".join(requests) + "\n")
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                db_path,
                "--input",
                requests_path,
                "--pool",
                "3",
                "--queue",
                "16",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
    print(completed.stderr, end="", file=sys.stderr)
    if completed.returncode != 0:
        print(f"FAIL: serve exited {completed.returncode}")
        print(completed.stdout)
        return 1

    responses = [json.loads(line) for line in completed.stdout.splitlines()]
    failures = []
    if len(responses) != len(requests):
        failures.append(
            f"{len(requests)} submitted lines, {len(responses)} responses"
        )
    for response in responses:
        if response["code"] not in RESPONSE_CODES:
            failures.append(f"unknown code in {response}")
    by_id = {response["id"]: response for response in responses}
    for index in range(10):
        response = by_id.get(f"q{index}")
        if response is None or response["code"] != "ok":
            failures.append(f"q{index} did not complete ok: {response}")
        elif not 0.0 <= response["value"] <= 1.0:
            failures.append(f"q{index} value out of range: {response}")
    if by_id.get("tight", {}).get("code") != "deadline_unmeetable":
        failures.append(f"tight: {by_id.get('tight')}")
    if by_id.get("capped", {}).get("code") != "cost_refused":
        failures.append(f"capped: {by_id.get('capped')}")
    if by_id.get(None, {}).get("code") != "invalid":
        failures.append(f"malformed line: {by_id.get(None)}")

    if failures:
        print("FAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"OK: {len(responses)} structured responses "
        f"({sum(1 for r in responses if r['code'] == 'ok')} ok, "
        "hopeless requests refused, malformed line answered)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
