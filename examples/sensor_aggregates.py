#!/usr/bin/env python
"""Metafinite databases: reliability of SQL-style aggregate queries.

Section 6 of the paper extends the model to *functional* databases —
finite sets with functions into numbers — and queries built from
aggregates (multiset operations), the relational-theory picture of SQL.
Here a fleet of temperature sensors reports integer readings that may be
off by one unit; we quantify how trustworthy various aggregates are.

Takeaways the run makes visible:

* SUM is fragile (any single jitter changes it);
* MAX is robust (only jitter at the top matters);
* COUNT-over-threshold sits in between (only near-threshold sensors
  matter);
* the quantifier-free per-sensor query gets the exact polynomial-time
  treatment of Theorem 6.2(i).

Run:  python examples/sensor_aggregates.py
"""

import logging
import random

from repro.metafinite.reliability import (
    estimate_metafinite_reliability,
    metafinite_reliability,
    metafinite_reliability_qf,
)
from repro.workloads.scenarios import sensor_scenario


def main() -> None:
    rng = random.Random(5)
    scenario = sensor_scenario(rng, sensors=8)
    db = scenario.db
    print(f"scenario: {scenario.description}")
    observed = db.observed
    readings = {s: observed.value("reading", (s,)) for (s,) in
                ((u,) for u in observed.universe)}
    print(f"observed readings: {readings}")
    print(f"worlds with positive probability: {db.support_size()}")
    print()

    print(f"{'query':<10} {'observed':>9} {'exact R':>10} {'MC R':>9}")
    for name in ("total", "hottest", "alarms"):
        query = scenario.queries[name]
        value = query.evaluate(observed, ())
        exact = float(metafinite_reliability(db, query))
        estimate = estimate_metafinite_reliability(db, query, rng, samples=4000)
        print(f"{name:<10} {str(value):>9} {exact:>10.4f} {estimate:>9.4f}")
    print()

    local = scenario.queries["local"]
    fast = metafinite_reliability_qf(db, local)
    print(
        "per-sensor margin query (aggregate-free): "
        f"R = {float(fast):.4f} via the Theorem 6.2(i) polynomial engine"
    )
    print()
    print(
        "reading the table: SUM's reliability is lowest because every\n"
        "sensor's jitter flips it; MAX only reacts to jitter at the\n"
        "maximum; the alarm COUNT only to sensors straddling the\n"
        "threshold."
    )


if __name__ == "__main__":
    # Engine failures are logged, not swallowed: a configured handler
    # makes the failing example attributable in scripted runs.
    logging.basicConfig(
        level=logging.INFO, format="%(levelname)s %(name)s: %(message)s"
    )
    try:
        main()
    except Exception:
        logging.getLogger("repro.examples.sensor_aggregates").exception(
            "sensor_aggregates example failed"
        )
        raise SystemExit(1)
