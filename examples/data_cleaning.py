#!/usr/bin/env python
"""Dirty-data analytics: reliability of join queries over integrated data.

A sales database was integrated from a modern order system (error rate
1/50), a legacy import (1/8) and a hand-maintained VIP spreadsheet
(1/10).  Every analyst query silently inherits these error rates; this
example quantifies exactly how much.

Shown along the way:

* per-fact provenance-dependent error probabilities;
* exact reliability of a quantifier-free "report" query (Prop. 3.1);
* exact vs FPTRAS reliability of conjunctive join queries (Thm 5.4);
* a per-customer breakdown: which rows of the answer are trustworthy;
* absolute-reliability screening (Section 5) to find the answers that
  need no caveats at all.

Run:  python examples/data_cleaning.py
"""

import logging
import random
from fractions import Fraction

from repro import FOQuery, reliability, truth_probability, wrong_probability
from repro.reliability.absolute import is_absolutely_reliable
from repro.reliability.approx import reliability_additive
from repro.workloads.scenarios import dirty_orders_scenario


def main() -> None:
    rng = random.Random(11)
    scenario = dirty_orders_scenario(
        rng, customers=6, products=4, vip_fraction=0.5
    )
    db = scenario.db
    print(f"scenario: {scenario.description}")
    orders = len(db.structure.relation("Ordered"))
    vips = len(db.structure.relation("Vip"))
    print(f"observed: {orders} order rows, {vips} VIP flags")
    print()

    # --- the raw table (quantifier-free, Prop. 3.1) --------------------- #
    pairs = scenario.queries["pairs"]
    print(f"R[Ordered(c, p)] = {float(reliability(db, pairs)):.4f} (exact, poly-time)")
    print()

    # --- Boolean join: did any VIP order anything? ---------------------- #
    vip_order = scenario.queries["vip_order"]
    observed = vip_order.evaluate(db.structure, ())
    exact_r = reliability(db, vip_order)
    print(f"observed answer: {'yes' if observed else 'no'}, some VIP ordered")
    print(f"  exact reliability:    {float(exact_r):.6f}")
    estimate = reliability_additive(db, vip_order, 0.05, 0.05, rng)
    print(f"  Cor. 5.5 estimate:    {estimate.value:.6f}")
    print(f"  absolutely reliable:  {is_absolutely_reliable(db, vip_order)}")
    print()

    # --- per-customer drill-down ---------------------------------------- #
    who = scenario.queries["who_vip"]
    print("per-customer wrong-probabilities for 'VIP with an order':")
    observed_rows = who.answers(db.structure)
    for customer in sorted(u for u in db.structure.universe if str(u).startswith("c")):
        wrong = wrong_probability(db, who, (customer,))
        marker = "*" if (customer,) in observed_rows else " "
        print(f"  {marker} {customer}: P[wrong] = {float(wrong):.4f}")
    print("  (* = in the observed answer)")
    print()

    # --- sensitivity: what if the legacy import were cleaned? ----------- #
    cleaned = db.with_errors(
        {
            atom: Fraction(1, 50)
            for atom in db.uncertain_atoms()
            if atom.relation == "Ordered"
        }
    )
    print("counterfactual: cleaning the legacy import to the modern rate")
    print(f"  R[vip_order] before: {float(reliability(db, vip_order)):.6f}")
    print(f"  R[vip_order] after:  {float(reliability(cleaned, vip_order)):.6f}")


if __name__ == "__main__":
    # Engine failures are logged, not swallowed: a configured handler
    # makes the failing example attributable in scripted runs.
    logging.basicConfig(
        level=logging.INFO, format="%(levelname)s %(name)s: %(message)s"
    )
    try:
        main()
    except Exception:
        logging.getLogger("repro.examples.data_cleaning").exception(
            "data_cleaning example failed"
        )
        raise SystemExit(1)
