#!/usr/bin/env python
"""Network monitoring: how much can we trust queries on probed link data?

A monitoring system probes links between routers; each probe is wrong
with a small probability, so the link-state table is an unreliable
database in exactly the paper's sense.  This example asks three
operationally meaningful questions and attaches reliability numbers to
each answer, using the estimator whose guarantees match the query's
fragment:

* "is there local redundancy?" — an existential query, estimated with
  the Theorem 5.4 FPTRAS and cross-checked exactly on a small network;
* "can the gateway reach the backup site?" — Datalog reachability, a
  polynomial-time query beyond first-order logic: Theorem 5.12's
  xi-padding estimator applies where the FPTRAS cannot;
* "is any router isolated?" — a forall/exists query, also Theorem 5.12
  territory, with the Hamming-sampling baseline for the k-ary view.

Run:  python examples/network_monitoring.py
"""

import logging
import random

from repro import reliability, truth_probability
from repro.reliability.approx import existential_probability
from repro.reliability.montecarlo import estimate_reliability_hamming
from repro.reliability.padding import padded_truth_probability
from repro.workloads.scenarios import network_monitoring_scenario


def main() -> None:
    rng = random.Random(7)
    scenario = network_monitoring_scenario(rng, routers=6, link_probability=0.4)
    db = scenario.db
    print(f"scenario: {scenario.description}")
    links = len(db.structure.relation("Link")) // 2
    print(f"observed links: {links}, uncertain atoms: {len(db.uncertain_atoms())}")
    print()

    # --- existential query: local redundancy --------------------------- #
    redundant = scenario.queries["redundant"]
    observed_answer = redundant.evaluate(db.structure, ())
    print(f"observed: redundancy {'present' if observed_answer else 'absent'}")

    estimate = existential_probability(
        db, redundant.formula, epsilon=0.05, delta=0.05, rng=rng
    )
    exact = truth_probability(db, redundant)
    print(f"  nu(redundant): FPTRAS {estimate.value:.4f} vs exact {float(exact):.4f}")
    print(f"  reliability of the observed answer: {float(reliability(db, redundant)):.4f}")
    print()

    # --- Datalog reachability: beyond first-order ---------------------- #
    reach = scenario.queries["reach"]
    source, target = "r0", f"r{db.universe_size - 1}"
    observed_reach = reach.evaluate(db.structure, (source, target))
    print(
        f"observed: {source} {'reaches' if observed_reach else 'cannot reach'} "
        f"{target}"
    )
    padded = padded_truth_probability(
        db, reach, epsilon=0.05, delta=0.05, rng=rng, args=(source, target)
    )
    wrong = 1.0 - padded.value if observed_reach else padded.value
    print(
        f"  P[that answer is wrong] ~ {wrong:.4f}"
        f"  (Thm 5.12 padding, {padded.samples} world samples)"
    )

    hamming = estimate_reliability_hamming(db, reach, rng, samples=1500)
    print(f"  reliability of the full reachability table: {hamming:.4f}"
          "  (Hamming sampling)")
    print()

    # --- forall/exists: no isolated router ----------------------------- #
    isolated = scenario.queries["isolated"]
    observed_answer = isolated.evaluate(db.structure, ())
    print(f"observed: {'no router isolated' if observed_answer else 'isolation detected'}")
    padded = padded_truth_probability(
        db, isolated, epsilon=0.05, delta=0.05, rng=rng
    )
    wrong = 1.0 - padded.value if observed_answer else padded.value
    print(f"  P[that answer is wrong] ~ {wrong:.4f}  (Thm 5.12)")
    print()
    print(
        "interpretation: a reliability of r means the observed answer "
        "agrees with the true network in a fraction r of the probability "
        "mass of possible actual networks (per answer tuple)."
    )


if __name__ == "__main__":
    # Engine failures are logged, not swallowed: a configured handler
    # makes the failing example attributable in scripted runs.
    logging.basicConfig(
        level=logging.INFO, format="%(levelname)s %(name)s: %(message)s"
    )
    try:
        main()
    except Exception:
        logging.getLogger("repro.examples.network_monitoring").exception(
            "network_monitoring example failed"
        )
        raise SystemExit(1)
