"""Relational schemas: relation symbols and vocabularies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

from repro.util.errors import VocabularyError


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A relation symbol: a name and an arity.

    Arity 0 is allowed and models a propositional fact (a Boolean flag on
    the database); its single "tuple" is the empty tuple.
    """

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise VocabularyError(f"invalid relation name {self.name!r}")
        if self.arity < 0:
            raise VocabularyError(
                f"relation {self.name!r} has negative arity {self.arity}"
            )

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


SymbolLike = Union[RelationSymbol, Tuple[str, int]]


def _as_symbol(spec: SymbolLike) -> RelationSymbol:
    if isinstance(spec, RelationSymbol):
        return spec
    name, arity = spec
    return RelationSymbol(name, arity)


class Vocabulary:
    """An immutable set of relation symbols with unique names.

    The vocabulary determines the *format* of a database in the paper's
    sense: two databases are comparable (and a possible-world space makes
    sense) only when they share a vocabulary and a universe.
    """

    __slots__ = ("_symbols",)

    def __init__(self, symbols: Iterable[SymbolLike]):
        table: Dict[str, RelationSymbol] = {}
        for spec in symbols:
            symbol = _as_symbol(spec)
            existing = table.get(symbol.name)
            if existing is not None and existing != symbol:
                raise VocabularyError(
                    f"conflicting declarations for {symbol.name!r}: "
                    f"{existing} vs {symbol}"
                )
            table[symbol.name] = symbol
        self._symbols: Mapping[str, RelationSymbol] = dict(
            sorted(table.items())
        )

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._symbols.values())

    def __len__(self) -> int:
        return len(self._symbols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(tuple(self._symbols.values()))

    def __repr__(self) -> str:
        inner = ", ".join(str(symbol) for symbol in self)
        return f"Vocabulary({inner})"

    def symbol(self, name: str) -> RelationSymbol:
        """Look up a relation symbol by name."""
        try:
            return self._symbols[name]
        except KeyError:
            raise VocabularyError(f"unknown relation {name!r}") from None

    def arity(self, name: str) -> int:
        """Arity of the named relation."""
        return self.symbol(name).arity

    def names(self) -> Tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(self._symbols)

    def extend(self, symbols: Iterable[SymbolLike]) -> "Vocabulary":
        """A new vocabulary with additional symbols (names must be fresh).

        Used by the padding construction of Theorem 5.12, which adjoins a
        fresh unary relation ``R`` and two fresh constants to the database.
        """
        additions = [_as_symbol(spec) for spec in symbols]
        for symbol in additions:
            if symbol.name in self._symbols:
                raise VocabularyError(
                    f"cannot extend: {symbol.name!r} already declared"
                )
        return Vocabulary(list(self) + additions)
