"""Canonical text encodings of structures and unreliable databases.

The paper measures complexity "in terms of the size of (an appropriate
encoding of) the unreliable database".  This module provides that
encoding: a deterministic, line-oriented text format, plus its parser.
Benchmarks use ``encoded_size`` as the input-size measure, so reported
scaling curves are against the same quantity the theorems talk about.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Tuple

from repro.relational.atoms import Atom
from repro.relational.schema import RelationSymbol, Vocabulary
from repro.relational.structure import Structure
from repro.util.errors import VocabularyError


def encode_structure(structure: Structure) -> str:
    """Serialise a structure to the canonical text format.

    Format::

        universe <e1> <e2> ...
        relation <name> <arity>
        tuple <name> <e1> ... <ek>

    Elements are rendered with ``repr`` — universes of ints and strs
    round-trip exactly.
    """
    lines: List[str] = []
    lines.append("universe " + " ".join(repr(e) for e in structure.universe))
    for symbol in structure.vocabulary:
        lines.append(f"relation {symbol.name} {symbol.arity}")
    for atom in structure.true_atoms():
        rendered = " ".join(repr(a) for a in atom.args)
        lines.append(f"tuple {atom.relation} {rendered}".rstrip())
    return "\n".join(lines) + "\n"


def _parse_element(token: str) -> Any:
    # Elements were rendered with repr; ints and quoted strings round-trip.
    try:
        return int(token)
    except ValueError:
        pass
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "'\"":
        return token[1:-1]
    raise VocabularyError(f"cannot parse universe element {token!r}")


def decode_structure(text: str) -> Structure:
    """Parse the canonical text format back into a structure."""
    universe: Tuple[Any, ...] = ()
    symbols: List[RelationSymbol] = []
    rows: Dict[str, List[Tuple[Any, ...]]] = {}
    saw_universe = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "universe":
            universe = tuple(_parse_element(tok) for tok in parts[1:])
            saw_universe = True
        elif kind == "relation":
            if len(parts) != 3:
                raise VocabularyError(f"line {lineno}: bad relation line {line!r}")
            symbols.append(RelationSymbol(parts[1], int(parts[2])))
            rows.setdefault(parts[1], [])
        elif kind == "tuple":
            name = parts[1]
            if name not in rows:
                raise VocabularyError(
                    f"line {lineno}: tuple for undeclared relation {name!r}"
                )
            rows[name].append(tuple(_parse_element(tok) for tok in parts[2:]))
        else:
            raise VocabularyError(f"line {lineno}: unknown directive {kind!r}")
    if not saw_universe:
        raise VocabularyError("encoding is missing the universe line")
    return Structure(Vocabulary(symbols), universe, rows)


def encode_error_function(mu: Dict[Atom, Fraction]) -> str:
    """Serialise an error-probability function (one ``error`` line per atom)."""
    lines = []
    for atom in sorted(mu, key=repr):
        prob = mu[atom]
        rendered = " ".join(repr(a) for a in atom.args)
        lines.append(
            f"error {atom.relation} {prob.numerator}/{prob.denominator}"
            + (f" {rendered}" if rendered else "")
        )
    return "\n".join(lines) + ("\n" if lines else "")


def decode_error_function(text: str) -> Dict[Atom, Fraction]:
    """Parse ``error`` lines back into an atom -> probability mapping."""
    mu: Dict[Atom, Fraction] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] != "error":
            continue
        if len(parts) < 3:
            raise VocabularyError(f"line {lineno}: bad error line {line!r}")
        relation = parts[1]
        probability = Fraction(parts[2])
        args = tuple(_parse_element(tok) for tok in parts[3:])
        mu[Atom(relation, args)] = probability
    return mu


def encode_unreliable_database(db) -> str:
    """Serialise a full unreliable database ``(A, mu)`` to one document."""
    return encode_structure(db.structure) + encode_error_function(
        db.error_table()
    )


def decode_unreliable_database(text: str):
    """Parse a document with structure and ``error`` lines into a database."""
    from repro.reliability.unreliable import UnreliableDatabase

    structural = "\n".join(
        line
        for line in text.splitlines()
        if not line.strip().startswith("error")
    )
    structure = decode_structure(structural)
    mu = decode_error_function(text)
    return UnreliableDatabase(structure, mu)


def encoded_size(structure: Structure, mu: Dict[Atom, Fraction]) -> int:
    """Length of the full encoding — the paper's input-size measure."""
    return len(encode_structure(structure)) + len(encode_error_function(mu))
