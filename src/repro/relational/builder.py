"""A fluent builder for relational structures.

Structures are immutable; assembling one tuple-by-tuple through
``with_atom`` would be quadratic.  The builder accumulates mutable state
and produces the structure once.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple

from repro.relational.schema import RelationSymbol, Vocabulary
from repro.relational.structure import Structure
from repro.util.errors import VocabularyError


class StructureBuilder:
    """Accumulate relations and produce an immutable :class:`Structure`.

    Example::

        builder = StructureBuilder(["a", "b", "c"])
        builder.relation("E", 2)
        builder.add("E", ("a", "b"))
        builder.add("E", ("b", "c"))
        graph = builder.build()
    """

    def __init__(self, universe: Sequence[Any]):
        self._universe: Tuple[Any, ...] = tuple(universe)
        self._symbols: List[RelationSymbol] = []
        self._rows: Dict[str, Set[Tuple[Any, ...]]] = {}

    def relation(self, name: str, arity: int) -> "StructureBuilder":
        """Declare a relation symbol; returns self for chaining."""
        symbol = RelationSymbol(name, arity)
        for existing in self._symbols:
            if existing.name == name:
                if existing != symbol:
                    raise VocabularyError(
                        f"conflicting declarations for {name!r}"
                    )
                return self
        self._symbols.append(symbol)
        self._rows[name] = set()
        return self

    def add(self, name: str, row: Sequence[Any]) -> "StructureBuilder":
        """Add one tuple to a declared relation; returns self."""
        if name not in self._rows:
            raise VocabularyError(f"relation {name!r} not declared")
        self._rows[name].add(tuple(row))
        return self

    def add_all(
        self, name: str, rows: Iterable[Sequence[Any]]
    ) -> "StructureBuilder":
        """Add many tuples to a declared relation; returns self."""
        for row in rows:
            self.add(name, row)
        return self

    def fact(self, name: str) -> "StructureBuilder":
        """Declare and assert a 0-ary (propositional) relation."""
        self.relation(name, 0)
        return self.add(name, ())

    def build(self) -> Structure:
        """Produce the immutable structure."""
        return Structure(Vocabulary(self._symbols), self._universe, self._rows)


def graph_structure(
    nodes: Sequence[Any],
    edges: Iterable[Tuple[Any, Any]],
    symmetric: bool = False,
    extra_unary: Sequence[str] = (),
) -> Structure:
    """Convenience: a structure ``(V, E, ...)`` encoding a (di)graph.

    ``symmetric=True`` closes the edge set under reversal, giving an
    undirected graph in the usual relational encoding.  ``extra_unary``
    declares additional empty unary relations (e.g. the colour predicates
    ``R1``, ``R2`` of Lemma 5.9).
    """
    builder = StructureBuilder(nodes)
    builder.relation("E", 2)
    for u, v in edges:
        builder.add("E", (u, v))
        if symmetric:
            builder.add("E", (v, u))
    for name in extra_unary:
        builder.relation(name, 1)
    return builder.build()
