"""Ground atoms ``R(a1, ..., ak)`` — the unit of unreliability.

In the paper's model, the error probability function ``mu`` is defined on
*atomic statements about the database*: one per relation symbol ``R`` and
tuple over the universe.  :class:`Atom` is that object, and
:func:`all_atoms` enumerates the full atom space of a structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Iterator, Sequence, Tuple

from repro.relational.schema import Vocabulary
from repro.util.errors import VocabularyError


@dataclass(frozen=True, order=True)
class Atom:
    """A ground atomic statement: relation name plus a tuple of elements."""

    relation: str
    args: Tuple[Any, ...]

    def __str__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.relation}({inner})"

    @property
    def arity(self) -> int:
        return len(self.args)


def make_atom(relation: str, args: Sequence[Any]) -> Atom:
    """Build an :class:`Atom`, normalising ``args`` to a tuple."""
    return Atom(relation, tuple(args))


def all_atoms(vocabulary: Vocabulary, universe: Sequence[Any]) -> Iterator[Atom]:
    """Enumerate every ground atom over the vocabulary and universe.

    The order is deterministic: relations sorted by name, argument tuples
    in lexicographic universe order.  For a universe of size ``n`` the atom
    space has ``sum(n ** arity)`` elements — polynomial in ``n`` for a
    fixed vocabulary, which is why guessing all atom truth values is a
    polynomially-branching step in Theorem 4.2's #P machine.
    """
    elements = tuple(universe)
    for symbol in vocabulary:
        for args in product(elements, repeat=symbol.arity):
            yield Atom(symbol.name, args)


def atom_count(vocabulary: Vocabulary, universe_size: int) -> int:
    """Size of the atom space without materialising it."""
    if universe_size < 0:
        raise VocabularyError(f"negative universe size {universe_size}")
    return sum(universe_size**symbol.arity for symbol in vocabulary)
