"""Immutable finite relational structures."""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.relational.atoms import Atom, all_atoms
from repro.relational.schema import Vocabulary
from repro.util.errors import VocabularyError

TupleOf = Tuple[Any, ...]


class Structure:
    """A finite relational structure (a database instance).

    Immutable: update methods (:meth:`with_atom`, :meth:`flip`, ...) return
    new structures.  Immutability is what makes possible worlds cheap and
    safe to pass around — the possible-world space of an unreliable
    database is a set of values, not a set of mutable objects.

    Universe elements may be any hashable, orderable-by-repr values;
    integers and strings are typical.
    """

    __slots__ = ("_vocabulary", "_universe", "_universe_set", "_relations", "_hash")

    def __init__(
        self,
        vocabulary: Vocabulary,
        universe: Sequence[Any],
        relations: Optional[Mapping[str, Iterable[Sequence[Any]]]] = None,
    ):
        self._vocabulary = vocabulary
        self._universe: Tuple[Any, ...] = tuple(universe)
        self._universe_set = frozenset(self._universe)
        if len(self._universe_set) != len(self._universe):
            raise VocabularyError("universe contains duplicate elements")
        interp: Dict[str, FrozenSet[TupleOf]] = {
            symbol.name: frozenset() for symbol in vocabulary
        }
        if relations:
            for name, tuples in relations.items():
                symbol = vocabulary.symbol(name)
                rows = frozenset(tuple(row) for row in tuples)
                for row in rows:
                    self._check_row(symbol.name, symbol.arity, row)
                interp[name] = rows
        self._relations: Mapping[str, FrozenSet[TupleOf]] = interp
        self._hash: Optional[int] = None

    def _check_row(self, name: str, arity: int, row: TupleOf) -> None:
        if len(row) != arity:
            raise VocabularyError(
                f"tuple {row!r} has length {len(row)}, but {name} has arity {arity}"
            )
        for element in row:
            if element not in self._universe_set:
                raise VocabularyError(
                    f"tuple {row!r} for {name} mentions {element!r}, "
                    "which is not in the universe"
                )

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    @property
    def universe(self) -> Tuple[Any, ...]:
        return self._universe

    def __len__(self) -> int:
        """Cardinality ``n`` of the universe (the paper's ``n``)."""
        return len(self._universe)

    def relation(self, name: str) -> FrozenSet[TupleOf]:
        """The interpretation of the named relation."""
        try:
            return self._relations[name]
        except KeyError:
            raise VocabularyError(f"unknown relation {name!r}") from None

    def holds(self, atom: Atom) -> bool:
        """Truth value of a ground atom in this structure."""
        return atom.args in self.relation(atom.relation)

    def atoms(self) -> Iterator[Atom]:
        """All ground atoms of this structure's format (true and false)."""
        return all_atoms(self._vocabulary, self._universe)

    def true_atoms(self) -> Iterator[Atom]:
        """Ground atoms that hold in this structure."""
        for name in self._vocabulary.names():
            for row in sorted(self._relations[name], key=repr):
                yield Atom(name, row)

    # ------------------------------------------------------------------ #
    # functional updates
    # ------------------------------------------------------------------ #

    def with_atom(self, atom: Atom, value: bool) -> "Structure":
        """A copy of this structure with ``atom`` set to ``value``."""
        symbol = self._vocabulary.symbol(atom.relation)
        self._check_row(symbol.name, symbol.arity, atom.args)
        current = self._relations[atom.relation]
        if (atom.args in current) == value:
            return self
        rows = current | {atom.args} if value else current - {atom.args}
        return self._replace(atom.relation, rows)

    def flip(self, atom: Atom) -> "Structure":
        """A copy with the truth value of ``atom`` negated.

        Flipping atoms is exactly the paper's error event ``Wrong(R a)``.
        """
        return self.with_atom(atom, not self.holds(atom))

    def flip_all(self, atoms: Iterable[Atom]) -> "Structure":
        """Flip several atoms at once (more efficient than repeated flips)."""
        by_relation: Dict[str, set] = {}
        for atom in atoms:
            by_relation.setdefault(atom.relation, set()).add(atom.args)
        result = self
        for name, rows_to_flip in by_relation.items():
            symbol = self._vocabulary.symbol(name)
            for row in rows_to_flip:
                self._check_row(symbol.name, symbol.arity, row)
            current = result._relations[name]
            rows = current.symmetric_difference(rows_to_flip)
            result = result._replace(name, rows)
        return result

    def with_relation(
        self, name: str, tuples: Iterable[Sequence[Any]]
    ) -> "Structure":
        """A copy with the named relation replaced wholesale."""
        symbol = self._vocabulary.symbol(name)
        rows = frozenset(tuple(row) for row in tuples)
        for row in rows:
            self._check_row(symbol.name, symbol.arity, row)
        return self._replace(name, rows)

    def _replace(self, name: str, rows: FrozenSet[TupleOf]) -> "Structure":
        clone = object.__new__(Structure)
        clone._vocabulary = self._vocabulary
        clone._universe = self._universe
        clone._universe_set = self._universe_set
        relations = dict(self._relations)
        relations[name] = frozenset(rows)
        clone._relations = relations
        clone._hash = None
        return clone

    def expand(
        self,
        extra_symbols: Vocabulary,
        extra_universe: Sequence[Any] = (),
        relations: Optional[Mapping[str, Iterable[Sequence[Any]]]] = None,
    ) -> "Structure":
        """Expand with fresh symbols and optional fresh universe elements.

        Implements the database modification of Theorem 5.12: adjoin a new
        relation and new constants while keeping every old interpretation.
        """
        vocabulary = self._vocabulary.extend(list(extra_symbols))
        universe = self._universe + tuple(extra_universe)
        combined: Dict[str, Iterable[Sequence[Any]]] = {
            name: self._relations[name] for name in self._vocabulary.names()
        }
        if relations:
            for name, tuples in relations.items():
                if name in self._vocabulary:
                    raise VocabularyError(
                        f"expand cannot override existing relation {name!r}"
                    )
                combined[name] = tuples
        return Structure(vocabulary, universe, combined)

    def restrict(
        self,
        universe: Sequence[Any],
        vocabulary: Optional[Vocabulary] = None,
    ) -> "Structure":
        """The reduct to a sub-universe (and optionally a sub-vocabulary).

        Tuples mentioning dropped elements are discarded.  Used by the
        Theorem 5.12 padding gadget to evaluate the original query on the
        original universe, so that adjoining the fresh constants ``c, d``
        cannot change the query's meaning (the paper leaves this step
        implicit).
        """
        keep = frozenset(universe)
        if not keep <= self._universe_set:
            raise VocabularyError("restriction universe is not a subset")
        vocab = vocabulary if vocabulary is not None else self._vocabulary
        relations = {}
        for symbol in vocab:
            rows = self.relation(symbol.name)
            relations[symbol.name] = [
                row for row in rows if all(e in keep for e in row)
            ]
        return Structure(vocab, tuple(universe), relations)

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._vocabulary == other._vocabulary
            and self._universe == other._universe
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self._vocabulary,
                    self._universe,
                    tuple(sorted(self._relations.items())),
                )
            )
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for name in self._vocabulary.names():
            rows = self._relations[name]
            parts.append(f"{name}={{{len(rows)} tuples}}")
        return f"Structure(|A|={len(self)}, {', '.join(parts)})"

    def same_format(self, other: "Structure") -> bool:
        """True when both structures share vocabulary and universe.

        "Format" is the paper's word: the possible-world space ``Omega(D)``
        ranges over databases of the same format as the observed one.
        """
        return (
            self._vocabulary == other._vocabulary
            and self._universe == other._universe
        )

    def difference_atoms(self, other: "Structure") -> Tuple[Atom, ...]:
        """Atoms on which the two structures disagree (sorted).

        ``len(a.difference_atoms(b))`` is the Hamming distance between the
        structures viewed as bit vectors over the atom space.
        """
        if not self.same_format(other):
            raise VocabularyError("structures have different formats")
        disagreements = []
        for name in self._vocabulary.names():
            for row in self._relations[name] ^ other._relations[name]:
                disagreements.append(Atom(name, row))
        return tuple(sorted(disagreements, key=repr))
