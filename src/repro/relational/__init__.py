"""Finite relational structures — the paper's notion of a database.

A database in Grädel–Gurevich–Hirsch is a finite relational structure: a
finite universe together with a finite vocabulary of relation symbols, each
interpreted as a set of tuples over the universe.  This subpackage provides:

* :class:`~repro.relational.schema.RelationSymbol` and
  :class:`~repro.relational.schema.Vocabulary` — the schema layer;
* :class:`~repro.relational.atoms.Atom` — ground atomic statements
  ``R(a1, ..., ak)``, the unit of unreliability in the paper's model;
* :class:`~repro.relational.structure.Structure` — an immutable finite
  relational structure with functional update (flip an atom, add/remove
  tuples), equality, hashing and canonical encoding;
* :mod:`~repro.relational.builder` — a fluent builder for structures.
"""

from repro.relational.schema import RelationSymbol, Vocabulary
from repro.relational.atoms import Atom, all_atoms, atom_count
from repro.relational.structure import Structure
from repro.relational.builder import StructureBuilder

__all__ = [
    "RelationSymbol",
    "Vocabulary",
    "Atom",
    "all_atoms",
    "atom_count",
    "Structure",
    "StructureBuilder",
]
