"""Adaptive sequential sampling with empirical-Bernstein stopping.

Corollary 5.5 sizes the Karp-Luby and Monte-Carlo estimators from the
worst-case Hoeffding bound, so a fixed-budget run burns the whole
budget even when the empirical variance certifies the (epsilon, delta)
guarantee long before.  This module adds the sequential alternative:

* :func:`adaptive_mean` — the controller.  It draws samples in fixed
  :data:`ADAPTIVE_BLOCK_BITS`-wide blocks through the bit-parallel
  kernels, maintains both a Hoeffding and an empirical-Bernstein
  (Maurer-Pontil) confidence interval, and stops at the first
  checkpoint of a canonical geometric grid where the requested
  guarantee holds.  Sequential validity comes from a union bound:
  check ``t`` runs both bounds at level ``delta / (2 t (t + 1))``, so
  the total failure probability over every checkpoint is below
  ``delta`` — the stopped answer carries the *same* (epsilon, delta)
  contract as the exhausted one.

* Determinism.  Block ``j`` is always ``ADAPTIVE_BLOCK_BITS`` samples
  wide (the last block truncates to the worst-case budget) and is
  seeded by ``batch_rng(base, j)``; the stopping grid is a pure
  function of the worst-case budget.  The answer is therefore a pure
  function of (plan, seed, worst-case budget, epsilon, delta, mode) —
  bit-identical no matter how the driver groups block evaluation,
  whether tracing is on, or where the run is resumed.

* :class:`CostSurrogate` — the online feedback half.  Every stopped
  run records ``drawn / worst`` for its engine kind; the surrogate
  keeps an exponentially-weighted estimate of that shrink fraction and
  :func:`surrogate_adjusted` wraps a :class:`~repro.runtime.costmodel.
  CostModel` so predicted seconds for the sampling engines scale by
  the expected fraction.  ``plan_chain`` and ``run_with_fallback``
  wrap the model identically, so analyze/run agreement survives
  adaptivity; serve admission sees cheaper expected costs and admits
  more under the same deadline.  The surrogate is staleness-guarded:
  a kind that has not observed anything recently (or ever) falls back
  to the worst-case fraction 1.0.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro import obs
from repro.runtime.budget import checkpoint
from repro.runtime.costmodel import CostModel

#: Fixed width of one adaptive sampling block.  Every block except the
#: last is exactly this many samples; the block index alone determines
#: its stream (``batch_rng(base, index)``), which is what makes the
#: stopped answer independent of how blocks are grouped.
ADAPTIVE_BLOCK_BITS = 256

#: Stopping modes: ``additive`` certifies ``|estimate - mean| <=
#: epsilon``; ``relative`` certifies ``|estimate - mean| <= epsilon *
#: mean`` (via the lower confidence bound, so it never stops while the
#: mean could still be zero).
MODES = ("additive", "relative")

#: Stop reasons recorded on :class:`AdaptiveRun` and in the
#: ``adaptive.stop`` event.
REASONS = ("eb", "hoeffding", "exhausted")


@dataclass(frozen=True)
class AdaptiveRun:
    """Outcome of one sequential run.

    ``mean`` is the plain sample mean of the drawn blocks (callers
    rescale it to their estimator's units); ``half_width`` is the
    confidence half-width at the stopping checkpoint (worst-case
    ``inf`` when the budget was exhausted before the first check could
    certify anything, which still satisfies the contract because the
    exhausted budget is the Hoeffding worst case).
    """

    mean: float
    drawn: int
    worst: int
    blocks: int
    checks: int
    reason: str
    half_width: float

    @property
    def saved(self) -> int:
        return self.worst - self.drawn


def block_layout(worst: int) -> Tuple[Tuple[int, int], ...]:
    """The fixed ``(index, width)`` blocks covering ``worst`` samples."""
    if worst <= 0:
        raise ValueError("worst-case budget must be positive")
    blocks = []
    start = 0
    index = 0
    while start < worst:
        width = min(ADAPTIVE_BLOCK_BITS, worst - start)
        blocks.append((index, width))
        start += width
        index += 1
    return tuple(blocks)


def check_grid(total_blocks: int) -> Tuple[int, ...]:
    """Cumulative block counts at which stopping is checked.

    Geometric doubling (1, 2, 4, ...) plus the final block: O(log n)
    checks keep the union-bound penalty small while still stopping
    within a factor ~2 of the oracle stopping time.
    """
    if total_blocks <= 0:
        raise ValueError("need at least one block")
    grid = []
    count = 1
    while count < total_blocks:
        grid.append(count)
        count <<= 1
    grid.append(total_blocks)
    return tuple(grid)


def sequential_delta(delta: float, check: int) -> float:
    """The per-bound failure budget at 1-indexed checkpoint ``check``.

    Two bounds (Hoeffding and empirical-Bernstein) are evaluated per
    checkpoint, so each gets ``delta / (2 t (t + 1))``; the sum over
    all checkpoints and both bounds is below ``delta``.
    """
    return delta / (2.0 * check * (check + 1))


def hoeffding_half_width(drawn: int, delta_t: float) -> float:
    """Two-sided Hoeffding half-width for range-[0, 1] samples."""
    return math.sqrt(math.log(2.0 / delta_t) / (2.0 * drawn))


def bernstein_half_width(
    drawn: int, variance: float, delta_t: float
) -> float:
    """Empirical-Bernstein (Maurer-Pontil) half-width, range [0, 1]."""
    log_term = math.log(3.0 / delta_t)
    return (
        math.sqrt(2.0 * variance * log_term / drawn)
        + 3.0 * log_term / drawn
    )


def _sample_variance(total: float, total_sq: float, drawn: int) -> float:
    if drawn < 2:
        return 0.0
    mean = total / drawn
    return max(0.0, (total_sq - drawn * mean * mean) / (drawn - 1))


def adaptive_mean(
    draw_block: Callable[[int, int], Tuple[float, float]],
    worst: int,
    epsilon: float,
    delta: float,
    mode: str = "additive",
    kind: str = "montecarlo",
    chunk_blocks: int = 1,
) -> AdaptiveRun:
    """Sequentially estimate a [0, 1]-valued mean to (epsilon, delta).

    ``draw_block(index, width)`` returns the block's ``(sum, sum of
    squares)`` of per-sample values in [0, 1]; it must be a pure
    function of its arguments (the kernel workers are, via
    ``batch_rng``).  ``worst`` is the fixed-budget worst case — the
    controller never draws more, so an adaptive run is never more
    expensive than the run it replaces.

    ``chunk_blocks`` bounds how many blocks are evaluated between
    budget checkpoints.  It is a *schedule* knob only: stopping
    decisions happen exactly at the canonical grid regardless, so the
    returned run is bit-identical for every value.
    """
    if epsilon <= 0.0:
        raise ValueError("epsilon must be positive")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    if mode not in MODES:
        raise ValueError(f"unknown adaptive mode {mode!r}")
    if chunk_blocks < 1:
        raise ValueError("chunk_blocks must be >= 1")

    layout = block_layout(worst)
    grid = check_grid(len(layout))
    trace = obs.enabled()

    total = 0.0
    total_sq = 0.0
    drawn = 0
    blocks_done = 0
    checks = 0
    reason = "exhausted"
    half_width = math.inf
    stopped = False

    grid_index = 0
    position = 0
    with obs.span(
        "adaptive.run", kind=kind, mode=mode, worst=worst
    ):
        while position < len(layout) and not stopped:
            # Never evaluate past the next grid point: checks must land
            # exactly on the canonical grid for schedule independence.
            limit = min(
                position + chunk_blocks, grid[grid_index], len(layout)
            )
            chunk = layout[position:limit]
            checkpoint(samples=sum(width for _, width in chunk))
            for index, width in chunk:
                block_total, block_sq = draw_block(index, width)
                total += block_total
                total_sq += block_sq
                drawn += width
                blocks_done += 1
            position = limit
            if position != grid[grid_index]:
                continue
            grid_index += 1
            checks += 1
            delta_t = sequential_delta(delta, checks)
            mean = total / drawn
            variance = _sample_variance(total, total_sq, drawn)
            hoeffding = hoeffding_half_width(drawn, delta_t)
            bernstein = bernstein_half_width(drawn, variance, delta_t)
            half_width = min(hoeffding, bernstein)
            if trace:
                obs.event(
                    "adaptive.batch",
                    kind=kind,
                    samples=drawn,
                    estimate=mean,
                    half_width=half_width,
                )
            if mode == "additive":
                stopped = half_width <= epsilon
            else:
                lower = mean - half_width
                stopped = lower > 0.0 and half_width <= epsilon * lower
            if stopped:
                reason = (
                    "eb" if bernstein <= hoeffding else "hoeffding"
                )

    mean = total / drawn
    run = AdaptiveRun(
        mean=mean,
        drawn=drawn,
        worst=worst,
        blocks=blocks_done,
        checks=checks,
        reason=reason,
        half_width=half_width,
    )
    obs.inc("adaptive.runs")
    obs.inc("adaptive.batches", blocks_done)
    obs.inc("adaptive.samples_drawn", drawn)
    obs.inc("adaptive.samples_saved", run.saved)
    if run.saved > 0:
        obs.inc("adaptive.stopped_early")
    if trace:
        obs.event(
            "adaptive.stop",
            kind=kind,
            reason=run.reason,
            samples=drawn,
            saved=run.saved,
            batches=blocks_done,
            half_width=half_width,
            estimate=mean,
        )
    active_surrogate().observe(kind, drawn, worst)
    return run


# ---------------------------------------------------------------------------
# Estimator adapters: the glue between the engines' compiled kernel
# plans and the generic controller.  Each consumes exactly one
# ``getrandbits(64)`` from the caller's rng — the same determinism
# contract as the fixed-budget drivers.
# ---------------------------------------------------------------------------


def adaptive_truth_estimate(
    plan,
    rng,
    worst: int,
    epsilon: float,
    delta: float,
    chunk_blocks: int = 1,
) -> float:
    """Adaptive additive estimate of a compiled truth-probability plan."""
    from repro.kernels.sampling import truth_batch_hits

    base = rng.getrandbits(64)

    def draw(index: int, width: int) -> Tuple[float, float]:
        hits = float(truth_batch_hits(plan, base, index, width))
        # Bernoulli values: the sum of squares is the sum itself.
        return hits, hits

    run = adaptive_mean(
        draw,
        worst,
        epsilon,
        delta,
        mode="additive",
        kind="montecarlo",
        chunk_blocks=chunk_blocks,
    )
    estimate = run.mean
    return 1.0 - estimate if plan.negate else estimate


def adaptive_hamming_estimate(
    plan,
    rng,
    worst: int,
    epsilon: float,
    delta: float,
    chunk_blocks: int = 1,
) -> float:
    """Adaptive additive estimate of a compiled Hamming-reliability plan."""
    from repro.kernels.sampling import hamming_block_moments

    base = rng.getrandbits(64)
    cells = float(plan.cells)

    def draw(index: int, width: int) -> Tuple[float, float]:
        total, total_sq = hamming_block_moments(plan, base, index, width)
        return total / cells, total_sq / (cells * cells)

    run = adaptive_mean(
        draw,
        worst,
        epsilon,
        delta,
        mode="additive",
        kind="montecarlo",
        chunk_blocks=chunk_blocks,
    )
    return 1.0 - run.mean


def adaptive_kl_accumulate(
    kl_plan,
    rng,
    worst: int,
    epsilon: float,
    delta: float,
    chunk_blocks: int = 1,
) -> AdaptiveRun:
    """Adaptive relative estimate of the Karp-Luby coverage mean.

    Returns the raw :class:`AdaptiveRun`; the caller rescales ``mean``
    by the total clause weight.  The relative stop is taken on the
    coverage mean itself — the clause-weight factor cancels.
    """
    from repro.kernels.sampling import kl_block_moments

    base = rng.getrandbits(64)

    def draw(index: int, width: int) -> Tuple[float, float]:
        return kl_block_moments(kl_plan, base, index, width)

    return adaptive_mean(
        draw,
        worst,
        epsilon,
        delta,
        mode="relative",
        kind="karp_luby",
        chunk_blocks=chunk_blocks,
    )


# ---------------------------------------------------------------------------
# The online cost surrogate.
# ---------------------------------------------------------------------------

#: Exponential weight of the newest observation in the shrink-fraction
#: refit.
SURROGATE_ALPHA = 0.2
#: Shrink fractions are clamped to this floor: a surrogate may make a
#: sampling engine look cheap, never free.
SURROGATE_FLOOR = 0.05
#: A kind whose last observation is more than this many surrogate
#: observations old (counting every kind) is stale and reverts to the
#: worst-case fraction until it observes again.
SURROGATE_STALE_AFTER = 256


class CostSurrogate:
    """Exponentially-weighted online model of adaptive sample savings.

    For each engine kind (``karp_luby``, ``montecarlo``) it tracks the
    shrink fraction ``drawn / worst`` of completed adaptive runs and
    predicts the expected fraction of the worst-case budget a future
    run will actually draw.  Predictions are guarded: with no
    observations — or none recently (:data:`SURROGATE_STALE_AFTER`) —
    it returns the worst-case 1.0, so a cold or stale surrogate can
    only make forecasts *more* conservative, never optimistic.
    """

    def __init__(
        self,
        alpha: float = SURROGATE_ALPHA,
        floor: float = SURROGATE_FLOOR,
        stale_after: int = SURROGATE_STALE_AFTER,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.floor = floor
        self.stale_after = stale_after
        self._lock = threading.Lock()
        self._fractions: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._epochs: Dict[str, int] = {}
        self._epoch = 0

    def observe(self, kind: str, drawn: int, worst: int) -> None:
        """Record one completed adaptive run's shrink fraction."""
        if worst <= 0:
            return
        fraction = min(1.0, max(self.floor, drawn / worst))
        with self._lock:
            self._epoch += 1
            if kind in self._fractions:
                previous = self._fractions[kind]
                self._fractions[kind] = (
                    (1.0 - self.alpha) * previous + self.alpha * fraction
                )
            else:
                self._fractions[kind] = fraction
            self._counts[kind] = self._counts.get(kind, 0) + 1
            self._epochs[kind] = self._epoch
            refit = self._fractions[kind]
        obs.inc("adaptive.surrogate.observations")
        obs.gauge(f"adaptive.surrogate.fraction.{kind}", refit)

    def expected_fraction(self, kind: str) -> float:
        """Predicted ``drawn / worst`` for the next run of ``kind``."""
        with self._lock:
            if kind not in self._fractions:
                return 1.0
            if self._epoch - self._epochs[kind] > self.stale_after:
                return 1.0
            return self._fractions[kind]

    def observations(self, kind: Optional[str] = None) -> int:
        with self._lock:
            if kind is not None:
                return self._counts.get(kind, 0)
            return sum(self._counts.values())

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                kind: {
                    "fraction": self._fractions[kind],
                    "observations": float(self._counts[kind]),
                }
                for kind in sorted(self._fractions)
            }


_active_surrogate = CostSurrogate()
_surrogate_lock = threading.Lock()


def active_surrogate() -> CostSurrogate:
    """The process-wide surrogate adaptive runs report into."""
    return _active_surrogate


def set_surrogate(surrogate: CostSurrogate) -> CostSurrogate:
    """Install ``surrogate`` as the active one; returns the previous."""
    global _active_surrogate
    with _surrogate_lock:
        previous = _active_surrogate
        _active_surrogate = surrogate
    return previous


def reset_surrogate() -> CostSurrogate:
    """Install a fresh cold surrogate (tests; process hygiene)."""
    return set_surrogate(CostSurrogate())


@contextmanager
def use_surrogate(surrogate: CostSurrogate) -> Iterator[CostSurrogate]:
    """Scoped :func:`set_surrogate` — restores the previous on exit."""
    previous = set_surrogate(surrogate)
    try:
        yield surrogate
    finally:
        set_surrogate(previous)


#: Engine names whose predicted seconds scale with the surrogate's
#: expected shrink fraction — exactly the sampling engines the adaptive
#: controller can stop early.
ADJUSTED_ENGINES = ("karp_luby", "montecarlo")


class SurrogateAdjustedModel(CostModel):
    """A :class:`CostModel` whose sampling forecasts expect stopping.

    Wraps a base model: predicted seconds for the sampling engines are
    multiplied by the surrogate's expected shrink fraction; everything
    else — calibration provenance, chain ordering policy — delegates
    to :class:`CostModel` semantics via the adjusted predictions.
    ``plan_chain`` and ``run_with_fallback`` build this wrapper the
    same way, which is what keeps analyze/run agreement exact with
    adaptivity on.
    """

    __slots__ = ("base", "surrogate")

    def __init__(self, base: CostModel, surrogate: CostSurrogate):
        super().__init__(base.engines, base.source)
        self.base = base
        self.surrogate = surrogate

    def predict_seconds(self, engine: str, features) -> float:
        seconds = self.base.predict_seconds(engine, features)
        if engine in ADJUSTED_ENGINES:
            seconds *= self.surrogate.expected_fraction(engine)
        return seconds


def surrogate_adjusted(
    model: CostModel, surrogate: Optional[CostSurrogate] = None
) -> CostModel:
    """Wrap ``model`` with the (active) surrogate's expected stopping."""
    if surrogate is None:
        surrogate = active_surrogate()
    if isinstance(model, SurrogateAdjustedModel):
        return model
    return SurrogateAdjustedModel(model, surrogate)


def expected_samples(worst: int, kind: str) -> int:
    """The surrogate's expected draw count for a worst-case budget."""
    fraction = active_surrogate().expected_fraction(kind)
    return max(1, math.ceil(worst * fraction))
