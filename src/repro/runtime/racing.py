"""Speculative engine racing for the fallback executor.

The sequential executor walks its chain one engine at a time: a slow
Karp–Luby attempt burns its whole fair-share slice before Monte Carlo
even starts, though Corollary 5.5 gives both the same additive
guarantee on reliability.  Racing hedges instead: once the current
engine has consumed an ``overlap`` fraction of its fair-share slice,
the next engine in the chain launches *concurrently* (a thread plus the
existing cooperative checkpoints), and the race returns the first
answer whose guarantee tier is at least as strong as every contender
still running — an exact engine can preempt a sampler's answer, never
the reverse.

Mechanics, all built from existing runtime machinery:

* each racer runs under a :class:`~repro.runtime.budget.RacerBudget`
  (private consumption ledgers, a pre-partitioned sample headroom, an
  optional fair-share slice deadline) installed thread-locally, so
  concurrent attempts cannot interfere through the budget;
* cancellation is a :class:`~repro.runtime.budget.CancelToken` checked
  at every checkpoint — losers unwind through the ``BudgetExceeded``
  path the engines already have;
* sample headroom uses the *same* cumulative chain-order accounting
  :func:`repro.runtime.costmodel.plan_chain` simulates, which is what
  lets ``analyze --race`` forecast the winner of ``run --race``;
* the scheduler is pluggable: :class:`ThreadScheduler` races real
  threads on the wall clock, while the deterministic virtual-clock
  :class:`~repro.runtime.faults.VirtualScheduler` replays any scripted
  fault interleaving bit-for-bit (see docs/ROBUSTNESS.md).

Winner selection: when a racer finishes ``ok`` at tier rank ``r``,
every contender at rank ``>= r`` is cancelled (it could at best tie)
and all unlaunched engines are dropped; if no strictly stronger
contender is still running the answer wins immediately, otherwise it is
*held* — a stronger ``ok`` later preempts it, and when the last
strictly stronger contender fails, the held answer wins.  If every
racer fails, :class:`~repro.util.errors.FallbackExhausted` carries the
full attempt log, exactly like the sequential walk.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.runtime.budget import Budget, CancelToken, RacerBudget, apply
from repro.util.errors import (
    BudgetExceeded,
    CostRefused,
    FallbackExhausted,
    QueryError,
)

__all__ = [
    "DEFAULT_OVERLAP",
    "NOMINAL_SHARE_SECONDS",
    "GUARANTEE_RANK",
    "ThreadScheduler",
    "use_scheduler",
    "current_scheduler",
    "racer_scope",
    "race_sleep",
    "run_race",
]

#: Fraction of an engine's fair-share slice consumed before the next
#: engine launches speculatively (``--race`` with no value).
DEFAULT_OVERLAP = 0.5

#: Fair-share stand-in when the budget has no deadline: the stagger
#: between launches is ``overlap * NOMINAL_SHARE_SECONDS``.
NOMINAL_SHARE_SECONDS = 1.0

#: Guarantee tiers by strength rank (lower is stronger); mirrors
#: :data:`repro.runtime.executor.GUARANTEE_ORDER`.
GUARANTEE_RANK = {"exact": 0, "relative": 1, "additive": 2}

#: Real-mode grace period for joining cancelled losers before
#: abandoning their (daemon) threads, in seconds.  Joining a stalled
#: loser any longer would forfeit the wall-clock win racing exists for.
RECLAIM_GRACE_SECONDS = 0.1

#: Slice granularity of interruptible real-mode sleeps (``race_sleep``).
_SLEEP_QUANTUM = 0.02


# ---------------------------------------------------------------------- #
# schedulers
# ---------------------------------------------------------------------- #


class ThreadScheduler:
    """The production scheduler: real daemon threads on the wall clock.

    Completions are queued under a condition variable; :meth:`drain`
    joins finished racers with a bounded grace period and *abandons*
    (counts, leaves as daemons) any loser still stalled — typically one
    blocked in uninterruptible C-level work between checkpoints.
    """

    is_virtual = False

    def __init__(self):
        self._cond = threading.Condition()
        self._completions: List[int] = []
        self._threads: Dict[int, threading.Thread] = {}
        self._next_id = 0
        self._poked = False

    def now(self) -> float:
        return time.monotonic()

    def spawn(self, label: str, fn: Callable[[], None]) -> int:
        """Start ``fn`` on a daemon thread; returns its entity id."""
        entity = self._next_id
        self._next_id += 1

        def body():
            try:
                fn()
            finally:
                with self._cond:
                    self._completions.append(entity)
                    self._cond.notify_all()

        thread = threading.Thread(
            target=body, name=f"repro-racer-{entity}-{label}", daemon=True
        )
        self._threads[entity] = thread
        thread.start()
        return entity

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until a completion is queued (or ``timeout`` elapses).

        Also wakes on :meth:`poke` — the serve driver blocks here while
        its pool works, and a submission from another thread must be
        able to interrupt the wait even though no racer completed.
        """
        with self._cond:
            if self._completions or self._poked:
                self._poked = False
                return
            self._cond.wait(timeout)
            self._poked = False

    def poke(self) -> None:
        """Wake a driver blocked in :meth:`wait` (new work arrived).

        The poke is latched: a poke landing *between* two waits makes
        the next wait return immediately instead of being lost — a
        submission racing the driver's loop can never strand a request
        in the inbox until an unrelated completion.
        """
        with self._cond:
            self._poked = True
            self._cond.notify_all()

    def pop_completions(self, include_future: bool = False) -> List[int]:
        with self._cond:
            done, self._completions = self._completions, []
            return done

    def checkpoint(self) -> None:
        """Racer-side yield point: a no-op on real threads."""

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)

    def drain(self, entities: Sequence[int]) -> int:
        """Join ``entities`` within the grace budget; count the stalled."""
        abandoned = 0
        deadline = time.monotonic() + RECLAIM_GRACE_SECONDS
        for entity in entities:
            thread = self._threads.get(entity)
            if thread is None:
                continue
            thread.join(max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                abandoned += 1
        return abandoned


# Thread-local racer context: which scheduler (and cancel token) the
# current thread is racing under, consulted by race_sleep and installed
# for the duration of each racer body.
_context = threading.local()


def current_scheduler():
    """The scheduler the calling thread is racing under, or ``None``."""
    return getattr(_context, "scheduler", None)


class racer_scope:
    """Install the racer thread-local context for a worker body.

    Everything that makes an engine attempt cooperate with a scheduler
    — ``race_sleep`` routing, cancel-token checks inside scripted
    stalls, the executor's scheduler-aware clock — consults this
    context.  The racing executor installs it around each speculative
    attempt; the serve worker pool installs it around each scheduled
    query so a whole multi-query run is drivable by the deterministic
    virtual clock.  Scopes restore the previous context on exit, so
    they nest safely.
    """

    __slots__ = ("scheduler", "token", "_previous")

    def __init__(self, scheduler, token=None):
        self.scheduler = scheduler
        self.token = token
        self._previous = (None, None)

    def __enter__(self):
        self._previous = (
            getattr(_context, "scheduler", None),
            getattr(_context, "token", None),
        )
        _context.scheduler = self.scheduler
        _context.token = self.token
        return self

    def __exit__(self, *exc):
        _context.scheduler, _context.token = self._previous
        return False


def race_sleep(seconds: float) -> None:
    """A stall that cooperates with racing (used by ``SlowdownFault``).

    Outside a race this is ``time.sleep``.  Under the virtual-clock
    scheduler it advances the racer's virtual time (no real sleeping —
    scripted interleavings replay instantly).  Under real racing it
    sleeps in small slices, checking the cancel token between them, so
    a cancelled loser's stall is reclaimed within one quantum instead
    of after the full stall.
    """
    scheduler = current_scheduler()
    if scheduler is None:
        time.sleep(seconds)
        return
    if scheduler.is_virtual:
        scheduler.sleep(seconds)
        return
    token = getattr(_context, "token", None)
    end = time.monotonic() + seconds
    while True:
        if token is not None:
            token.check()
        remaining = end - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(remaining, _SLEEP_QUANTUM))


_forced_scheduler = None


class use_scheduler:
    """Scope a scheduler for subsequent races (tests: the virtual clock).

    ::

        scheduler = faults.VirtualScheduler(ticks={"exact": 0.01})
        with racing.use_scheduler(scheduler):
            result = run_with_fallback(db, query, race=True, ...)
    """

    def __init__(self, scheduler):
        self.scheduler = scheduler
        self._previous = None

    def __enter__(self):
        global _forced_scheduler
        self._previous = _forced_scheduler
        _forced_scheduler = self.scheduler
        return self.scheduler

    def __exit__(self, *exc):
        global _forced_scheduler
        _forced_scheduler = self._previous
        return False


# ---------------------------------------------------------------------- #
# the race
# ---------------------------------------------------------------------- #


class _Racer:
    """Mutable state of one speculative attempt."""

    __slots__ = (
        "index",
        "name",
        "rank",
        "entity",
        "token",
        "budget",
        "outcome",
        "detail",
        "counter",
        "answer",
        "error",
        "elapsed",
        "launched_at",
    )

    def __init__(self, index: int, name: str, rank: int):
        self.index = index
        self.name = name
        self.rank = rank
        self.entity: Optional[int] = None
        self.token = CancelToken()
        self.budget: Optional[RacerBudget] = None
        self.outcome: Optional[str] = None
        self.detail = ""
        self.counter = ""
        self.answer = None
        self.error: Optional[BaseException] = None
        self.elapsed = 0.0
        self.launched_at = 0.0


def _reserved_samples(
    db, query, quantity: str, epsilon: float, delta: float,
    name: str, budget: Budget, samples_used: int,
) -> int:
    """Predicted sample need of one racer — the reservation it claims.

    Reuses the *forecast* machinery of :mod:`repro.runtime.costmodel`
    verbatim, so the executor's cumulative chain-order reservation is
    byte-identical to the accounting ``plan_chain(race=...)`` simulates:
    that identity is what makes the racing forecast exact for
    ``max_samples`` budgets.
    """
    from repro.runtime import costmodel

    if name == "karp_luby":
        try:
            return costmodel._forecast_karp_luby(
                db, query, quantity, epsilon, delta, budget, samples_used
            )[2]
        except QueryError:
            return 0
    if name == "montecarlo":
        return costmodel._forecast_montecarlo(
            db, query, quantity, epsilon, delta, budget, samples_used
        )[2]
    return 0


def run_race(
    db,
    query,
    chain: Sequence[str],
    run_budget: Budget,
    quantity: str,
    epsilon: float,
    delta: float,
    rng_base: int,
    model,
    features,
    overlap: float,
    adaptive: bool = False,
):
    """Race ``chain`` speculatively; returns a ``RuntimeResult``.

    Called by :func:`repro.runtime.executor.run_with_fallback` after
    validation and cost-model ordering, inside the budget scope.
    ``rng_base`` seeds the per-attempt generators (the same derivation
    the sequential walk uses, so a race winner's value equals the value
    a sequential run of that engine would have produced).
    """
    import random

    from repro.runtime import costmodel
    from repro.runtime import executor as _executor

    scheduler = _forced_scheduler if _forced_scheduler is not None else ThreadScheduler()
    started = scheduler.now()
    chain = tuple(chain)
    total = len(chain)
    racers = [
        _Racer(i, name, GUARANTEE_RANK.get(
            costmodel.engine_guarantee(name, quantity), len(GUARANTEE_RANK)))
        for i, name in enumerate(chain)
    ]
    pending = deque(racers)
    by_entity: Dict[int, _Racer] = {}
    contenders: List[_Racer] = []   # launched, not finished, not cancelled
    running: List[_Racer] = []      # launched, not finished (incl. cancelled)
    completed: List[_Racer] = []    # in completion order
    held: Optional[_Racer] = None
    winner: Optional[_Racer] = None
    samples_reserved = 0
    next_launch_at = scheduler.now()

    def attempt_request(name: str):
        return _executor._Request(
            quantity, epsilon, delta,
            random.Random(f"{rng_base:x}:attempt:{name}"),
            adaptive,
        )

    def make_body(racer: _Racer, share: Optional[float], headroom: Optional[int]):
        request = attempt_request(racer.name)

        def body():
            racer_budget = RacerBudget(
                run_budget,
                racer.token,
                slice_seconds=share,
                sample_headroom=headroom,
                on_checkpoint=scheduler.checkpoint,
            )
            racer.budget = racer_budget
            scope = racer_scope(scheduler, racer.token)
            scope.__enter__()
            t0 = scheduler.now()
            try:
                with apply(racer_budget):
                    answer = _executor.ENGINES[racer.name](db, query, request)
                if racer.token.cancelled:
                    # Finished past its last checkpoint after losing the
                    # race: the answer is discarded, never merged.
                    racer.outcome = "cancelled"
                    racer.detail = racer.token.reason or "finished after cancellation"
                else:
                    racer.answer = answer
                    racer.outcome = "ok"
            except (CostRefused, BudgetExceeded, QueryError) as exc:
                if racer.token.cancelled:
                    racer.outcome = "cancelled"
                    racer.detail = racer.token.reason or str(exc)
                else:
                    racer.outcome, racer.counter = _executor._classify_failure(exc)
                    racer.detail = str(exc)
            except BaseException as exc:  # a genuine bug: carry to the driver
                racer.outcome = "crashed"
                racer.error = exc
            finally:
                racer.elapsed = scheduler.now() - t0
                scope.__exit__()

        return body

    def record_attempt(racer: _Racer) -> None:
        completed.append(racer)
        obs.inc("runtime.attempts")
        if racer.outcome == "ok":
            if features is not None:
                obs.event(
                    "runtime.attempt.cost",
                    engine=racer.name,
                    outcome="ok",
                    seconds=racer.elapsed,
                    **features,
                )
            if model is not None:
                _executor._record_prediction_error(
                    model, racer.name, features, racer.elapsed
                )
            return
        if racer.counter:
            obs.inc(racer.counter)
        if racer.outcome == "cancelled":
            obs.inc("runtime.race.cancelled")
        obs.inc("runtime.fallbacks")
        obs.event(
            "runtime.fallback",
            engine=racer.name,
            outcome=racer.outcome,
            detail=racer.detail,
        )
        if features is not None and racer.outcome in (
            "cost_refused", "budget_exceeded", "fragment_mismatch"
        ):
            obs.event(
                "runtime.attempt.cost",
                engine=racer.name,
                outcome=racer.outcome,
                seconds=racer.elapsed,
                **features,
            )

    def cancel(racer: _Racer, reason: str) -> None:
        if not racer.token.cancelled:
            racer.token.cancel(reason)
        if racer in contenders:
            contenders.remove(racer)

    def on_complete(racer: _Racer) -> None:
        nonlocal held, winner, next_launch_at
        if racer in running:
            running.remove(racer)
        if racer in contenders:
            contenders.remove(racer)
        if racer.outcome == "crashed":
            # Cancel everyone and re-raise from the driver: any
            # exception outside the fallback taxonomy is a genuine bug
            # and propagates, exactly as in the sequential walk.
            for other in running:
                other.token.cancel("sibling racer crashed")
            scheduler.drain([r.entity for r in running])
            raise racer.error
        if winner is not None:
            # The race is decided; late completions are losers whatever
            # they brought back.
            if racer.outcome == "ok":
                racer.outcome = "cancelled"
                racer.detail = (
                    racer.token.reason or "finished after the race was decided"
                )
            record_attempt(racer)
            return
        if racer.outcome == "ok" and held is not None and racer.rank >= held.rank:
            # An answer no stronger than the one already held (possible
            # when both finished before the driver processed either):
            # first processed wins within a tier, the late one loses.
            racer.outcome = "cancelled"
            racer.detail = f"lost the race to {held.name!r} (equal or stronger tier)"
            record_attempt(racer)
        elif racer.outcome == "ok":
            for other in list(contenders):
                if other.rank >= racer.rank:
                    cancel(
                        other,
                        f"preempted by {racer.name!r} "
                        f"(tier rank {racer.rank} <= {other.rank})",
                    )
            pending.clear()
            if held is not None:
                # held.rank > racer.rank here: a strictly stronger
                # answer preempts the held one.
                held.outcome = "preempted"
                held.detail = f"preempted by stronger engine {racer.name!r}"
                obs.inc("runtime.race.preempted")
                record_attempt(held)
            held = racer
        else:
            record_attempt(racer)
            if not contenders and held is None and pending:
                # A failure left nothing running: launch the next
                # engine immediately instead of waiting out the stagger
                # (mirrors the sequential walk's instant fallthrough).
                next_launch_at = scheduler.now()
        if held is not None and not any(r.rank < held.rank for r in contenders):
            winner = held
            held = None

    def launch(racer: _Racer) -> None:
        nonlocal samples_reserved, next_launch_at
        now = scheduler.now()
        remaining = run_budget.remaining_time()
        share: Optional[float] = None
        if remaining is not None:
            if remaining <= 0:
                # Mirrors the sequential walk: engines past the
                # deadline fail without starting.
                racer.outcome = "budget_exceeded"
                racer.counter = "runtime.budget_exceeded"
                racer.detail = "deadline exhausted before the engine started"
                record_attempt(racer)
                return
            share = remaining / (total - racer.index)
        cap = run_budget.max_samples
        headroom = None
        if cap is not None:
            headroom = max(0, cap - run_budget.samples - samples_reserved)
        samples_reserved += _reserved_samples(
            db, query, quantity, epsilon, delta,
            racer.name, run_budget, samples_reserved,
        )
        racer.launched_at = now
        body = make_body(racer, share, headroom)
        racer.entity = scheduler.spawn(racer.name, body)
        by_entity[racer.entity] = racer
        running.append(racer)
        contenders.append(racer)
        obs.inc("runtime.race.launched")
        obs.event(
            "runtime.race.launch",
            engine=racer.name,
            index=racer.index,
            share=share,
            headroom=headroom,
        )
        stagger = overlap * (share if share is not None else NOMINAL_SHARE_SECONDS)
        next_launch_at = now + stagger

    with obs.span(
        "runtime.race", engines=total, quantity=quantity, overlap=overlap
    ):
        while True:
            if winner is not None:
                break
            if not running and not pending:
                break  # exhausted (held was resolved inside on_complete)
            now = scheduler.now()
            while (
                pending
                and winner is None
                and (not contenders or now >= next_launch_at)
            ):
                launch(pending.popleft())
                now = scheduler.now()
            if winner is not None or not running:
                continue
            timeout = None
            if pending and contenders:
                timeout = max(0.0, next_launch_at - scheduler.now())
            scheduler.wait(timeout)
            for entity in scheduler.pop_completions():
                on_complete(by_entity[entity])

        # Reclaim losers: cancelled racers run to their next checkpoint.
        # The virtual scheduler steps every one of them to completion
        # (full determinism); real threads get a bounded grace join and
        # stragglers are abandoned as daemons — waiting longer would
        # forfeit the wall-clock win.
        stragglers = list(running)
        abandoned_count = scheduler.drain([r.entity for r in stragglers])
        for entity in scheduler.pop_completions(include_future=True):
            on_complete(by_entity[entity])
        abandoned = [r for r in stragglers if r.outcome is None]
        for racer in abandoned:
            racer.outcome = "abandoned"
            racer.detail = racer.token.reason or "cancelled, thread not joined"
            racer.elapsed = scheduler.now() - racer.launched_at
            record_attempt(racer)
        if abandoned_count:
            obs.inc("runtime.race.abandoned", abandoned_count)

        # Fold private ledgers back into the shared budget (losers too:
        # their draws were really spent) — direct adds, no enforcement;
        # the race is over.  Abandoned racers' ledgers are still live
        # on their threads and stay unfolded.
        from repro.runtime.budget import DEFAULT_BUDGET

        foldable = isinstance(run_budget, Budget) and run_budget is not DEFAULT_BUDGET
        wasted = 0.0
        for racer in completed + ([winner] if winner is not None else []):
            if (
                foldable
                and racer.budget is not None
                and racer.outcome != "abandoned"
            ):
                run_budget.worlds += racer.budget.worlds
                run_budget.samples += racer.budget.samples
                run_budget.ground_clauses += racer.budget.ground_clauses
            if winner is None or racer is not winner:
                wasted += racer.elapsed
        obs.observe("runtime.race.wasted_seconds", wasted)

        if winner is not None:
            record_attempt(winner)
            obs.inc("runtime.race.won")
            obs.inc("runtime.completed")
            obs.event(
                "runtime.race.result",
                engine=winner.name,
                guarantee=winner.answer.guarantee,
                launched=len(completed),
                cancelled=sum(1 for r in completed if r.outcome == "cancelled"),
                wasted_seconds=wasted,
            )
            obs.event(
                "runtime.result",
                engine=winner.name,
                guarantee=winner.answer.guarantee,
                attempts=len(completed),
            )

    attempts = tuple(
        _executor.Attempt(r.name, r.outcome, r.detail, r.elapsed)
        for r in completed
    )
    if winner is None:
        obs.inc("runtime.exhausted")
        raise FallbackExhausted(
            f"all {total} engines failed "
            f"({', '.join(f'{a.engine}: {a.outcome}' for a in attempts)})",
            attempts,
        )
    answer = winner.answer
    return _executor.RuntimeResult(
        value=answer.value,
        engine=winner.name,
        guarantee=answer.guarantee,
        quantity=quantity,
        epsilon=answer.epsilon,
        delta=answer.delta,
        attempts=attempts,
        elapsed=scheduler.now() - started,
        fraction=answer.fraction,
    )
