"""Resource budgets and deadlines for the reliability engines.

The paper's central tension — exact reliability is FP^#P-hard (Theorem
4.2) while existential queries admit an FPTRAS (Theorem 5.4) — means a
production system must be able to *stop*: refuse a hopeless exact run,
abandon a computation that blew its wall-clock allowance, and degrade to
a randomized estimator.  This module supplies the stopping machinery:

* :class:`Deadline` — a wall-clock cut-off from an injectable monotonic
  clock, raising :class:`~repro.util.errors.BudgetExceeded` on expiry;
* :class:`Budget` — a deadline plus caps on worlds enumerated, clauses
  grounded, and samples drawn, consumed at **cooperative checkpoints**;
* a module-level *active budget*, mirroring the :mod:`repro.obs`
  recorder pattern: engines call :func:`checkpoint` inside their hot
  loops, which is a near-no-op under the default (uncapped) budget, and
  callers scope a real budget with :func:`apply`.

Engines never hold budget references; they always consult the active
one, so a budget installed around any entry point — the fallback
executor, the CLI, or a plain library call — reaches every cooperative
loop underneath it.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.util.errors import BudgetExceeded, ResourceError

#: Default cap on the *atom count* of a world enumeration: direct calls
#: to the Theorem 4.2 engine refuse more than ``2 ** DEFAULT_MAX_ATOMS``
#: worlds unless a budget explicitly allows them (see
#: :func:`repro.runtime.preflight.preflight_worlds`).
DEFAULT_MAX_ATOMS = 20

Clock = Callable[[], float]


class Deadline:
    """A wall-clock cut-off: ``seconds`` from the moment it is started.

    The clock is injectable (any zero-argument callable returning
    monotonically nondecreasing seconds), so tests can drive deadlines
    deterministically without sleeping.  A deadline starts lazily on
    the first :meth:`remaining` / :meth:`expired` / :meth:`check` call,
    or eagerly via :meth:`start`.
    """

    __slots__ = ("seconds", "_clock", "_started")

    def __init__(self, seconds: float, clock: Clock = time.monotonic):
        if not seconds > 0:
            raise ResourceError(f"deadline must be positive, got {seconds!r}")
        self.seconds = float(seconds)
        self._clock = clock
        self._started: Optional[float] = None

    def start(self) -> "Deadline":
        """Start (or restart) the countdown; returns ``self``."""
        self._started = self._clock()
        return self

    def elapsed(self) -> float:
        """Seconds since the deadline started (starts it if needed)."""
        if self._started is None:
            self.start()
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left before expiry; negative once expired."""
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() < 0

    def check(self) -> None:
        """Raise :class:`BudgetExceeded` if the deadline has passed."""
        elapsed = self.elapsed()
        if elapsed > self.seconds:
            raise BudgetExceeded(
                f"deadline of {self.seconds:g}s exceeded "
                f"after {elapsed:.3f}s"
            )

    def __repr__(self) -> str:
        state = "unstarted" if self._started is None else f"{self.remaining():.3f}s left"
        return f"Deadline({self.seconds:g}s, {state})"


def _check_cap(name: str, value: Optional[int]) -> Optional[int]:
    if value is None:
        return None
    value = int(value)
    if value <= 0:
        raise ResourceError(f"{name} must be positive, got {value}")
    return value


class Budget:
    """Resource limits consumed cooperatively by the engines.

    Parameters (all optional; ``None`` disables the corresponding cap):

    ``deadline``
        wall-clock seconds for everything run under this budget;
    ``max_worlds``
        total worlds the exact enumeration engines may evaluate;
    ``max_ground_clauses``
        total clauses Theorem 5.4's grounding may instantiate;
    ``max_samples``
        total samples the randomized estimators may draw;
    ``max_atoms``
        preflight cap on the atom count of a world enumeration
        (``2 ** max_atoms`` predicted worlds); defaults to
        :data:`DEFAULT_MAX_ATOMS` so that even budget-less direct calls
        fail fast on hopeless enumerations.  Pass ``None`` to disable.

    Engines report work through :meth:`consume` (usually via the
    module-level :func:`checkpoint`); crossing any cap raises
    :class:`BudgetExceeded`.  Counters accumulate across engines run
    under the same budget — a fallback chain shares one allowance.
    Budgets are single-use in spirit: call :meth:`reset` to reuse one.
    """

    __slots__ = (
        "deadline_seconds",
        "max_worlds",
        "max_ground_clauses",
        "max_samples",
        "max_atoms",
        "_clock",
        "_deadline",
        "worlds",
        "ground_clauses",
        "samples",
        "_limited",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_worlds: Optional[int] = None,
        max_ground_clauses: Optional[int] = None,
        max_samples: Optional[int] = None,
        max_atoms: Optional[int] = DEFAULT_MAX_ATOMS,
        clock: Clock = time.monotonic,
    ):
        if deadline is not None and not deadline > 0:
            raise ResourceError(f"deadline must be positive, got {deadline!r}")
        self.deadline_seconds = deadline
        self.max_worlds = _check_cap("max_worlds", max_worlds)
        self.max_ground_clauses = _check_cap(
            "max_ground_clauses", max_ground_clauses
        )
        self.max_samples = _check_cap("max_samples", max_samples)
        self.max_atoms = _check_cap("max_atoms", max_atoms)
        self._clock = clock
        self._deadline: Optional[Deadline] = (
            Deadline(deadline, clock) if deadline is not None else None
        )
        self.worlds = 0
        self.ground_clauses = 0
        self.samples = 0
        # Checkpoints are a no-op unless some *running* cap is set
        # (max_atoms is preflight-only and does not slow the hot loops).
        self._limited = (
            self._deadline is not None
            or self.max_worlds is not None
            or self.max_ground_clauses is not None
            or self.max_samples is not None
        )

    # ------------------------------------------------------------------ #

    def start(self) -> "Budget":
        """Start the deadline countdown (no-op without a deadline)."""
        if self._deadline is not None:
            self._deadline.start()
        return self

    def reset(self) -> "Budget":
        """Zero the consumption counters and restart the deadline."""
        self.worlds = 0
        self.ground_clauses = 0
        self.samples = 0
        return self.start()

    @property
    def deadline(self) -> Optional[Deadline]:
        """The live :class:`Deadline`, or ``None``."""
        return self._deadline

    def remaining_time(self) -> Optional[float]:
        """Seconds left on the deadline (``None`` when unconstrained)."""
        if self._deadline is None:
            return None
        return self._deadline.remaining()

    def world_limit(self) -> Optional[int]:
        """The effective preflight cap on predicted world counts.

        ``max_worlds`` when set, else ``2 ** max_atoms``, else ``None``.
        """
        if self.max_worlds is not None:
            return self.max_worlds
        if self.max_atoms is not None:
            return 1 << self.max_atoms
        return None

    def remaining_samples(self) -> Optional[int]:
        """Samples left under ``max_samples`` (``None`` when uncapped)."""
        if self.max_samples is None:
            return None
        return max(0, self.max_samples - self.samples)

    def sliced(self, seconds: float) -> "SlicedBudget":
        """A per-attempt view of this budget with a tighter deadline.

        Work consumed through the slice is charged to this (parent)
        budget — counters and the parent deadline stay shared — but the
        slice additionally expires after ``seconds``.  The fallback
        executor uses this for fair-share time slicing: one stalled
        engine can then burn only its share of the wall clock, not the
        whole allowance.
        """
        return SlicedBudget(self, seconds)

    # ------------------------------------------------------------------ #

    def consume(self, worlds: int = 0, samples: int = 0, clauses: int = 0) -> None:
        """Record work done and enforce every cap (cooperative checkpoint).

        Engines call this once per unit of work (world evaluated, sample
        drawn, clause grounded) or with ``0/0/0`` for a pure deadline
        check.  Raises :class:`BudgetExceeded` when any cap is crossed.
        """
        if not self._limited:
            return
        if worlds:
            self.worlds += worlds
            if self.max_worlds is not None and self.worlds > self.max_worlds:
                raise BudgetExceeded(
                    f"world budget exhausted: {self.worlds} worlds "
                    f"evaluated, cap is {self.max_worlds}"
                )
        if samples:
            self.samples += samples
            if self.max_samples is not None and self.samples > self.max_samples:
                raise BudgetExceeded(
                    f"sample budget exhausted: {self.samples} samples "
                    f"drawn, cap is {self.max_samples}"
                )
        if clauses:
            self.ground_clauses += clauses
            if (
                self.max_ground_clauses is not None
                and self.ground_clauses > self.max_ground_clauses
            ):
                raise BudgetExceeded(
                    f"grounding budget exhausted: {self.ground_clauses} "
                    f"clauses instantiated, cap is {self.max_ground_clauses}"
                )
        if self._deadline is not None:
            self._deadline.check()

    def __repr__(self) -> str:
        caps = []
        if self.deadline_seconds is not None:
            caps.append(f"deadline={self.deadline_seconds:g}s")
        for name in ("max_worlds", "max_ground_clauses", "max_samples", "max_atoms"):
            value = getattr(self, name)
            if value is not None:
                caps.append(f"{name}={value}")
        return f"Budget({', '.join(caps) or 'uncapped'})"


class SlicedBudget:
    """A parent budget plus a per-slice deadline (see :meth:`Budget.sliced`).

    Duck-types the :class:`Budget` surface the engines and preflights
    consult: :meth:`consume` charges the parent *and* checks the slice
    deadline; caps and limits delegate to the parent.
    """

    __slots__ = ("parent", "slice_deadline")

    def __init__(self, parent: "Budget", seconds: float):
        self.parent = parent
        self.slice_deadline = Deadline(seconds, parent._clock)

    def start(self) -> "SlicedBudget":
        self.slice_deadline.start()
        return self

    @property
    def _clock(self) -> Clock:
        return self.parent._clock

    def sliced(self, seconds: float) -> "SlicedBudget":
        """Slices nest: the child charges this slice's parent chain."""
        return SlicedBudget(self, seconds)

    @property
    def deadline_seconds(self) -> float:
        return self.slice_deadline.seconds

    @property
    def deadline(self) -> Deadline:
        return self.slice_deadline

    @property
    def max_worlds(self) -> Optional[int]:
        return self.parent.max_worlds

    @property
    def max_ground_clauses(self) -> Optional[int]:
        return self.parent.max_ground_clauses

    @property
    def max_samples(self) -> Optional[int]:
        return self.parent.max_samples

    @property
    def max_atoms(self) -> Optional[int]:
        return self.parent.max_atoms

    def world_limit(self) -> Optional[int]:
        return self.parent.world_limit()

    def remaining_samples(self) -> Optional[int]:
        return self.parent.remaining_samples()

    def remaining_time(self) -> float:
        remaining = self.slice_deadline.remaining()
        parent_remaining = self.parent.remaining_time()
        if parent_remaining is not None:
            remaining = min(remaining, parent_remaining)
        return remaining

    def consume(self, worlds: int = 0, samples: int = 0, clauses: int = 0) -> None:
        self.parent.consume(worlds=worlds, samples=samples, clauses=clauses)
        self.slice_deadline.check()

    def __repr__(self) -> str:
        return (
            f"SlicedBudget({self.slice_deadline.seconds:g}s of {self.parent!r})"
        )


class CancelToken:
    """A cross-thread cancellation flag checked at budget checkpoints.

    The racing executor hands every speculative engine attempt a token;
    cancelling it makes the racer's next cooperative checkpoint raise
    :class:`BudgetExceeded`, so losers unwind through exactly the same
    path as a blown deadline — no new control flow inside the engines.
    """

    __slots__ = ("_event", "reason")

    def __init__(self):
        self._event = threading.Event()
        self.reason = ""

    def cancel(self, reason: str = "") -> None:
        """Set the flag (idempotent); the first reason given sticks."""
        if reason and not self.reason:
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        """Raise :class:`BudgetExceeded` if the token was cancelled."""
        if self._event.is_set():
            raise BudgetExceeded(
                self.reason or "attempt cancelled by the racing executor"
            )


class RacerBudget:
    """A per-racer view of a shared budget for speculative racing.

    Like :class:`SlicedBudget` this duck-types the :class:`Budget`
    surface the engines and preflights consult, but it is built for
    *concurrent* attempts:

    * consumption ledgers (``worlds``/``samples``/``ground_clauses``)
      are **private** — concurrent racers never mutate shared counters,
      so cap checks cannot depend on thread interleaving;
    * ``sample_headroom`` pre-partitions the parent's ``max_samples``:
      racer *i* sees ``cap - sum(predicted needs of earlier racers)``,
      the same cumulative accounting ``plan_chain`` simulates, which is
      what keeps the racing forecast exact;
    * ``token`` is a :class:`CancelToken` checked on every
      :meth:`consume` — the cross-thread cancel flag;
    * ``on_checkpoint`` is an optional hook run first on every
      :meth:`consume` — the deterministic virtual-clock scheduler uses
      it as its lock-step yield point.

    The parent's *deadline* stays shared (wall clock is one resource no
    partition can split); an optional per-racer slice deadline bounds
    the racer's own wall-clock share.
    """

    __slots__ = (
        "parent",
        "token",
        "slice_deadline",
        "sample_headroom",
        "worlds",
        "ground_clauses",
        "samples",
        "_hook",
    )

    def __init__(
        self,
        parent: "Budget",
        token: CancelToken,
        slice_seconds: Optional[float] = None,
        sample_headroom: Optional[int] = None,
        on_checkpoint: Optional[Callable[[], None]] = None,
    ):
        self.parent = parent
        self.token = token
        self.slice_deadline = (
            Deadline(slice_seconds, parent._clock)
            if slice_seconds is not None
            else None
        )
        if sample_headroom is not None:
            sample_headroom = max(0, int(sample_headroom))
        self.sample_headroom = sample_headroom
        self.worlds = 0
        self.ground_clauses = 0
        self.samples = 0
        self._hook = on_checkpoint

    def start(self) -> "RacerBudget":
        if self.slice_deadline is not None:
            self.slice_deadline.start()
        return self

    @property
    def _clock(self) -> Clock:
        return self.parent._clock

    def sliced(self, seconds: float) -> "SlicedBudget":
        return SlicedBudget(self, seconds)

    @property
    def deadline(self) -> Optional[Deadline]:
        if self.slice_deadline is not None:
            return self.slice_deadline
        return self.parent.deadline

    @property
    def max_worlds(self) -> Optional[int]:
        return self.parent.max_worlds

    @property
    def max_ground_clauses(self) -> Optional[int]:
        return self.parent.max_ground_clauses

    @property
    def max_samples(self) -> Optional[int]:
        if self.sample_headroom is not None:
            return self.sample_headroom
        return self.parent.max_samples

    @property
    def max_atoms(self) -> Optional[int]:
        return self.parent.max_atoms

    def world_limit(self) -> Optional[int]:
        return self.parent.world_limit()

    def remaining_samples(self) -> Optional[int]:
        cap = self.max_samples
        if cap is None:
            return None
        return max(0, cap - self.samples)

    def remaining_time(self) -> Optional[float]:
        remaining = self.parent.remaining_time()
        if self.slice_deadline is not None:
            slice_left = self.slice_deadline.remaining()
            remaining = (
                slice_left if remaining is None else min(remaining, slice_left)
            )
        return remaining

    def consume(self, worlds: int = 0, samples: int = 0, clauses: int = 0) -> None:
        if self._hook is not None:
            self._hook()
        self.token.check()
        if worlds:
            self.worlds += worlds
            cap = self.max_worlds
            if cap is not None and self.worlds > cap:
                raise BudgetExceeded(
                    f"world budget exhausted: {self.worlds} worlds "
                    f"evaluated, cap is {cap}"
                )
        if samples:
            self.samples += samples
            cap = self.max_samples
            if cap is not None and self.samples > cap:
                raise BudgetExceeded(
                    f"sample budget exhausted: {self.samples} samples "
                    f"drawn, cap is {cap}"
                )
        if clauses:
            self.ground_clauses += clauses
            cap = self.max_ground_clauses
            if cap is not None and self.ground_clauses > cap:
                raise BudgetExceeded(
                    f"grounding budget exhausted: {self.ground_clauses} "
                    f"clauses instantiated, cap is {cap}"
                )
        parent_deadline = self.parent.deadline
        if parent_deadline is not None:
            parent_deadline.check()
        if self.slice_deadline is not None:
            self.slice_deadline.check()

    def __repr__(self) -> str:
        bits = []
        if self.slice_deadline is not None:
            bits.append(f"slice={self.slice_deadline.seconds:g}s")
        if self.sample_headroom is not None:
            bits.append(f"headroom={self.sample_headroom}")
        if self.token.cancelled:
            bits.append("cancelled")
        return f"RacerBudget({', '.join(bits) or 'unsliced'} of {self.parent!r})"


#: The budget in force when none is applied: no running caps, only the
#: default preflight atom guard.  Checkpoints under it are no-ops.
DEFAULT_BUDGET = Budget()


class _ActiveBudget(threading.local):
    """Thread-local active budget.

    Thread-local (not a bare module global) so concurrent racing
    attempts each see their own :class:`RacerBudget`: an engine running
    in one racer thread must never charge — or be cancelled by — a
    sibling's budget.  Fresh threads start at :data:`DEFAULT_BUDGET`,
    so single-threaded behaviour is unchanged.
    """

    def __init__(self):
        self.budget: Budget = DEFAULT_BUDGET


_active = _ActiveBudget()


def active_budget() -> Budget:
    """The currently active budget (:data:`DEFAULT_BUDGET` by default)."""
    return _active.budget


def set_budget(budget: Optional[Budget]) -> Budget:
    """Install ``budget`` as active; returns the previous one.

    ``None`` restores :data:`DEFAULT_BUDGET`.  The active budget is
    **per thread** (see :class:`_ActiveBudget`).  Prefer :func:`apply`
    — it restores the previous budget automatically.
    """
    previous = _active.budget
    _active.budget = budget if budget is not None else DEFAULT_BUDGET
    return previous


@contextmanager
def apply(budget: Optional[Budget]) -> Iterator[Budget]:
    """Scope-install a budget: active (and started) inside the block.

    ::

        with runtime.apply(Budget(deadline=5.0, max_atoms=22)):
            value = reliability(db, query)   # checkpoints enforce it
    """
    if budget is not None:
        budget.start()
    previous = set_budget(budget)
    try:
        yield active_budget()
    finally:
        set_budget(previous)


def checkpoint(worlds: int = 0, samples: int = 0, clauses: int = 0) -> None:
    """Cooperative checkpoint: charge work to the active budget.

    Engines call this inside their loops; under the default budget it
    returns immediately.  Raises :class:`BudgetExceeded` when a cap of
    the active budget is crossed.
    """
    _active.budget.consume(worlds=worlds, samples=samples, clauses=clauses)
