"""Checkpoint coverage audit: no hot loop escapes the budget.

Every engine loop whose trip count scales with the data — worlds
enumerated, samples drawn, clauses grounded — must call
``runtime.checkpoint`` (directly or through a helper) so deadlines and
cost budgets keep their batch-granularity guarantees.  This module
walks the registered engine modules' ASTs and reports every looping
function that neither checkpoints nor appears in the documented
exemption list, so a new kernel cannot silently escape deadlines.

The audit is intentionally syntactic: a function is *compliant* when
its body (excluding nested ``def``s, which are audited separately)
contains a ``checkpoint(...)`` call, or when it calls — transitively,
within the audited modules — a function that does.  Comprehension
loops are ignored: they are bounded by an already-materialised
sequence, and the cost of building that sequence is charged where it
is built.
"""

from __future__ import annotations

import ast
import importlib
import inspect
from typing import Dict, List, Sequence, Set, Tuple

#: Modules whose loops the audit walks — every engine with a loop whose
#: trip count scales with worlds, samples, clauses, or tuples.
ENGINE_MODULES: Tuple[str, ...] = (
    "repro.reliability.exact",
    "repro.reliability.montecarlo",
    "repro.reliability.grounding",
    "repro.reliability.approx",
    "repro.reliability.padding",
    "repro.propositional.karp_luby",
    "repro.propositional.counting",
    "repro.kernels.sampling",
    "repro.kernels.gray",
    "repro.runtime.adaptive",
    "repro.delta.session",
    "repro.delta.reground",
    "repro.delta.sampling",
)

#: Looping functions that deliberately do not checkpoint, with the
#: reason.  Loops here must be bounded by the *query or formula* size
#: (a constant of the problem statement), or be per-batch workers whose
#: driver charges the budget as results are combined.
EXEMPTIONS: Dict[Tuple[str, str], str] = {
    ("repro.kernels.sampling", "draw_columns"): (
        "one column per plan variable; the driver checkpoints per batch"
    ),
    ("repro.kernels.sampling", "plan_batches"): (
        "partitions an already-preflighted budget into batch bounds"
    ),
    ("repro.kernels.sampling", "truth_batch_hits"): (
        "per-batch worker; the driver charges checkpoint(samples=width)"
    ),
    ("repro.kernels.sampling", "hamming_batch_distance"): (
        "per-batch worker; the driver charges checkpoint(samples=width)"
    ),
    ("repro.kernels.sampling", "kl_batch"): (
        "per-batch worker; the driver charges checkpoint(samples=width)"
    ),
    ("repro.kernels.sampling", "hamming_block_moments"): (
        "per-block worker; the adaptive controller checkpoints per chunk"
    ),
    ("repro.kernels.sampling", "kl_block_moments"): (
        "per-block worker; the adaptive controller checkpoints per chunk"
    ),
    ("repro.runtime.adaptive", "block_layout"): (
        "partitions an already-preflighted budget into fixed blocks"
    ),
    ("repro.runtime.adaptive", "check_grid"): (
        "O(log blocks) doubling grid over an already-bounded budget"
    ),
    ("repro.kernels.sampling", "naive_batch_hits"): (
        "per-batch worker; the driver charges checkpoint(samples=width)"
    ),
    ("repro.kernels.gray", "_dnf_state"): (
        "one pass over the grounded clauses, bounded by the formula"
    ),
    ("repro.propositional.karp_luby", "_clause_weights"): (
        "one pass over the DNF clauses, bounded by the formula"
    ),
    ("repro.propositional.karp_luby", "_bisect"): (
        "binary search over the clause list, O(log clauses)"
    ),
    ("repro.propositional.karp_luby", "_first_satisfied"): (
        "one pass over the DNF clauses, bounded by the formula"
    ),
    ("repro.reliability.exact", "_formula_atoms.walk"): (
        "syntactic walk of the query formula, bounded by the query"
    ),
    ("repro.reliability.grounding", "ground_clause"): (
        "one clause template, bounded by the query's clause width"
    ),
    ("repro.delta.reground", "_unify"): (
        "one literal against one atom, bounded by the relation arity"
    ),
    ("repro.delta.sampling", "_clause_weight"): (
        "one clause's literals, bounded by the formula's clause width"
    ),
    ("repro.propositional.counting", "_check_probs"): (
        "one validation pass over the formula's variables"
    ),
    ("repro.propositional.counting", "_components"): (
        "union-find over clause variables, bounded by the formula"
    ),
    ("repro.propositional.counting", "_components.find"): (
        "path-compressed find, bounded by the formula's variables"
    ),
    ("repro.propositional.counting", "_pivot"): (
        "one counting pass over the formula's literals"
    ),
    ("repro.reliability.padding", "pad_database"): (
        "constant-size loop over the two padding constants"
    ),
}


class _FunctionInfo:
    __slots__ = ("module", "qualname", "loops", "checkpoints", "calls")

    def __init__(self, module: str, qualname: str):
        self.module = module
        self.qualname = qualname
        self.loops = False
        self.checkpoints = False
        self.calls: Set[str] = set()


def _called_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _collect(module: str, tree: ast.AST) -> List[_FunctionInfo]:
    """Per-function loop/checkpoint/call facts, nested defs separate."""
    functions: List[_FunctionInfo] = []

    def visit_function(node, prefix: str) -> None:
        qualname = f"{prefix}{node.name}"
        info = _FunctionInfo(module, qualname)
        functions.append(info)

        def walk(statements) -> None:
            for child in statements:
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    visit_function(child, f"{qualname}.")
                    continue
                if isinstance(child, ast.ClassDef):
                    visit_class(child, f"{qualname}.")
                    continue
                if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                    info.loops = True
                for call in ast.walk(
                    ast.Module(body=[child], type_ignores=[])
                    if False
                    else child
                ):
                    if isinstance(call, ast.Call):
                        name = _called_name(call)
                        if name == "checkpoint":
                            info.checkpoints = True
                        elif name:
                            info.calls.add(name)
                    if isinstance(
                        call, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        break
                children = [
                    grandchild
                    for grandchild in ast.iter_child_nodes(child)
                    if isinstance(grandchild, ast.stmt)
                ]
                if children:
                    walk(children)

        walk(node.body)

    def visit_class(node: ast.ClassDef, prefix: str) -> None:
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit_function(child, f"{prefix}{node.name}.")
            elif isinstance(child, ast.ClassDef):
                visit_class(child, f"{prefix}{node.name}.")

    for top in ast.iter_child_nodes(tree):
        if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit_function(top, "")
        elif isinstance(top, ast.ClassDef):
            visit_class(top, "")
    return functions


def _module_functions(module_name: str) -> List[_FunctionInfo]:
    module = importlib.import_module(module_name)
    source = inspect.getsource(module)
    return _collect(module_name, ast.parse(source))


def audit_checkpoints(
    modules: Sequence[str] = ENGINE_MODULES,
) -> List[str]:
    """Looping engine functions that neither checkpoint nor are exempt.

    Returns ``"module:qualname"`` strings; an empty list means every
    hot loop is budget-aware.  Compliance propagates one-step-at-a-time
    through the call graph of the audited modules until a fixpoint, so
    a loop that delegates to a checkpointing helper counts.
    """
    functions: List[_FunctionInfo] = []
    for module_name in modules:
        functions.extend(_module_functions(module_name))

    compliant: Set[str] = {
        info.qualname.rsplit(".", 1)[-1]
        for info in functions
        if info.checkpoints
    }
    changed = True
    while changed:
        changed = False
        for info in functions:
            name = info.qualname.rsplit(".", 1)[-1]
            if name in compliant:
                continue
            if info.checkpoints or info.calls & compliant:
                compliant.add(name)
                changed = True

    violations = []
    for info in functions:
        if not info.loops:
            continue
        name = info.qualname.rsplit(".", 1)[-1]
        if info.checkpoints or info.calls & compliant:
            continue
        if (info.module, info.qualname) in EXEMPTIONS:
            continue
        violations.append(f"{info.module}:{info.qualname}")
    return sorted(violations)


def stale_exemptions(
    modules: Sequence[str] = ENGINE_MODULES,
) -> List[str]:
    """Exemption entries that no longer match a function (doc rot guard)."""
    known = set()
    for module_name in modules:
        for info in _module_functions(module_name):
            known.add((info.module, info.qualname))
    return sorted(
        f"{module}:{qualname}"
        for (module, qualname) in EXEMPTIONS
        if (module, qualname) not in known
    )
