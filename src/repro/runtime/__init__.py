"""repro.runtime — resilient execution: budgets, preflight, fallback.

The complexity results of the paper draw a hard landscape: exact
reliability is FP^#P-complete (Theorem 4.2), yet existential queries
admit an FPTRAS (Theorem 5.4 / Corollary 5.5).  This subsystem turns
that landscape into an execution policy instead of a crash report:

* :mod:`repro.runtime.budget` — :class:`Budget` / :class:`Deadline`
  with cooperative checkpoints threaded through every engine loop;
* :mod:`repro.runtime.preflight` — closed-form cost estimates
  (``2 ** |atoms|`` worlds, ``|templates| * n ** |vars|`` clauses) that
  refuse hopeless runs up front with
  :class:`~repro.util.errors.CostRefused`;
* :mod:`repro.runtime.executor` — :func:`run_with_fallback`, walking an
  engine chain (exact → lifted → karp_luby → montecarlo by default)
  and returning a :class:`RuntimeResult` with value, engine, guarantee
  type, and the attempt log;
* :mod:`repro.runtime.faults` — deterministic fault injection
  (timeout / slowdown / exception) wrapping engine entry points, so
  tests can prove every degradation path fires — plus the
  deterministic virtual-clock :class:`VirtualScheduler` that replays
  racing interleavings bit-for-bit;
* :mod:`repro.runtime.racing` — speculative engine racing for
  ``run_with_fallback(..., race=...)``: staggered concurrent attempts,
  tier-aware winner selection, loser cancellation through the budget
  checkpoints.

See ``docs/ROBUSTNESS.md`` for the full story.

The executor and fault modules are loaded lazily: the engines import
:mod:`repro.runtime.budget` for their checkpoints, and the executor
imports the engines — laziness keeps that from being a cycle.
"""

from repro.runtime.budget import (
    DEFAULT_BUDGET,
    DEFAULT_MAX_ATOMS,
    Budget,
    Deadline,
    SlicedBudget,
    active_budget,
    apply,
    checkpoint,
    set_budget,
)
from repro.runtime.preflight import (
    grounding_cost,
    preflight_grounding,
    preflight_samples,
    preflight_worlds,
    worlds_cost,
)

__all__ = [
    "Budget",
    "Deadline",
    "SlicedBudget",
    "DEFAULT_BUDGET",
    "DEFAULT_MAX_ATOMS",
    "active_budget",
    "set_budget",
    "apply",
    "checkpoint",
    "worlds_cost",
    "preflight_worlds",
    "grounding_cost",
    "preflight_grounding",
    "preflight_samples",
    # lazily resolved (see __getattr__):
    "run_with_fallback",
    "RuntimeResult",
    "Attempt",
    "DEFAULT_CHAIN",
    "GUARANTEE_ORDER",
    "executor",
    "faults",
    "Fault",
    "TimeoutFault",
    "SlowdownFault",
    "ExceptionFault",
    "inject",
    "VirtualScheduler",
    "costmodel",
    "CostModel",
    "plan_chain",
    "plan_features",
    "calibrate",
    "load_or_fallback",
    "racing",
    "ThreadScheduler",
    "use_scheduler",
    "race_sleep",
    "DEFAULT_OVERLAP",
]

_EXECUTOR_NAMES = {
    "run_with_fallback",
    "RuntimeResult",
    "Attempt",
    "DEFAULT_CHAIN",
    "GUARANTEE_ORDER",
    "ENGINES",
}
_FAULT_NAMES = {
    "Fault",
    "TimeoutFault",
    "SlowdownFault",
    "ExceptionFault",
    "inject",
    "VirtualScheduler",
}
_COSTMODEL_NAMES = {
    "CostModel",
    "plan_chain",
    "plan_features",
    "calibrate",
    "load_or_fallback",
}
_RACING_NAMES = {
    "ThreadScheduler",
    "use_scheduler",
    "race_sleep",
    "DEFAULT_OVERLAP",
}


def __getattr__(name):
    # importlib (not a from-import) to avoid re-entering this hook while
    # the submodule attribute is still unset on the package.
    import importlib

    if name in _EXECUTOR_NAMES or name == "executor":
        module = importlib.import_module("repro.runtime.executor")
        return module if name == "executor" else getattr(module, name)
    if name in _FAULT_NAMES or name == "faults":
        module = importlib.import_module("repro.runtime.faults")
        return module if name == "faults" else getattr(module, name)
    if name in _COSTMODEL_NAMES or name == "costmodel":
        module = importlib.import_module("repro.runtime.costmodel")
        return module if name == "costmodel" else getattr(module, name)
    if name in _RACING_NAMES or name == "racing":
        module = importlib.import_module("repro.runtime.racing")
        return module if name == "racing" else getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
