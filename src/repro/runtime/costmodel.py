"""Calibrated per-engine cost models for the fallback executor.

The executor's static chain (exact > lifted > karp_luby > montecarlo)
orders engines by *guarantee strength*, and its preflights refuse
hopeless runs from worst-case closed forms (``2 ** atoms`` worlds,
``n ** width * |templates|`` clauses, Hoeffding/Karp–Luby sample
counts).  But worst case is not *actual* cost: per-query structure —
the Dalvi–Suciu lesson — decides whether grounding plus an FPTRAS run
beats a few hundred bit-parallel world samples, and the answer flips
between queries.  This module closes the loop:

* :func:`plan_features` — cheap, closed-form features of a (db, query,
  epsilon, delta) plan: relevant-atom count, domain size, answer cells,
  predicted grounded clauses, and the two estimators' sample counts.
* :func:`fit` / :func:`fit_from_trace` — a pure-Python log-linear ridge
  regression from ``runtime.attempt.cost`` trace events (emitted by the
  executor through :mod:`repro.obs`) to per-engine wall-clock
  predictors; no third-party numerics.
* :class:`CostModel` — predicts seconds per engine, persists to a
  versioned JSON calibration file, and orders a chain by predicted
  cost **within guarantee tiers only**: the exact > relative > additive
  ordering of :data:`repro.runtime.executor.GUARANTEE_ORDER` is never
  violated.  Uncalibrated engines and corrupt calibration files fall
  back to the existing closed forms (``costmodel.fallback`` counter);
  nothing here can crash a run.
* :func:`plan_chain` — a dry-run of the executor's walk: preflights,
  fragment checks, and sequential sample-budget accounting are
  simulated without consuming the active budget, so
  :func:`repro.reliability.report.analyze` can *recommend* exactly the
  engine :func:`~repro.runtime.executor.run_with_fallback` would
  select (the differential harness pins this to 100% agreement).

Guarantee tiers are quantity-dependent, mirroring the engines
themselves: Karp–Luby is *relative* on probabilities (Theorem 5.4) but
*additive* on reliability (Corollary 5.5), so under the default
``quantity="reliability"`` it shares the additive tier with Monte
Carlo — which is precisely where calibrated reordering pays, because
grounding-heavy FPTRAS runs and a few hundred batched world samples
differ by orders of magnitude in either direction.

See docs/ROBUSTNESS.md ("Calibrated cost models") for the workflow.
"""

from __future__ import annotations

import json
import math
import os
import random
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import product
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.logic.classify import is_conjunctive, is_existential, is_universal
from repro.logic.evaluator import FOQuery
from repro.logic.fo import neg
from repro.logic.normalform import dnf_clauses, existential_parts
from repro.propositional.karp_luby import sample_count
from repro.reliability.exact import as_query
from repro.reliability.grounding import ground_existential_to_dnf, relevant_atoms
from repro.reliability.lifted import is_safe
from repro.reliability.montecarlo import hoeffding_samples
from repro.runtime.budget import Budget, active_budget, apply
from repro.runtime.preflight import grounding_cost, worlds_cost
from repro.util.errors import CalibrationError, QueryError, ResourceError

__all__ = [
    "FEATURE_NAMES",
    "CALIBRATION_VERSION",
    "CostObservation",
    "EngineCalibration",
    "CostModel",
    "EngineForecast",
    "RaceForecast",
    "ChainPlan",
    "plan_features",
    "engine_guarantee",
    "static_cost",
    "fit",
    "fit_from_trace",
    "load_calibration",
    "load_or_fallback",
    "active_model",
    "set_model",
    "use_model",
    "resolve_model",
    "plan_chain",
    "calibration_workload",
    "calibrate",
]

#: Plan features, in design-matrix order (after the intercept).
FEATURE_NAMES: Tuple[str, ...] = (
    "atoms",
    "domain",
    "cells",
    "clauses",
    "kl_samples",
    "mc_samples",
)

#: Calibration file schema version; files with any other version are
#: *stale* and ignored (closed-form fallback), never reinterpreted.
CALIBRATION_VERSION = 1

#: Seconds one closed-form work unit is pretended to take when an
#: engine has no calibration.  The absolute value is irrelevant for
#: ordering (all uncalibrated engines share it); it only keeps
#: calibrated and uncalibrated predictions on one axis.
CLOSED_FORM_UNIT_SECONDS = 1e-6

#: Minimum per-engine observations before a fit is trusted.
MIN_OBSERVATIONS = 3

#: Guarantee ranks, strongest first (executor's GUARANTEE_ORDER).
_GUARANTEE_RANK = {"exact": 0, "relative": 1, "additive": 2}

#: Cap on feature magnitudes so ``float`` conversion of the closed
#: forms (big ints like ``n ** k``) can never overflow.
_FEATURE_CAP = 1e18

# Floors for degenerate measurements: a 0s wall clock still costs one
# log-target; predictions are clamped into a sane exponent range.
_SECONDS_FLOOR = 1e-7
_LOG_CLAMP = 50.0


def _finite(value: float) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


def _capped(value) -> float:
    try:
        result = float(value)
    except (OverflowError, ValueError):
        return _FEATURE_CAP
    if not math.isfinite(result):
        return _FEATURE_CAP
    return min(max(result, 0.0), _FEATURE_CAP)


# ---------------------------------------------------------------------- #
# plan features and guarantee tiers
# ---------------------------------------------------------------------- #


def plan_features(
    db,
    query: Any,
    quantity: str = "reliability",
    epsilon: float = 0.05,
    delta: float = 0.05,
) -> Dict[str, float]:
    """Closed-form features of one (db, query, epsilon, delta) plan.

    All features are computable in microseconds from the query and
    database shape (``relevant_atoms`` and the DNF matrix are memoised
    in the compilation cache); nothing here samples or grounds.
    ``clauses`` is the *per-cell* Theorem 5.4 grounding bound
    (``|templates| * n ** |vars|``); ``kl_samples`` the Karp–Luby
    count for that many clauses; ``mc_samples`` the Hoeffding count.
    A query outside the existential/universal fragment simply gets
    ``clauses = 0`` — features never raise.
    """
    query = as_query(query)
    atoms = len(relevant_atoms(db, query))
    domain = db.universe_size
    arity = int(getattr(query, "arity", 0))
    cells = _capped(domain**arity) if arity else 1.0
    clauses = 0.0
    formula = query.formula if isinstance(query, FOQuery) else None
    if formula is not None:
        try:
            if is_existential(formula):
                target = formula
            elif is_universal(formula):
                target = neg(formula)
            else:
                target = None
            if target is not None:
                variables, matrix = existential_parts(target)
                templates = dnf_clauses(matrix)
                clauses = _capped(
                    grounding_cost(domain, len(variables), len(templates))
                )
        except QueryError:
            clauses = 0.0
    try:
        kl = float(sample_count(max(1, int(min(clauses, 1e9))), epsilon, delta))
        mc = float(hoeffding_samples(epsilon, delta))
    except Exception:  # invalid epsilon/delta: features stay orderable
        kl = mc = _FEATURE_CAP
    return {
        "atoms": float(atoms),
        "domain": float(domain),
        "cells": cells,
        "clauses": clauses,
        "kl_samples": _capped(kl),
        "mc_samples": _capped(mc),
    }


def engine_guarantee(engine: str, quantity: str = "reliability") -> str:
    """The guarantee tier an engine's answer would carry for ``quantity``.

    Mirrors the executor's engines: Karp–Luby is *relative* on
    probabilities (Theorem 5.4) but *additive* on reliability
    (Corollary 5.5) — the tier is a property of the answer, not the
    algorithm.  Unknown engines conservatively land in the weakest
    tier (the executor validates names before any ordering happens).
    """
    if engine in ("safe_lifted", "exact", "lifted"):
        return "exact"
    if engine == "karp_luby":
        return "relative" if quantity == "probability" else "additive"
    return "additive"


def static_cost(engine: str, features: Mapping[str, float]) -> float:
    """Closed-form work units for an engine — the uncalibrated fallback.

    These are the same shapes the preflights reason about: worlds for
    exact, a small polynomial for lifted plans, grounding plus FPTRAS
    samples for Karp–Luby, Hoeffding samples priced per answer cell
    for Monte Carlo.  Units are abstract; only relative order matters,
    and only *within* a guarantee tier.
    """
    atoms = features.get("atoms", 0.0)
    domain = features.get("domain", 0.0)
    cells = max(features.get("cells", 1.0), 1.0)
    clauses = features.get("clauses", 0.0)
    kl = features.get("kl_samples", 0.0)
    mc = features.get("mc_samples", 0.0)
    if engine == "exact":
        return _capped(2.0 ** min(atoms, 400.0))
    if engine == "safe_lifted":
        # Same polynomial shape as the lifted plan, minus the
        # attempt-and-catch overhead: the static classifier decided
        # admissibility for free.
        return _capped(domain * domain + atoms)
    if engine == "lifted":
        return _capped(domain * domain + atoms + 1.0)
    if engine == "karp_luby":
        return _capped(cells * (clauses + kl))
    if engine == "montecarlo":
        return _capped(mc * (atoms + cells))
    return _FEATURE_CAP


def delta_stream_cost(diagram_nodes: int, updates: int) -> float:
    """Closed-form work units for a delta update stream.

    One weight-only update re-evaluates at most every reachable
    diagram node — ``|BDD|`` exact multiplies — so a stream of ``m``
    updates is bounded by ``m * |BDD|`` units.  Compare against
    ``static_cost("exact", ...) * m`` (a cold recompute per update) to
    see why :class:`~repro.delta.DeltaSession` wins: the diagram is
    polynomial-size whenever compilation succeeds, while the cold form
    is ``2 ** atoms``.  Priced at the same
    :data:`CLOSED_FORM_UNIT_SECONDS` as the other closed forms.
    """
    from repro.runtime.preflight import delta_update_cost

    return _capped(float(delta_update_cost(diagram_nodes, updates)))


def predict_update_stream_seconds(diagram_nodes: int, updates: int) -> float:
    """Seconds forecast for a delta stream (closed-form pricing)."""
    obs.inc("costmodel.closed_form")
    return delta_stream_cost(diagram_nodes, updates) * CLOSED_FORM_UNIT_SECONDS


# ---------------------------------------------------------------------- #
# fitting: pure-Python ridge regression on log features
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class CostObservation:
    """One timed engine attempt: the fit's training row."""

    engine: str
    seconds: float
    features: Mapping[str, float]


@dataclass(frozen=True)
class EngineCalibration:
    """A fitted per-engine predictor: weights over log1p features."""

    weights: Tuple[float, ...]
    observations: int
    rmse: float


def _design_row(features: Mapping[str, float]) -> List[float]:
    return [1.0] + [
        math.log1p(max(0.0, _capped(features.get(name, 0.0))))
        for name in FEATURE_NAMES
    ]


def _solve(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Gaussian elimination with partial pivoting (SPD inputs here)."""
    size = len(rhs)
    augmented = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(size):
        pivot = max(range(col, size), key=lambda r: abs(augmented[r][col]))
        if abs(augmented[pivot][col]) < 1e-12:
            raise CalibrationError("singular normal equations")
        augmented[col], augmented[pivot] = augmented[pivot], augmented[col]
        lead = augmented[col][col]
        for row in range(size):
            if row == col:
                continue
            factor = augmented[row][col] / lead
            if factor:
                for k in range(col, size + 1):
                    augmented[row][k] -= factor * augmented[col][k]
    return [augmented[i][size] / augmented[i][i] for i in range(size)]


def fit(
    observations: Iterable[CostObservation], ridge: float = 1e-3
) -> "CostModel":
    """Fit per-engine log-linear predictors by ridge regression.

    ``log(seconds)`` is regressed on ``[1, log1p(feature), ...]`` via
    the normal equations; the ridge term keeps the system
    well-conditioned even on degenerate workloads (one query repeated).
    Engines with fewer than :data:`MIN_OBSERVATIONS` clean rows are
    left uncalibrated (closed-form fallback at prediction time).
    """
    grouped: Dict[str, List[CostObservation]] = {}
    for observation in observations:
        if not _finite(observation.seconds):
            continue
        grouped.setdefault(observation.engine, []).append(observation)
    engines: Dict[str, EngineCalibration] = {}
    width = len(FEATURE_NAMES) + 1
    for engine, rows in grouped.items():
        if len(rows) < MIN_OBSERVATIONS:
            continue
        xs = [_design_row(row.features) for row in rows]
        ys = [math.log(max(row.seconds, _SECONDS_FLOOR)) for row in rows]
        normal = [[0.0] * width for _ in range(width)]
        rhs = [0.0] * width
        for x, y in zip(xs, ys):
            for i in range(width):
                rhs[i] += x[i] * y
                for j in range(width):
                    normal[i][j] += x[i] * x[j]
        for i in range(width):
            normal[i][i] += ridge
        try:
            weights = _solve(normal, rhs)
        except CalibrationError:
            continue
        residual = 0.0
        for x, y in zip(xs, ys):
            predicted = sum(w * v for w, v in zip(weights, x))
            residual += (predicted - y) ** 2
        engines[engine] = EngineCalibration(
            weights=tuple(weights),
            observations=len(rows),
            rmse=math.sqrt(residual / len(rows)),
        )
    return CostModel(engines)


def fit_from_trace(records: Iterable[Mapping[str, Any]]) -> "CostModel":
    """Fit from ``runtime.attempt.cost`` trace events (JSONL or ListSink).

    Only successful attempts train the model — a refused preflight's
    microseconds say nothing about the engine's run time.
    """
    observations = []
    for record in records:
        if record.get("type") != "event":
            continue
        if record.get("name") != "runtime.attempt.cost":
            continue
        fields = record.get("fields", {})
        if fields.get("outcome") != "ok":
            continue
        engine = fields.get("engine")
        seconds = fields.get("seconds")
        if not isinstance(engine, str) or not _finite(seconds):
            continue
        features = {
            name: _capped(fields.get(name, 0.0)) for name in FEATURE_NAMES
        }
        observations.append(CostObservation(engine, float(seconds), features))
    return fit(observations)


# ---------------------------------------------------------------------- #
# the model: predict, order, persist
# ---------------------------------------------------------------------- #


class CostModel:
    """Per-engine wall-clock predictors with tier-safe chain ordering.

    A model with no calibrated engines (``CostModel()``, the cold-start
    and corrupt-file fallback) predicts from the closed forms, so it is
    always usable; :meth:`order_chain` never reorders across guarantee
    tiers regardless of how degenerate the calibration is.
    """

    __slots__ = ("engines", "source")

    def __init__(
        self,
        engines: Optional[Mapping[str, EngineCalibration]] = None,
        source: str = "",
    ):
        self.engines = dict(engines or {})
        self.source = source

    def calibrated(self, engine: str) -> bool:
        return engine in self.engines

    def predict_seconds(
        self, engine: str, features: Mapping[str, float]
    ) -> float:
        """Predicted wall-clock seconds (finite, positive, sortable).

        Uncalibrated engines price their closed form at
        :data:`CLOSED_FORM_UNIT_SECONDS` per work unit; a calibration
        whose weights produce a non-finite response predicts ``+inf``
        (it sorts last within its tier, never crashes a comparison).
        """
        calibration = self.engines.get(engine)
        if calibration is None:
            obs.inc("costmodel.closed_form")
            return static_cost(engine, features) * CLOSED_FORM_UNIT_SECONDS
        response = 0.0
        for weight, value in zip(calibration.weights, _design_row(features)):
            response += weight * value
        if not math.isfinite(response):
            return math.inf
        return math.exp(max(-_LOG_CLAMP, min(_LOG_CLAMP, response)))

    def order_chain(
        self,
        chain: Sequence[str],
        features: Mapping[str, float],
        quantity: str = "reliability",
    ) -> Tuple[str, ...]:
        """Sort a chain by predicted cost within guarantee tiers only.

        The chain is split into maximal consecutive runs of equal
        guarantee tier; each run is stably sorted by prediction; runs
        are concatenated in their original order.  The tier *sequence*
        of the output is therefore identical to the input's — the
        exact > relative > additive contract survives any calibration,
        including adversarial ones (NaN predictions sort last).
        """
        ordered: List[str] = []
        run: List[str] = []
        run_tier: Optional[str] = None

        def flush() -> None:
            if not run:
                return
            keyed = [
                (self.predict_seconds(name, features), index, name)
                for index, name in enumerate(run)
            ]
            keyed.sort(
                key=lambda item: (
                    1 if math.isnan(item[0]) else 0,
                    item[0],
                    item[1],
                )
            )
            ordered.extend(name for _, _, name in keyed)
            run.clear()

        for name in chain:
            tier = engine_guarantee(name, quantity)
            if tier != run_tier:
                flush()
                run_tier = tier
            run.append(name)
        flush()
        result = tuple(ordered)
        if result != tuple(chain):
            obs.inc("costmodel.reordered")
        return result

    # -- persistence ---------------------------------------------------- #

    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": CALIBRATION_VERSION,
            "features": list(FEATURE_NAMES),
            "engines": {
                name: {
                    "weights": list(calibration.weights),
                    "observations": calibration.observations,
                    "rmse": calibration.rmse,
                }
                for name, calibration in sorted(self.engines.items())
            },
        }

    def save(self, path: Union[str, "os.PathLike"]) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_payload(cls, payload: Any, source: str = "") -> "CostModel":
        """Validate a calibration payload; raise :class:`CalibrationError`.

        Per-engine validation is independent: a *partial* file keeps
        its valid engines and drops the broken ones (each drop counts
        one ``costmodel.fallback``) — a half-good calibration still
        beats closed forms for the engines it does cover.
        """
        if not isinstance(payload, dict):
            raise CalibrationError("calibration payload is not an object")
        if payload.get("version") != CALIBRATION_VERSION:
            raise CalibrationError(
                f"stale calibration version {payload.get('version')!r}; "
                f"expected {CALIBRATION_VERSION} — re-run `repro calibrate`"
            )
        if payload.get("features") != list(FEATURE_NAMES):
            raise CalibrationError(
                "calibration feature list does not match this build"
            )
        raw_engines = payload.get("engines")
        if not isinstance(raw_engines, dict):
            raise CalibrationError("calibration has no engines table")
        width = len(FEATURE_NAMES) + 1
        engines: Dict[str, EngineCalibration] = {}
        for name, entry in raw_engines.items():
            try:
                weights = tuple(float(w) for w in entry["weights"])
                if len(weights) != width:
                    raise ValueError("weight vector has the wrong length")
                if not all(math.isfinite(w) for w in weights):
                    raise ValueError("non-finite weight")
                observations = int(entry.get("observations", 0))
                rmse = float(entry.get("rmse", 0.0))
            except (TypeError, KeyError, ValueError):
                obs.inc("costmodel.fallback")
                continue
            engines[name] = EngineCalibration(weights, observations, rmse)
        return cls(engines, source=source)


def load_calibration(path: Union[str, "os.PathLike"]) -> CostModel:
    """Load and validate a calibration file; raise :class:`CalibrationError`."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise CalibrationError(f"cannot read calibration file: {exc}") from exc
    except ValueError as exc:
        raise CalibrationError(
            f"calibration file {path!s} is not valid JSON: {exc}"
        ) from exc
    return CostModel.from_payload(payload, source=str(path))


def load_or_fallback(path: Union[str, "os.PathLike"]) -> CostModel:
    """Load a calibration, degrading to closed forms instead of failing.

    A missing, unreadable, stale, or corrupt file yields a *cold*
    model (no calibrated engines → closed-form predictions) and one
    ``costmodel.fallback`` increment; `run`/`analyze` never crash on a
    bad calibration file.
    """
    try:
        return load_calibration(path)
    except CalibrationError as exc:
        obs.inc("costmodel.fallback")
        obs.event("costmodel.load_failed", path=str(path), detail=str(exc))
        return CostModel(source=str(path))


# ---------------------------------------------------------------------- #
# active-model registry (mirrors obs recorder / runtime budget patterns)
# ---------------------------------------------------------------------- #

_active_model: Optional[CostModel] = None


def active_model() -> Optional[CostModel]:
    """The model the executor consults when none is passed explicitly."""
    return _active_model


def set_model(model: Optional[CostModel]) -> Optional[CostModel]:
    """Install ``model`` as the active one; returns the previous."""
    global _active_model
    previous = _active_model
    _active_model = model
    return previous


@contextmanager
def use_model(model: Optional[CostModel]):
    """Scope-install a cost model (restored on exit)."""
    previous = set_model(model)
    try:
        yield model
    finally:
        set_model(previous)


def resolve_model(
    model: Union[None, CostModel, str, "os.PathLike"]
) -> Optional[CostModel]:
    """Normalise a ``cost_model`` argument: None → active, path → load."""
    if model is None:
        return active_model()
    if isinstance(model, CostModel):
        return model
    return load_or_fallback(model)


# ---------------------------------------------------------------------- #
# plan_chain: a budget-aware dry run of the executor
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class EngineForecast:
    """One engine's predicted fate in a chain walk."""

    engine: str
    guarantee: str
    #: "ok" | "cost_refused" | "fragment_mismatch" | "skipped_static"
    #: (the dichotomy router excludes the engine statically) |
    #: "not_tried"
    outcome: str
    predicted_seconds: float
    detail: str = ""
    #: Sampling engines only, under ``plan_chain(..., adaptive=True)``:
    #: the surrogate's expected draw count versus the worst-case bound
    #: the preflight reserves.  ``None`` elsewhere.
    expected_samples: Optional[int] = None
    worst_samples: Optional[int] = None


@dataclass(frozen=True)
class RaceForecast:
    """The simulated race: who launches when, who wins, who is wasted.

    Produced by ``plan_chain(..., race=...)`` — an event simulation of
    :func:`repro.runtime.racing.run_race` over the model's predicted
    per-engine seconds.  ``outcomes`` maps every engine in the chain to
    its predicted fate: ``"won"``, ``"preempted"``, ``"cancelled"``,
    ``"not_launched"``, ``"skipped_static"`` (excluded by the dichotomy
    router before launch), or a failure outcome (``"cost_refused"``,
    ``"fragment_mismatch"``, ``"budget_exceeded"``).
    ``finish_seconds`` gives each launched engine's predicted completion
    time on the race clock; ``elapsed_seconds`` is the predicted race
    wall-clock (the winner's decision time).
    """

    winner: Optional[str]
    overlap: float
    launch_order: Tuple[str, ...]
    outcomes: Mapping[str, str]
    finish_seconds: Mapping[str, float]
    elapsed_seconds: float


@dataclass(frozen=True)
class ChainPlan:
    """The simulated walk: ordered chain, forecasts, selected engine.

    ``dichotomy`` carries the static Dalvi–Suciu verdict
    (:class:`repro.logic.safety.SafeVerdict` /
    :class:`~repro.logic.safety.UnsafeVerdict`) the router consulted:
    the #P-hardness witness of an unsafe query travels with its
    forecast, and ``analyze --explain-dichotomy`` renders it.
    """

    chain: Tuple[str, ...]
    selected: Optional[str]
    forecasts: Tuple[EngineForecast, ...]
    features: Mapping[str, float]
    race: Optional[RaceForecast] = None
    dichotomy: Optional[Any] = None

    def describe(self) -> str:
        lines = []
        for forecast in self.forecasts:
            mark = "->" if forecast.engine == self.selected else "  "
            line = (
                f"{mark} {forecast.engine}: {forecast.outcome} "
                f"[{forecast.guarantee}] "
                f"~{forecast.predicted_seconds:.3g}s"
            )
            if forecast.worst_samples is not None:
                expected = forecast.expected_samples
                if expected is not None and expected < forecast.worst_samples:
                    line += (
                        f" samples~{expected}/{forecast.worst_samples}"
                        " expected/worst"
                    )
                else:
                    line += f" samples<={forecast.worst_samples}"
            if forecast.detail:
                line += f" — {forecast.detail}"
            lines.append(line)
        if self.race is not None:
            lines.append(
                f"race (overlap={self.race.overlap:g}): "
                f"winner={self.race.winner or 'none'} "
                f"~{self.race.elapsed_seconds:.3g}s, "
                f"launched {', '.join(self.race.launch_order) or 'nothing'}"
            )
        if self.dichotomy is not None:
            lines.append(f"dichotomy: {self.dichotomy.summary()}")
        return "\n".join(lines)


def _neutral_budget() -> Budget:
    """An uncapped budget for simulation-side grounding.

    ``plan_chain`` must be read-only with respect to the caller's
    budget: grounding done to *predict* a run may not consume the
    clause allowance of the run itself.  (The compiled grounding is
    cached, so the real run reuses it rather than paying twice.)
    """
    return Budget(max_atoms=None)


def _forecast_exact(db, query, budget, features) -> Tuple[str, str, int]:
    limit = budget.world_limit()
    estimate = worlds_cost(int(features["atoms"]))
    if limit is not None and estimate > limit:
        return (
            "cost_refused",
            f"2^{int(features['atoms'])} worlds over limit {limit}",
            0,
        )
    return "ok", "", 0


def _forecast_safe_lifted(db, query, budget, features) -> Tuple[str, str, int]:
    """Forecast for the statically-routed tier.

    Only reached when the dichotomy verdict is safe (the plan loop and
    the race partition mark unsafe queries ``skipped_static`` before
    dispatching here), and a safe verdict *is* the admissibility proof:
    the lifted plan terminates in polynomial time with no preflight.
    """
    return "ok", "", 0


def _forecast_lifted(db, query, budget, features) -> Tuple[str, str, int]:
    if not isinstance(query, FOQuery):
        return "fragment_mismatch", "lifted engine requires a first-order query", 0
    if query.arity != 0:
        return "fragment_mismatch", "lifted engine handles Boolean queries only", 0
    if not is_conjunctive(query.formula):
        return "fragment_mismatch", "lifted engine requires a conjunctive query", 0
    try:
        if not is_safe(query.formula):
            return "fragment_mismatch", "query has no safe plan", 0
    except QueryError as exc:
        return "fragment_mismatch", str(exc), 0
    return "ok", "", 0


def _kl_targets(db, query, quantity):
    """The Boolean existential sentences one Karp–Luby attempt grounds."""
    formula = query.formula
    if quantity == "probability":
        if not is_existential(formula):
            raise QueryError("sentence is not existential")
        return [formula], 1
    if query.arity == 0:
        if is_existential(formula):
            return [formula], 1
        if is_universal(formula):
            return [neg(formula)], 1
        raise QueryError(
            "Corollary 5.5 applies to existential or universal queries only"
        )
    if not (is_existential(formula) or is_universal(formula)):
        raise QueryError(
            "Corollary 5.5 applies to existential or universal queries only"
        )
    n = db.universe_size
    cells = n**query.arity
    if cells == 0:
        raise QueryError("reliability undefined on an empty universe")
    targets = []
    for args in product(db.structure.universe, repeat=query.arity):
        inner = query.instantiated(args)
        if is_existential(inner):
            targets.append(inner)
        elif is_universal(inner):
            targets.append(neg(inner))
        else:
            raise QueryError(
                "Corollary 5.5 applies to existential or universal queries only"
            )
    return targets, cells


def _forecast_karp_luby(
    db, query, quantity, epsilon, delta, budget, samples_used
) -> Tuple[str, str, int]:
    if not isinstance(query, FOQuery):
        return (
            "fragment_mismatch",
            "karp_luby engine requires a first-order query",
            0,
        )
    try:
        targets, cells = _kl_targets(db, query, quantity)
    except QueryError as exc:
        return "fragment_mismatch", str(exc), 0
    per_delta = delta / cells if cells > 1 else delta
    cap = budget.max_samples
    consumed = 0
    for target in targets:
        try:
            with apply(_neutral_budget()):
                predicted = _simulated_grounding_cost(db, target, budget)
                if predicted is not None:
                    return predicted[0], predicted[1], consumed
                grounding = ground_existential_to_dnf(db, target)
        except QueryError as exc:
            return "fragment_mismatch", str(exc), consumed
        if grounding.dnf.is_true() or grounding.dnf.is_false():
            continue
        needed = sample_count(len(grounding.dnf.clauses), epsilon, per_delta)
        if cap is not None:
            remaining = max(0, cap - budget.samples - samples_used - consumed)
            if needed > remaining:
                return (
                    "cost_refused",
                    f"needs {needed} samples, {remaining} remain",
                    consumed,
                )
        consumed += needed
    return "ok", "", consumed


def _simulated_grounding_cost(db, target, budget):
    """Mirror ``preflight_grounding`` against the *real* budget.

    Returns a ``(outcome, detail)`` pair when the real run would refuse
    the grounding, else ``None``.  Runs inside the neutral budget so
    the caller's allowance is untouched.
    """
    limit = budget.max_ground_clauses
    if limit is None:
        return None
    try:
        variables, matrix = existential_parts(target)
    except QueryError:
        return None
    templates = dnf_clauses(matrix)
    estimate = grounding_cost(db.universe_size, len(variables), len(templates))
    if estimate > limit:
        return (
            "cost_refused",
            f"grounding needs {estimate} clauses over limit {limit}",
        )
    return None


def _forecast_montecarlo(
    db, query, quantity, epsilon, delta, budget, samples_used
) -> Tuple[str, str, int]:
    if quantity == "reliability":
        cells = db.universe_size ** int(getattr(query, "arity", 0))
        if cells == 0:
            return (
                "fragment_mismatch",
                "reliability undefined on an empty universe",
                0,
            )
    needed = hoeffding_samples(epsilon, delta)
    cap = budget.max_samples
    if cap is not None:
        remaining = max(0, cap - budget.samples - samples_used)
        if needed > remaining:
            return (
                "cost_refused",
                f"needs {needed} samples, {remaining} remain",
                0,
            )
    return "ok", "", needed


def _forecast_engine(
    db, query, quantity, epsilon, delta, budget, features, name, samples_used
) -> Tuple[str, str, int]:
    """Dispatch to the per-engine forecast: (outcome, detail, samples)."""
    if name == "exact":
        return _forecast_exact(db, query, budget, features)
    if name == "safe_lifted":
        return _forecast_safe_lifted(db, query, budget, features)
    if name == "lifted":
        return _forecast_lifted(db, query, budget, features)
    if name == "karp_luby":
        return _forecast_karp_luby(
            db, query, quantity, epsilon, delta, budget, samples_used
        )
    return _forecast_montecarlo(
        db, query, quantity, epsilon, delta, budget, samples_used
    )


class _SimRacer:
    """Mutable per-engine state of the racing simulation."""

    __slots__ = ("index", "name", "rank", "outcome", "detail", "finish", "predicted")

    def __init__(self, index: int, name: str, rank: int, predicted: float):
        self.index = index
        self.name = name
        self.rank = rank
        self.outcome: Optional[str] = None
        self.detail = ""
        self.finish: Optional[float] = None
        self.predicted = predicted


def _simulate_race(
    db, query, chain, budget, quantity, epsilon, delta, scorer, features, overlap
) -> RaceForecast:
    """Event-simulate :func:`repro.runtime.racing.run_race` on model time.

    The simulation replays the racing driver's loop exactly — launch
    stagger (``overlap`` of the fair-share slice, or of the nominal
    share without a deadline), instant completions for preflight
    refusals and fragment mismatches, ``predicted_seconds`` completions
    for engines forecast ``ok``, cumulative chain-order sample
    reservations (the same ``_forecast_*`` arithmetic the executor's
    reservations reuse), equal-time completions processed before
    launches, early launch on a failure cascade, and the
    winner/held/preempt rules of ``on_complete``.  Under budgets made of
    caps (no deadline) and a cost model whose predictions match the
    engines' stall times, the forecast winner is the race winner — the
    racing differential harness scripts exactly that correspondence.
    """
    from repro.runtime.racing import NOMINAL_SHARE_SECONDS

    total = len(chain)
    deadline = budget.deadline_seconds
    racers = [
        _SimRacer(
            index,
            name,
            _GUARANTEE_RANK.get(engine_guarantee(name, quantity), 3),
            scorer.predict_seconds(name, features),
        )
        for index, name in enumerate(chain)
    ]
    pending = list(racers)
    contenders: List[_SimRacer] = []
    events: List[_SimRacer] = []  # launched, completion not yet processed
    launch_order: List[str] = []
    held: Optional[_SimRacer] = None
    winner: Optional[_SimRacer] = None
    samples_reserved = 0
    t = 0.0
    next_launch_at = 0.0

    def launch(racer: _SimRacer) -> None:
        nonlocal samples_reserved, next_launch_at
        remaining = None if deadline is None else deadline - t
        if remaining is not None and remaining <= 0:
            racer.outcome = "budget_exceeded"
            racer.detail = "deadline exhausted before the engine started"
            racer.finish = t
            return
        share = None if remaining is None else remaining / (total - racer.index)
        outcome, detail, spent = _forecast_engine(
            db, query, quantity, epsilon, delta, budget, features,
            racer.name, samples_reserved,
        )
        samples_reserved += spent
        if outcome == "ok":
            racer.finish = t + racer.predicted
            if share is not None and racer.predicted > share:
                outcome = "budget_exceeded"
                detail = f"predicted {racer.predicted:.3g}s over {share:.3g}s slice"
            elif deadline is not None and racer.finish > deadline:
                outcome = "budget_exceeded"
                detail = f"predicted finish {racer.finish:.3g}s past the deadline"
        else:
            racer.finish = t
        racer.outcome = outcome
        racer.detail = detail
        launch_order.append(racer.name)
        contenders.append(racer)
        events.append(racer)
        next_launch_at = t + overlap * (
            share if share is not None else NOMINAL_SHARE_SECONDS
        )

    def on_complete(racer: _SimRacer) -> None:
        nonlocal held, winner, next_launch_at
        if racer in contenders:
            contenders.remove(racer)
        if racer.outcome == "ok":
            for other in list(contenders):
                if other.rank >= racer.rank:
                    other.outcome = "cancelled"
                    other.detail = f"preempted by {racer.name!r}"
                    contenders.remove(other)
                    if other in events:
                        events.remove(other)
            for other in pending:
                other.outcome = "not_launched"
            pending.clear()
            if held is not None:
                held.outcome = "preempted"
                held.detail = f"preempted by stronger engine {racer.name!r}"
            held = racer
        elif not contenders and held is None and pending:
            next_launch_at = t

        if held is not None and not any(r.rank < held.rank for r in contenders):
            winner = held
            held = None

    while winner is None and (pending or events):
        while pending and winner is None and (not contenders or t >= next_launch_at):
            launch(pending.pop(0))
        if winner is not None or not events:
            continue
        racer = min(events, key=lambda r: (r.finish, r.index))
        if pending and contenders and next_launch_at < racer.finish:
            # The driver's wait times out at the launch target first.
            t = max(t, next_launch_at)
            continue
        events.remove(racer)
        t = max(t, racer.finish)
        on_complete(racer)

    for racer in contenders:
        racer.outcome = "cancelled"
        racer.detail = racer.detail or "cancelled when the race was decided"
    for racer in pending:
        racer.outcome = "not_launched"
    if winner is not None:
        winner.outcome = "won"
    return RaceForecast(
        winner=winner.name if winner is not None else None,
        overlap=overlap,
        launch_order=tuple(launch_order),
        outcomes={racer.name: racer.outcome or "not_launched" for racer in racers},
        finish_seconds={
            racer.name: racer.finish for racer in racers if racer.finish is not None
        },
        elapsed_seconds=t,
    )


def plan_chain(
    db,
    query: Any,
    chain: Optional[Sequence[str]] = None,
    budget: Optional[Budget] = None,
    quantity: str = "reliability",
    epsilon: float = 0.05,
    delta: float = 0.05,
    cost_model: Union[None, CostModel, str, "os.PathLike"] = None,
    race: Union[None, bool, float] = None,
    adaptive: Union[None, bool] = None,
) -> ChainPlan:
    """Dry-run the fallback executor: predict its walk without running it.

    The simulation mirrors :func:`~repro.runtime.executor.run_with_fallback`
    step for step — the same chain ordering under the same cost model,
    the same preflights against the same budget (the active one when
    ``budget`` is None), the same fragment checks, and sequential
    sample-consumption accounting across attempts (a partially-consumed
    Karp–Luby attempt shrinks what Monte Carlo preflights against).
    Under budgets made of ``max_atoms`` / ``max_samples`` caps the
    forecast is *exact*: the selected engine is the engine the real run
    answers with.  Deadlines are inherently racy and running
    world/clause caps depend on cache state, so those can diverge —
    the differential harness pins the exact cases.

    The caller's budget is never consumed: simulation-side grounding
    runs under a neutral budget (and warms the compilation cache the
    real run then hits).

    ``race`` mirrors the executor's parameter: ``True`` (or an overlap
    fraction) simulates the speculative race instead of the sequential
    walk — the returned plan carries a :class:`RaceForecast` in
    ``plan.race``, ``selected`` is the predicted race winner, and each
    engine's forecast outcome is its predicted fate in the race.

    ``adaptive`` mirrors the executor's parameter too: the cost model
    is wrapped by the same surrogate adjustment
    (:func:`repro.runtime.adaptive.surrogate_adjusted`), so predicted
    seconds for the sampling engines reflect expected stopping while
    sample-cap *preflights stay worst-case* — exactly what the real run
    reserves, which is what keeps analyze/run engine selection in
    lockstep.  Sampling-engine forecasts additionally carry
    ``expected_samples``/``worst_samples``.
    """
    from repro.logic.safety import classify_dichotomy
    from repro.runtime.executor import (
        DEFAULT_CHAIN,
        ENGINES,
        STATIC_SAFE_ENGINES,
        race_partition,
        static_skip_detail,
    )

    if quantity not in ("reliability", "probability"):
        raise QueryError(
            f"unknown quantity {quantity!r}; use 'reliability' or 'probability'"
        )
    chain = tuple(chain) if chain is not None else DEFAULT_CHAIN
    if not chain:
        raise ResourceError("engine chain is empty")
    unknown = [name for name in chain if name not in ENGINES]
    if unknown:
        raise ResourceError(
            f"unknown engines {unknown}; available: {sorted(ENGINES)}"
        )
    query = as_query(query)
    if quantity == "probability" and getattr(query, "arity", 0) != 0:
        raise QueryError(
            "quantity='probability' needs a Boolean (0-ary) query; "
            "use quantity='reliability' for k-ary queries"
        )
    budget = budget if budget is not None else active_budget()
    model = resolve_model(cost_model)
    adaptive = bool(adaptive)
    surrogate = None
    if adaptive:
        from repro.runtime.adaptive import (
            active_surrogate,
            surrogate_adjusted,
        )

        surrogate = active_surrogate()
        if model is not None:
            # Identical wrapping to run_with_fallback: analyze/run
            # chain ordering cannot drift apart under adaptivity.
            model = surrogate_adjusted(model, surrogate)
    features = plan_features(db, query, quantity, epsilon, delta)
    if model is not None:
        chain = model.order_chain(chain, features, quantity)
    if model is not None:
        scorer = model
    elif adaptive:
        from repro.runtime.adaptive import surrogate_adjusted

        # Display-side only: with no model there is no reordering to
        # keep in agreement, but forecasts (and serve admission's
        # deadline arithmetic) should still price expected stopping.
        scorer = surrogate_adjusted(CostModel(), surrogate)
    else:
        scorer = CostModel()
    verdict = classify_dichotomy(query)

    if race is not None and race is not False:
        from repro.runtime.racing import DEFAULT_OVERLAP

        overlap = DEFAULT_OVERLAP if race is True else float(race)
        if not (overlap >= 0.0 and math.isfinite(overlap)):
            raise ResourceError(
                f"race overlap must be a finite fraction >= 0, got {race!r}"
            )
        # The executor partitions the (ordered) chain before launching:
        # statically-skipped engines never race.  Simulate over the
        # same trimmed chain so shares and staggers line up exactly.
        race_chain, skipped = race_partition(chain, verdict, quantity)
        if race_chain:
            forecast = _simulate_race(
                db, query, race_chain, budget, quantity, epsilon, delta,
                scorer, features, overlap,
            )
        else:
            forecast = RaceForecast(
                winner=None,
                overlap=overlap,
                launch_order=(),
                outcomes={},
                finish_seconds={},
                elapsed_seconds=0.0,
            )
        outcomes = dict(forecast.outcomes)
        details = {name: detail for name, detail in skipped}
        for name in details:
            outcomes[name] = "skipped_static"
        forecast = RaceForecast(
            winner=forecast.winner,
            overlap=forecast.overlap,
            launch_order=forecast.launch_order,
            outcomes=outcomes,
            finish_seconds=forecast.finish_seconds,
            elapsed_seconds=forecast.elapsed_seconds,
        )
        race_forecasts = tuple(
            EngineForecast(
                name,
                engine_guarantee(name, quantity),
                forecast.outcomes[name],
                scorer.predict_seconds(name, features),
                details.get(name, ""),
            )
            for name in chain
        )
        return ChainPlan(
            chain,
            forecast.winner,
            race_forecasts,
            features,
            race=forecast,
            dichotomy=verdict,
        )

    forecasts: List[EngineForecast] = []
    selected: Optional[str] = None
    samples_used = 0
    for name in chain:
        predicted = scorer.predict_seconds(name, features)
        tier = engine_guarantee(name, quantity)
        if selected is not None:
            forecasts.append(
                EngineForecast(name, tier, "not_tried", predicted)
            )
            continue
        if name in STATIC_SAFE_ENGINES:
            skip_detail = static_skip_detail(name, verdict)
            if skip_detail is not None:
                forecasts.append(
                    EngineForecast(
                        name, tier, "skipped_static", 0.0, skip_detail
                    )
                )
                continue
        if name == "exact":
            outcome, detail, spent = _forecast_exact(db, query, budget, features)
        elif name == "safe_lifted":
            outcome, detail, spent = _forecast_safe_lifted(
                db, query, budget, features
            )
        elif name == "lifted":
            outcome, detail, spent = _forecast_lifted(db, query, budget, features)
        elif name == "karp_luby":
            outcome, detail, spent = _forecast_karp_luby(
                db, query, quantity, epsilon, delta, budget, samples_used
            )
        else:
            outcome, detail, spent = _forecast_montecarlo(
                db, query, quantity, epsilon, delta, budget, samples_used
            )
        samples_used += spent
        expected: Optional[int] = None
        worst: Optional[int] = None
        if name in ("karp_luby", "montecarlo") and spent > 0:
            worst = spent
            if surrogate is not None:
                fraction = surrogate.expected_fraction(name)
                expected = max(1, math.ceil(spent * fraction))
        forecasts.append(
            EngineForecast(
                name,
                tier,
                outcome,
                predicted,
                detail,
                expected_samples=expected,
                worst_samples=worst,
            )
        )
        if outcome == "ok":
            selected = name
    return ChainPlan(
        chain, selected, tuple(forecasts), features, dichotomy=verdict
    )


# ---------------------------------------------------------------------- #
# calibration: a seeded workload, run and fit in one call
# ---------------------------------------------------------------------- #


def calibration_workload(
    seed: int = 0, cases: int = 8
) -> List[Tuple[Any, Any, str]]:
    """A seeded mixed workload of (db, query, quantity) calibration cases.

    Mixes the fragments the engines specialise in: safe conjunctive
    (lifted), quantifier-free and small existential (exact), larger
    existential and universal (Karp–Luby vs Monte Carlo), and a binary
    query (per-cell amplification).  Database sizes stay small enough
    that every engine answers in well under a second — calibration is
    about *relative* cost.
    """
    from repro.workloads.random_db import random_unreliable_database

    rng = random.Random(seed)
    queries = [
        ("exists x. exists y. E(x, y) & S(y)", None, "reliability"),
        ("exists x. S(x)", None, "probability"),
        ("forall x. exists y. E(x, y) | S(x)", None, "reliability"),
        ("exists x. exists y. E(x, y) | (S(x) & S(y))", None, "reliability"),
        ("exists y. E(x, y)", ["x"], "reliability"),  # unary: per-cell costs
        ("S(x) & ~S(y)", ["x", "y"], "reliability"),  # quantifier-free, binary
    ]
    workload = []
    for index in range(cases):
        size = rng.choice((3, 4, 5))
        db = random_unreliable_database(
            random.Random(rng.getrandbits(32)),
            size=size,
            relations={"E": 2, "S": 1},
            density=rng.choice((0.3, 0.5)),
        )
        text, free, quantity = queries[index % len(queries)]
        workload.append((db, FOQuery(text, free), quantity))
    return workload


def calibrate(
    cases: Optional[Sequence[Tuple[Any, Any, str]]] = None,
    epsilon: float = 0.1,
    delta: float = 0.1,
    rng: int = 0,
    repeats: int = 2,
    seed: int = 0,
    budget: Optional[Budget] = None,
) -> CostModel:
    """Run the workload through every engine and fit a model.

    Each case is executed once per engine as a single-engine chain
    (engines that refuse or mismatch simply contribute no row), with a
    trace recorder capturing the executor's ``runtime.attempt.cost``
    events — the same pipeline a production trace file feeds through
    :func:`fit_from_trace`.  Repeats mix cold- and warm-cache timings.

    The accuracy targets are *spread* per case (``epsilon`` down to
    ``epsilon / 5``): the batched sampling kernels make wall-clock
    nearly flat in the sample count, and without observations across a
    wide ``kl_samples``/``mc_samples`` range the log-linear fit would
    extrapolate a steep sample-count slope onto tight-accuracy
    workloads and overpredict by orders of magnitude.
    """
    from repro.runtime.executor import DEFAULT_CHAIN, run_with_fallback
    from repro.util.errors import FallbackExhausted

    if cases is None:
        cases = calibration_workload(seed)
    run_budget = budget if budget is not None else Budget(max_atoms=14)
    sink = obs.ListSink()
    recorder = obs.StatsRecorder(sink=sink)
    previous = obs.set_recorder(recorder)
    try:
        spread = (1.0, 0.5, 0.2)
        for repeat in range(max(1, repeats)):
            for case_index, (db, query, quantity) in enumerate(cases):
                factor = spread[(case_index + repeat) % len(spread)]
                for engine in DEFAULT_CHAIN:
                    try:
                        run_with_fallback(
                            db,
                            query,
                            chain=(engine,),
                            budget=run_budget,
                            quantity=quantity,
                            epsilon=max(1e-3, epsilon * factor),
                            delta=max(1e-3, delta * factor),
                            rng=rng + repeat * 1000 + case_index,
                        )
                    except FallbackExhausted:
                        continue
    finally:
        obs.set_recorder(previous)
    model = fit_from_trace(sink.events)
    obs.inc("costmodel.calibrations")
    obs.gauge("costmodel.calibrated_engines", len(model.engines))
    return model
