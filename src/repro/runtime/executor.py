"""The fallback executor: degrade gracefully instead of hanging or dying.

Operationalizes the paper's complexity landscape as an execution policy.
The engines, in decreasing order of guarantee strength:

``safe_lifted``
    the dichotomy-routed top tier: the static Dalvi–Suciu classifier
    (:func:`repro.logic.safety.classify_dichotomy`) proves the query
    safe *before* anything runs, and the lifted plan answers exactly in
    polynomial time.  On any other query the tier is *statically
    skipped* (outcome ``"skipped_static"``, never counted as a
    failure) — a statically-safe query therefore never touches
    enumeration or sampling, and an unsafe one costs nothing here.
``exact``
    the exact dispatcher (Propositions 3.1, Theorem 4.2/5.4 machinery);
    answers with an exact :class:`~fractions.Fraction`.  Preflighted by
    the Theorem 4.2 world bound ``2 ** |relevant atoms|``.
``lifted``
    safe-plan lifted inference — exact and polynomial, but only for
    safe (hierarchical, self-join-free) Boolean conjunctive queries.
    Kept for explicit chains; the default chain routes safe queries
    through ``safe_lifted`` instead.
``karp_luby``
    the Theorem 5.4 FPTRAS / Corollary 5.5 estimator — *relative*
    (epsilon, delta) on probabilities, *additive* on reliability;
    existential/universal queries only.
``montecarlo``
    direct world sampling with a Hoeffding *additive* (epsilon, delta)
    bound — works for any polynomial-time evaluable query.

:func:`run_with_fallback` walks such a chain under one shared
:class:`~repro.runtime.budget.Budget`: an engine that raises
:class:`CostRefused` (preflight), :class:`BudgetExceeded` (cooperative
checkpoint) or :class:`QueryError` (fragment mismatch) is recorded and
the next engine gets its turn.  The returned :class:`RuntimeResult`
carries the value, the engine that answered, its guarantee type, and
the full attempt log; everything is mirrored into :mod:`repro.obs`
(``runtime.*`` counters, per-attempt spans).
"""

from __future__ import annotations

import math
import time
from contextlib import nullcontext
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from repro import obs
from repro.logic.classify import is_conjunctive
from repro.logic.conjunctive import ConjunctiveQuery
from repro.logic.evaluator import FOQuery
from repro.reliability.approx import existential_probability, reliability_additive
from repro.reliability.exact import as_query, reliability, truth_probability
from repro.reliability.grounding import relevant_atoms
from repro.reliability.lifted import lifted_probability, lifted_reliability
from repro.reliability.montecarlo import (
    estimate_reliability_hamming,
    estimate_truth_probability,
)
from repro.runtime import costmodel
from repro.runtime.budget import Budget, active_budget, apply
from repro.runtime.preflight import preflight_worlds
from repro.util.errors import (
    BudgetExceeded,
    CostRefused,
    FallbackExhausted,
    QueryError,
    ResourceError,
)
from repro.util.rng import Seed, as_rng

import random

QueryLike = Any
RngLike = Union[random.Random, Seed]

#: The default degradation chain, ordered by guarantee strength:
#: statically-routed exact-polynomial > exact > relative/additive
#: FPTRAS > additive MC.  ``safe_lifted`` leads so that a large safe
#: query bypasses the exact engine's ``2 ** atoms`` preflight refusal
#: entirely; it is statically skipped (at zero cost) on every other
#: query.  ``lifted`` stays registered for explicit chains.
DEFAULT_CHAIN: Tuple[str, ...] = (
    "safe_lifted",
    "exact",
    "karp_luby",
    "montecarlo",
)

#: Guarantee types, strongest first (see docs/ROBUSTNESS.md).
GUARANTEE_ORDER: Tuple[str, ...] = ("exact", "relative", "additive")


@dataclass(frozen=True)
class Attempt:
    """One engine's turn in a fallback chain.

    ``outcome`` is ``"ok"``, ``"cost_refused"``, ``"budget_exceeded"``,
    ``"fragment_mismatch"``, or ``"skipped_static"`` (the dichotomy
    router excluded the engine before it ran — not a failure; the
    ``detail`` carries the classifier's witness); ``detail`` is the
    error message for failed attempts (empty on success).
    """

    engine: str
    outcome: str
    detail: str
    elapsed: float


@dataclass(frozen=True)
class RuntimeResult:
    """The answer of a fallback run, with full provenance.

    ``guarantee`` is one of :data:`GUARANTEE_ORDER`: ``"exact"`` (a
    true value, also in ``fraction``), ``"relative"`` (FPTRAS:
    ``Pr[|est - v| > epsilon * v] < delta``) or ``"additive"``
    (``Pr[|est - v| > epsilon] < delta``); ``epsilon``/``delta`` are
    ``None`` for exact answers.  ``attempts`` records every engine
    tried, in order, ending with the one that answered.
    """

    value: float
    engine: str
    guarantee: str
    quantity: str
    epsilon: Optional[float]
    delta: Optional[float]
    attempts: Tuple[Attempt, ...]
    elapsed: float
    fraction: Optional[Fraction] = None

    def __float__(self) -> float:
        return self.value

    def describe(self) -> str:
        """One line per attempt plus the final verdict (CLI rendering)."""
        lines = []
        for attempt in self.attempts:
            if attempt.outcome == "ok":
                lines.append(
                    f"  {attempt.engine}: ok ({attempt.elapsed:.3f}s)"
                )
            else:
                lines.append(
                    f"  {attempt.engine}: {attempt.outcome} — "
                    f"{attempt.detail} ({attempt.elapsed:.3f}s)"
                )
        bound = (
            ""
            if self.guarantee == "exact"
            else f" (epsilon={self.epsilon}, delta={self.delta})"
        )
        lines.append(
            f"{self.quantity} = {self.value:.6f} via {self.engine} "
            f"[{self.guarantee}]{bound} in {self.elapsed:.3f}s"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class _Request:
    quantity: str
    epsilon: float
    delta: float
    rng: random.Random
    #: Sequential empirical-Bernstein stopping for the sampling engines
    #: (see :mod:`repro.runtime.adaptive`); exact engines ignore it.
    adaptive: bool = False


@dataclass(frozen=True)
class _Answer:
    value: float
    guarantee: str
    epsilon: Optional[float]
    delta: Optional[float]
    fraction: Optional[Fraction] = None


def _engine_exact(db, query, req: _Request) -> _Answer:
    """Exact dispatcher, preflighted by the Theorem 4.2 world bound.

    ``2 ** |relevant atoms|`` is the general-case cost (world
    enumeration); the quantifier-free/grounded/lifted fast paths can
    beat it, but their worst cases are of the same order, so the bound
    is the honest conservative preflight for "exact, whatever it takes".
    """
    preflight_worlds(len(relevant_atoms(db, query)))
    if req.quantity == "probability":
        value = truth_probability(db, query)
    else:
        value = reliability(db, query)
    return _Answer(float(value), "exact", None, None, fraction=value)


def _engine_lifted(db, query, req: _Request) -> _Answer:
    """Safe-plan lifted inference: exact and polynomial, narrow fragment."""
    if not isinstance(query, FOQuery):
        raise QueryError("lifted engine requires a first-order query")
    if query.arity != 0:
        raise QueryError("lifted engine handles Boolean queries only")
    if not is_conjunctive(query.formula):
        raise QueryError("lifted engine requires a conjunctive query")
    cq = ConjunctiveQuery.from_formula(query.formula)
    if req.quantity == "probability":
        value = lifted_probability(db, cq)
    else:
        value = lifted_reliability(db, cq)
    return _Answer(float(value), "exact", None, None, fraction=value)


def _engine_safe_lifted(db, query, req: _Request) -> _Answer:
    """Dichotomy-routed lifted inference: statically-proved safe queries.

    The executor's static router normally guarantees this engine only
    runs on queries the classifier proved safe; the in-engine re-check
    is defence in depth for explicit single-engine chains.
    """
    from repro.logic.safety import classify_dichotomy

    verdict = classify_dichotomy(query)
    if not verdict.safe:
        raise QueryError(
            f"safe_lifted requires a statically safe query — {verdict.summary()}"
        )
    return _engine_lifted(db, query, req)


def _engine_karp_luby(db, query, req: _Request) -> _Answer:
    """Theorem 5.4 FPTRAS / Corollary 5.5 additive estimator."""
    if not isinstance(query, FOQuery):
        raise QueryError("karp_luby engine requires a first-order query")
    if req.quantity == "probability":
        estimate = existential_probability(
            db, query, req.epsilon, req.delta, req.rng,
            adaptive=req.adaptive,
        )
        return _Answer(estimate.value, "relative", req.epsilon, req.delta)
    estimate = reliability_additive(
        db, query, req.epsilon, req.delta, req.rng, adaptive=req.adaptive
    )
    return _Answer(estimate.value, "additive", req.epsilon, req.delta)


def _engine_montecarlo(db, query, req: _Request) -> _Answer:
    """Hoeffding world sampling: weakest guarantee, widest applicability."""
    if req.quantity == "probability":
        value = estimate_truth_probability(
            db, query, req.rng, epsilon=req.epsilon, delta=req.delta,
            adaptive=req.adaptive,
        )
    else:
        value = estimate_reliability_hamming(
            db, query, req.rng, epsilon=req.epsilon, delta=req.delta,
            adaptive=req.adaptive,
        )
    return _Answer(value, "additive", req.epsilon, req.delta)


#: Engine registry.  :func:`repro.runtime.faults.inject` swaps entries
#: for fault-wrapped versions; :func:`run_with_fallback` looks names up
#: per attempt, so injection works mid-chain.
ENGINES: Dict[str, Callable[..., _Answer]] = {
    "safe_lifted": _engine_safe_lifted,
    "exact": _engine_exact,
    "lifted": _engine_lifted,
    "karp_luby": _engine_karp_luby,
    "montecarlo": _engine_montecarlo,
}

#: Engines the dichotomy router gates statically: they are *skipped*
#: (outcome ``"skipped_static"``, counter ``runtime.skipped_static``,
#: zero elapsed, not a failure) whenever the classifier's verdict is
#: unsafe, instead of being attempted and caught mid-chain.
STATIC_SAFE_ENGINES: Tuple[str, ...] = ("safe_lifted", "lifted")


def static_skip_detail(name: str, verdict) -> Optional[str]:
    """The skip reason for ``name`` under ``verdict``, or ``None`` to run.

    Shared between the sequential walk, the racing dispatcher, and
    :func:`repro.runtime.costmodel.plan_chain` — the forecast must mark
    ``skipped_static`` exactly where the run does.
    """
    if name in STATIC_SAFE_ENGINES and not verdict.safe:
        return verdict.summary()
    return None


def race_partition(
    chain: Sequence[str], verdict, quantity: str
) -> Tuple[Tuple[str, ...], Tuple[Tuple[str, str], ...]]:
    """Split a race chain into ``(kept, skipped)`` by the static verdict.

    A statically-*safe* query must never launch a sampling racer: when
    the chain contains an exact-tier engine, every weaker engine is
    statically skipped (speculating on a sampler cannot beat a
    polynomial exact answer and would waste its samples).  A chain with
    no exact-tier engine races as given — the caller asked for
    samplers explicitly.  On an *unsafe* verdict the dichotomy-gated
    engines are skipped, exactly as in the sequential walk.  Skipped
    entries are ``(engine, detail)`` pairs.
    """
    kept = []
    skipped = []
    if verdict.safe:
        has_exact = any(
            costmodel.engine_guarantee(name, quantity) == "exact"
            for name in chain
        )
        if not has_exact:
            return tuple(chain), ()
        for name in chain:
            if costmodel.engine_guarantee(name, quantity) == "exact":
                kept.append(name)
            else:
                skipped.append(
                    (
                        name,
                        "statically safe query: sampling racer suppressed "
                        f"({verdict.summary()})",
                    )
                )
    else:
        for name in chain:
            detail = static_skip_detail(name, verdict)
            if detail is None:
                kept.append(name)
            else:
                skipped.append((name, detail))
    return tuple(kept), tuple(skipped)


def _record_prediction_error(model, engine, features, elapsed) -> None:
    """Mirror a successful attempt's predicted-vs-observed cost into obs.

    ``costmodel.prediction_error`` is the absolute log10 ratio of
    observed to predicted seconds (0 = perfect, 1 = off by 10x) — the
    quantity the calibration smoke lane bounds.
    """
    predicted = model.predict_seconds(engine, features)
    obs.inc("costmodel.predictions")
    if not (predicted > 0 and math.isfinite(predicted)):
        return
    ratio = max(elapsed, 1e-9) / predicted
    obs.observe("costmodel.prediction_error", abs(math.log10(ratio)))
    obs.gauge("costmodel.last_ratio", ratio)


#: Attempt outcomes a retry could plausibly cure: a blown deadline or
#: an injected timeout may pass on a later try, while a cost refusal
#: (the preflight mathematics) and a fragment mismatch (the query
#: itself) are permanent.  The serve layer's retry policy keys on this.
TRANSIENT_OUTCOMES: Tuple[str, ...] = ("budget_exceeded",)


def _classify_failure(exc: Exception) -> Tuple[str, str]:
    if isinstance(exc, CostRefused):
        return "cost_refused", "runtime.cost_refused"
    if isinstance(exc, BudgetExceeded):
        return "budget_exceeded", "runtime.budget_exceeded"
    return "fragment_mismatch", "runtime.fragment_mismatch"


def classify_failure(exc: Exception) -> Tuple[str, str]:
    """The executor's failure taxonomy: ``(outcome, obs counter)``.

    Public alias of the classifier every degradation path shares —
    the sequential walk, the racing executor, and the serve layer's
    retry/breaker policies all speak these outcome strings.
    """
    return _classify_failure(exc)


def _run_clock():
    """The clock a fallback run times itself with.

    Normally the wall clock, but a run scheduled inside a worker body
    (a serve pool worker, a racer) must read the scheduler's clock so
    attempt timings — and therefore whole-server traces — replay
    deterministically on the virtual clock.  This is the re-entrancy
    contract: the executor no longer assumes it owns the process or
    the wall clock.
    """
    from repro.runtime.racing import current_scheduler

    scheduler = current_scheduler()
    return time.perf_counter if scheduler is None else scheduler.now


def _attempt_rng(base: int, engine: str) -> random.Random:
    """The deterministic generator of one engine attempt.

    Derived from a single 64-bit draw of the caller's ``rng`` plus the
    engine *name* — never from sibling attempts' consumption — so an
    engine's value is identical whether it runs alone, after failed
    predecessors in a sequential chain, or concurrently in a race.
    That independence is what lets the racing property tests assert
    value equality against solo sequential runs.
    """
    return random.Random(f"{base:x}:attempt:{engine}")


def run_with_fallback(
    db,
    query: QueryLike,
    chain: Sequence[str] = DEFAULT_CHAIN,
    budget: Optional[Budget] = None,
    quantity: str = "reliability",
    epsilon: float = 0.05,
    delta: float = 0.05,
    rng: RngLike = 0,
    cost_model=None,
    race: Union[bool, float, None] = False,
    adaptive: Union[bool, None] = None,
) -> RuntimeResult:
    """Answer ``quantity`` for ``query``, degrading across ``chain``.

    Each engine is tried in order under one shared ``budget`` (the
    active budget when ``None``): preflight refusals, budget
    exhaustion, and fragment mismatches are caught, logged as
    :class:`Attempt` records, counted in :mod:`repro.obs`
    (``runtime.fallbacks`` etc.) and the next engine takes over.  Any
    other exception — a genuine bug — propagates unchanged.

    ``quantity`` is ``"reliability"`` (default; ``R_psi`` of Definition
    2.2, any arity) or ``"probability"`` (``Pr[B |= psi]``, Boolean
    queries only).  ``epsilon``/``delta`` parameterize the sampling
    engines; ``rng`` is a ``random.Random`` or bare seed.

    ``cost_model`` is a :class:`repro.runtime.costmodel.CostModel`, a
    calibration-file path, or ``None`` (the module-level active model;
    usually none is installed).  With a model, the chain is re-ordered
    by predicted cost *within guarantee tiers* before the walk (see
    docs/ROBUSTNESS.md); without one, the chain runs exactly as given.
    Prediction errors surface as ``costmodel.*`` metrics, and every
    attempt's features/timing become a ``runtime.attempt.cost`` trace
    event when observability is on — the raw material ``repro
    calibrate`` fits from.

    ``race`` turns on speculative racing (see
    :mod:`repro.runtime.racing` and docs/ROBUSTNESS.md): instead of
    walking the chain sequentially, engines launch concurrently with a
    stagger of ``overlap * fair_share`` and the first answer at least
    as strong as every still-running contender wins.  ``True`` uses
    :data:`~repro.runtime.racing.DEFAULT_OVERLAP`; a float in
    ``[0, 1]`` sets the overlap fraction directly (0 launches
    everything at once).

    ``adaptive`` (default off) switches the sampling engines to the
    sequential empirical-Bernstein stopper of
    :mod:`repro.runtime.adaptive`: same (epsilon, delta) contract, the
    worst-case sample count as a never-exceeded cap, and the budget
    only charged for samples actually drawn.  When a cost model is in
    play it is wrapped so predicted seconds for the sampling engines
    reflect the surrogate's expected stopping — identically in
    :func:`repro.runtime.costmodel.plan_chain`, preserving analyze/run
    agreement.

    Raises :class:`FallbackExhausted` (with the attempt log attached)
    when no engine in the chain produced an answer.
    """
    if quantity not in ("reliability", "probability"):
        raise QueryError(
            f"unknown quantity {quantity!r}; use 'reliability' or 'probability'"
        )
    if not chain:
        raise ResourceError("engine chain is empty")
    unknown = [name for name in chain if name not in ENGINES]
    if unknown:
        raise ResourceError(
            f"unknown engines {unknown}; available: {sorted(ENGINES)}"
        )
    query = as_query(query)
    if quantity == "probability" and getattr(query, "arity", 0) != 0:
        raise QueryError(
            "quantity='probability' needs a Boolean (0-ary) query; "
            "use quantity='reliability' for k-ary queries"
        )
    model = costmodel.resolve_model(cost_model)
    adaptive = bool(adaptive)
    if adaptive and model is not None:
        # plan_chain wraps identically, so analyze/run chain ordering
        # cannot drift apart under adaptivity.
        from repro.runtime.adaptive import surrogate_adjusted

        model = surrogate_adjusted(model)
    features = None
    if model is not None or obs.enabled():
        features = costmodel.plan_features(db, query, quantity, epsilon, delta)
    if model is not None:
        chain = model.order_chain(chain, features, quantity)
    overlap: Optional[float] = None
    if race is not None and race is not False:
        from repro.runtime import racing

        overlap = racing.DEFAULT_OVERLAP if race is True else float(race)
        if not (0.0 <= overlap and math.isfinite(overlap)):
            raise ResourceError(
                f"race overlap must be a finite fraction >= 0, got {race!r}"
            )
    rng_base = as_rng(rng).getrandbits(64)
    scope = apply(budget) if budget is not None else nullcontext()
    attempts = []
    clock = _run_clock()
    started = clock()

    # The dichotomy verdict is computed at most once per run, lazily:
    # only chains containing statically-gated engines (or races, which
    # always partition) consult it.
    verdict_cache = []

    def dichotomy():
        if not verdict_cache:
            from repro.logic.safety import classify_dichotomy

            verdict_cache.append(classify_dichotomy(query))
        return verdict_cache[0]

    def record_skip(name: str, detail: str) -> Attempt:
        obs.inc("runtime.skipped_static")
        obs.event("runtime.skip_static", engine=name, detail=detail)
        return Attempt(name, "skipped_static", detail, 0.0)

    with scope:
        run_budget = active_budget()
        if overlap is not None:
            from repro.runtime import racing

            race_chain, skipped = race_partition(chain, dichotomy(), quantity)
            for name, detail in skipped:
                attempts.append(record_skip(name, detail))
            if not race_chain:
                obs.inc("runtime.exhausted")
                raise FallbackExhausted(
                    "no engine to race: every engine in the chain was "
                    "statically skipped "
                    f"({', '.join(f'{a.engine}: {a.outcome}' for a in attempts)})",
                    tuple(attempts),
                )
            try:
                result = racing.run_race(
                    db, query, race_chain, run_budget,
                    quantity, epsilon, delta,
                    rng_base, model, features, overlap,
                    adaptive=adaptive,
                )
            except FallbackExhausted as exc:
                raise FallbackExhausted(
                    str(exc), tuple(attempts) + tuple(exc.attempts)
                ) from None
            if attempts:
                result = replace(
                    result, attempts=tuple(attempts) + result.attempts
                )
            return result
        with obs.span("runtime.run", engines=len(chain), quantity=quantity):
            for index, name in enumerate(chain):
                if name in STATIC_SAFE_ENGINES:
                    skip_detail = static_skip_detail(name, dichotomy())
                    if skip_detail is not None:
                        attempts.append(record_skip(name, skip_detail))
                        continue
                obs.inc("runtime.attempts")
                attempt_start = clock()
                try:
                    # Fair-share time slicing: under a deadline, each
                    # attempt gets remaining / attempts_left seconds, so
                    # one stalled engine cannot starve the rest of the
                    # chain; an attempt that finishes early rolls its
                    # unused share forward.
                    remaining = run_budget.remaining_time()
                    if remaining is None:
                        attempt_scope = nullcontext()
                    elif remaining <= 0:
                        raise BudgetExceeded(
                            "deadline exhausted before the engine started"
                        )
                    else:
                        share = remaining / (len(chain) - index)
                        attempt_scope = apply(run_budget.sliced(share))
                    request = _Request(
                        quantity, epsilon, delta,
                        _attempt_rng(rng_base, name), adaptive,
                    )
                    with attempt_scope:
                        with obs.span("runtime.attempt", engine=name):
                            answer = ENGINES[name](db, query, request)
                except (CostRefused, BudgetExceeded, QueryError) as exc:
                    attempt_elapsed = clock() - attempt_start
                    outcome, counter = _classify_failure(exc)
                    obs.inc(counter)
                    obs.inc("runtime.fallbacks")
                    obs.event(
                        "runtime.fallback",
                        engine=name,
                        outcome=outcome,
                        detail=str(exc),
                    )
                    if features is not None:
                        obs.event(
                            "runtime.attempt.cost",
                            engine=name,
                            outcome=outcome,
                            seconds=attempt_elapsed,
                            **features,
                        )
                    attempts.append(
                        Attempt(name, outcome, str(exc), attempt_elapsed)
                    )
                    continue
                attempt_elapsed = clock() - attempt_start
                if features is not None:
                    obs.event(
                        "runtime.attempt.cost",
                        engine=name,
                        outcome="ok",
                        seconds=attempt_elapsed,
                        **features,
                    )
                if model is not None:
                    _record_prediction_error(
                        model, name, features, attempt_elapsed
                    )
                attempts.append(Attempt(name, "ok", "", attempt_elapsed))
                result = RuntimeResult(
                    value=answer.value,
                    engine=name,
                    guarantee=answer.guarantee,
                    quantity=quantity,
                    epsilon=answer.epsilon,
                    delta=answer.delta,
                    attempts=tuple(attempts),
                    elapsed=clock() - started,
                    fraction=answer.fraction,
                )
                obs.inc("runtime.completed")
                obs.event(
                    "runtime.result",
                    engine=name,
                    guarantee=answer.guarantee,
                    attempts=len(attempts),
                )
                return result
    obs.inc("runtime.exhausted")
    raise FallbackExhausted(
        f"all {len(chain)} engines failed "
        f"({', '.join(f'{a.engine}: {a.outcome}' for a in attempts)})",
        attempts,
    )


def run_update_stream(
    db,
    query: QueryLike,
    updates: Sequence[Tuple],
    budget: Optional[Budget] = None,
    quantity: str = "probability",
):
    """Answer ``quantity`` after every update of a stream, incrementally.

    ``updates`` is a sequence of operations:
    ``("set_mu", atom, probability)``, ``("insert", atom)``,
    ``("delete", atom)``.  A :class:`~repro.delta.DeltaSession` is built
    once, the stream is preflighted against the budget's work cap via
    :func:`~repro.runtime.preflight.preflight_delta` (worst case
    ``m * |diagram|`` node re-evaluations — O(Δ) per step, never
    ``2 ** atoms``), and each update is applied under a cooperative
    checkpoint.  Returns ``(session, answers)`` with one exact
    :class:`~fractions.Fraction` per update, each bit-identical to a
    cold recompute on the database at that point.
    """
    from repro.delta import DeltaSession
    from repro.runtime.budget import checkpoint
    from repro.runtime.preflight import preflight_delta

    if quantity not in ("reliability", "probability"):
        raise QueryError(
            f"unknown quantity {quantity!r}; use 'reliability' or 'probability'"
        )
    scope = apply(budget) if budget is not None else nullcontext()
    with scope:
        with obs.span("runtime.update_stream", updates=len(updates)):
            session = DeltaSession(db, query)
            preflight_delta(session.diagram_size, len(updates))
            answer = (
                session.probability
                if quantity == "probability"
                else session.reliability
            )
            answers = []
            for update in updates:
                checkpoint()
                op = update[0]
                if op == "set_mu":
                    session.set_mu(update[1], update[2])
                elif op == "insert":
                    session.insert(update[1])
                elif op == "delete":
                    session.delete(update[1])
                else:
                    raise QueryError(
                        f"unknown update op {op!r}; use set_mu/insert/delete"
                    )
                answers.append(answer())
            return session, answers
