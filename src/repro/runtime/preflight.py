"""Cost preflight: estimate an engine's work before committing to it.

The exact engines have *predictable* blow-ups: Theorem 4.2's world
enumeration evaluates exactly ``2 ** |relevant atoms|`` worlds, and
Theorem 5.4's grounding instantiates ``|clause templates| * n **
|variables|`` clauses before folding.  Both numbers are computable in
microseconds from the query and database shape — so instead of starting
a run that cannot finish, an engine *preflights*: it compares the
estimate against the active :class:`~repro.runtime.budget.Budget` and
raises :class:`~repro.util.errors.CostRefused` (carrying the estimate
and the limit) when the run is hopeless.

``CostRefused`` is cheap to catch — nothing was computed — which is what
lets the fallback executor walk a chain of engines without paying for
the ones that would have blown up.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.runtime.budget import Budget, active_budget
from repro.util.errors import CostRefused

__all__ = [
    "worlds_cost",
    "preflight_worlds",
    "grounding_cost",
    "preflight_grounding",
    "preflight_samples",
    "delta_update_cost",
    "preflight_delta",
]


def worlds_cost(atom_count: int) -> int:
    """Worlds Theorem 4.2's enumeration evaluates: ``2 ** atom_count``."""
    return 1 << atom_count


def preflight_worlds(atom_count: int, budget: Optional[Budget] = None) -> int:
    """Refuse a world enumeration the budget predicts to be hopeless.

    Returns the estimated world count (``2 ** atom_count``) when it fits
    under the budget's effective world limit (``max_worlds`` if set,
    else ``2 ** max_atoms``); raises :class:`CostRefused` otherwise.
    ``budget`` defaults to the active one.
    """
    budget = budget if budget is not None else active_budget()
    limit = budget.world_limit()
    estimate = worlds_cost(atom_count)
    if limit is not None and estimate > limit:
        obs.inc("preflight.worlds_refused")
        raise CostRefused(
            f"world enumeration over {atom_count} uncertain atoms needs "
            f"2^{atom_count} = {estimate} worlds, over the budget limit "
            f"of {limit}; raise Budget(max_worlds=...) / "
            f"Budget(max_atoms=...) or use a sampling engine",
            estimate=estimate,
            limit=limit,
        )
    return estimate


def grounding_cost(
    universe_size: int, variable_count: int, template_count: int
) -> int:
    """Clauses Theorem 5.4's grounding instantiates before folding.

    Each of the ``|clause templates|`` DNF clauses of the matrix is
    grounded once per valuation of the existential variables —
    ``n ** |variables|`` valuations — giving the paper's
    ``n^width * |clauses|`` bound.
    """
    return template_count * universe_size**variable_count


def preflight_grounding(
    universe_size: int,
    variable_count: int,
    template_count: int,
    budget: Optional[Budget] = None,
) -> int:
    """Refuse a grounding the budget predicts to be hopeless.

    Returns the estimated raw clause count when it fits under the
    budget's ``max_ground_clauses`` (no default cap — grounding is
    polynomial in ``n`` for a fixed query); raises
    :class:`CostRefused` otherwise.
    """
    budget = budget if budget is not None else active_budget()
    limit = budget.max_ground_clauses
    estimate = grounding_cost(universe_size, variable_count, template_count)
    if limit is not None and estimate > limit:
        obs.inc("preflight.grounding_refused")
        raise CostRefused(
            f"grounding would instantiate {template_count} clause "
            f"templates * {universe_size}^{variable_count} = {estimate} "
            f"clauses, over the budget limit of {limit}; raise "
            f"Budget(max_ground_clauses=...) or use a sampling engine",
            estimate=estimate,
            limit=limit,
        )
    return estimate


def delta_update_cost(node_count: int, update_count: int) -> int:
    """Worst-case node re-evaluations for a delta update stream.

    A weight-only update re-evaluates at most every reachable diagram
    node once — ``O(|BDD|)``, not ``O(2 ** atoms)`` — so a stream of
    ``m`` updates costs at most ``m * |BDD|`` exact multiplies.  This
    is the closed-form the cost model and admission control use for
    :class:`~repro.delta.session.DeltaSession` streams.
    """
    return node_count * update_count


def preflight_delta(
    node_count: int,
    update_count: int,
    budget: Optional[Budget] = None,
) -> int:
    """Refuse a delta update stream the budget predicts to be hopeless.

    Reuses the budget's world limit as the work cap: one node
    re-evaluation is one exact multiply, the same unit one enumerated
    world costs, so a stream whose ``m * |BDD|`` bound exceeds the
    limit would be better served by cold recomputes under a larger
    budget.  Returns the estimate when it fits.
    """
    budget = budget if budget is not None else active_budget()
    limit = budget.world_limit()
    estimate = delta_update_cost(node_count, update_count)
    if limit is not None and estimate > limit:
        obs.inc("preflight.delta_refused")
        raise CostRefused(
            f"delta stream of {update_count} updates over a "
            f"{node_count}-node diagram needs up to {estimate} node "
            f"re-evaluations, over the budget limit of {limit}; raise "
            f"Budget(max_worlds=...) or split the stream",
            estimate=estimate,
            limit=limit,
        )
    return estimate


def preflight_samples(sample_count: int, budget: Optional[Budget] = None) -> int:
    """Refuse a sampling run whose budget cannot fit its sample count.

    An estimator knows exactly how many samples its (epsilon, delta)
    guarantee needs before drawing the first one; if that exceeds what
    is left of the budget's ``max_samples`` allowance, refuse up front
    rather than burning the allowance and failing anyway.  Returns
    ``sample_count`` when it fits (or the budget is uncapped).
    """
    budget = budget if budget is not None else active_budget()
    remaining = budget.remaining_samples()
    if remaining is not None and sample_count > remaining:
        obs.inc("preflight.samples_refused")
        raise CostRefused(
            f"estimator needs {sample_count} samples but only "
            f"{remaining} remain under the budget's max_samples cap; "
            f"loosen epsilon/delta or raise Budget(max_samples=...)",
            estimate=sample_count,
            limit=remaining,
        )
    return sample_count
