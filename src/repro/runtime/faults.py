"""Deterministic fault injection for the resilient runtime.

Chaos testing for the fallback executor: :func:`inject` wraps engine
entry points in the :data:`repro.runtime.executor.ENGINES` registry so
that a chosen engine times out, slows down, or throws — proving that
every degradation path actually fires, with assertions on the
``runtime.*`` counters in :mod:`repro.obs`.

Fault types:

* :class:`TimeoutFault` — the engine raises
  :class:`~repro.util.errors.BudgetExceeded` immediately, as if a
  deadline expired inside it;
* :class:`SlowdownFault` — the engine stalls for ``seconds`` before
  running (and hits a budget checkpoint right after the stall), so a
  run under a tight :class:`~repro.runtime.budget.Deadline` degrades
  exactly as a genuinely slow engine would;
* :class:`ExceptionFault` — the engine raises a chosen exception
  (default :class:`~repro.util.errors.QueryError`, the fragment-
  mismatch path).

Firing is deterministic: each fault fires with ``probability`` (default
1.0) decided by a generator derived through
:func:`repro.util.rng.as_rng`, so partial-failure scenarios replay
bit-identically from a seed.

Usage::

    from repro.runtime import faults

    with faults.inject({"exact": faults.TimeoutFault()}):
        result = run_with_fallback(db, query)   # exact never answers
    assert result.engine != "exact"
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Mapping, Union

from repro import obs
from repro.runtime.budget import checkpoint
from repro.util.errors import (
    BudgetExceeded,
    ProbabilityError,
    QueryError,
    ResourceError,
)
from repro.util.rng import Seed, as_rng

RngLike = Union[random.Random, Seed]

__all__ = [
    "Fault",
    "TimeoutFault",
    "SlowdownFault",
    "ExceptionFault",
    "inject",
]


@dataclass(frozen=True)
class Fault:
    """Base fault: fires with ``probability`` on each engine call."""

    probability: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ProbabilityError(
                f"fault probability {self.probability} outside [0, 1]"
            )

    def apply(self, engine: str, real: Callable, *args, **kwargs):
        """Run the faulty behaviour (subclass responsibility)."""
        raise NotImplementedError


@dataclass(frozen=True)
class TimeoutFault(Fault):
    """The engine 'times out': raises :class:`BudgetExceeded` at entry."""

    def apply(self, engine: str, real: Callable, *args, **kwargs):
        raise BudgetExceeded(f"injected timeout in engine {engine!r}")


@dataclass(frozen=True)
class SlowdownFault(Fault):
    """The engine stalls ``seconds`` before doing its real work.

    Immediately after the stall a budget :func:`checkpoint` runs, so a
    deadline that expired during the stall fires even for engines whose
    own first checkpoint would come late.  Without a deadline the
    engine simply runs slow and still answers — which is exactly the
    distinction tests want to probe.
    """

    seconds: float = 0.05

    def __post_init__(self):
        super().__post_init__()
        if self.seconds < 0:
            raise ResourceError(
                f"slowdown seconds must be >= 0, got {self.seconds}"
            )

    def apply(self, engine: str, real: Callable, *args, **kwargs):
        time.sleep(self.seconds)
        checkpoint()
        return real(*args, **kwargs)


def _default_error() -> Exception:
    return QueryError("injected engine failure")


@dataclass(frozen=True)
class ExceptionFault(Fault):
    """The engine raises ``error`` at entry (default: a QueryError)."""

    error: Exception = field(default_factory=_default_error)

    def apply(self, engine: str, real: Callable, *args, **kwargs):
        raise self.error


def _wrapped(
    engine: str, fault: Fault, real: Callable, rng: random.Random
) -> Callable:
    def engine_with_fault(*args, **kwargs):
        if fault.probability < 1.0 and rng.random() >= fault.probability:
            return real(*args, **kwargs)
        obs.inc("runtime.faults_injected")
        obs.event(
            "runtime.fault", engine=engine, fault=type(fault).__name__
        )
        return fault.apply(engine, real, *args, **kwargs)

    engine_with_fault.__wrapped__ = real
    return engine_with_fault


@contextmanager
def inject(
    faults: Mapping[str, Fault], rng: RngLike = 0
) -> Iterator[Dict[str, Fault]]:
    """Wrap engine entry points with faults for the duration of a block.

    ``faults`` maps engine names (keys of
    :data:`repro.runtime.executor.ENGINES`) to :class:`Fault`
    instances.  The registry entries are swapped for fault-wrapped
    versions and restored on exit, even on error.  ``rng`` seeds the
    (deterministic) firing decisions for sub-1.0 probabilities.
    """
    from repro.runtime import executor

    unknown = sorted(set(faults) - set(executor.ENGINES))
    if unknown:
        raise ResourceError(
            f"cannot inject into unknown engines {unknown}; "
            f"available: {sorted(executor.ENGINES)}"
        )
    for name, fault in faults.items():
        if not isinstance(fault, Fault):
            raise ResourceError(
                f"fault for engine {name!r} must be a Fault, "
                f"got {type(fault).__name__}"
            )
    generator = as_rng(rng)
    originals = {name: executor.ENGINES[name] for name in faults}
    try:
        for name, fault in faults.items():
            executor.ENGINES[name] = _wrapped(
                name, fault, originals[name], generator
            )
        yield dict(faults)
    finally:
        executor.ENGINES.update(originals)
