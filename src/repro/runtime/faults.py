"""Deterministic fault injection for the resilient runtime.

Chaos testing for the fallback executor: :func:`inject` wraps engine
entry points in the :data:`repro.runtime.executor.ENGINES` registry so
that a chosen engine times out, slows down, or throws — proving that
every degradation path actually fires, with assertions on the
``runtime.*`` counters in :mod:`repro.obs`.

Fault types:

* :class:`TimeoutFault` — the engine raises
  :class:`~repro.util.errors.BudgetExceeded` immediately, as if a
  deadline expired inside it;
* :class:`SlowdownFault` — the engine stalls for ``seconds`` before
  running (and hits a budget checkpoint right after the stall), so a
  run under a tight :class:`~repro.runtime.budget.Deadline` degrades
  exactly as a genuinely slow engine would;
* :class:`ExceptionFault` — the engine raises a chosen exception
  (default :class:`~repro.util.errors.QueryError`, the fragment-
  mismatch path).

Firing is deterministic: each fault fires with ``probability`` (default
1.0) decided by a generator derived through
:func:`repro.util.rng.as_rng`, so partial-failure scenarios replay
bit-identically from a seed.  For *scripted schedules* — an engine that
fails on its first two calls and then heals, the shape circuit-breaker
and retry tests need — wrap any fault in a :class:`ScheduledFault`,
which fires on chosen 0-based call indices and passes every other call
through untouched.

Usage::

    from repro.runtime import faults

    with faults.inject({"exact": faults.TimeoutFault()}):
        result = run_with_fallback(db, query)   # exact never answers
    assert result.engine != "exact"
"""

from __future__ import annotations

import itertools
import math
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Union

from repro import obs
from repro.runtime.budget import checkpoint
from repro.util.errors import (
    BudgetExceeded,
    ProbabilityError,
    QueryError,
    ResourceError,
)
from repro.util.rng import Seed, as_rng

RngLike = Union[random.Random, Seed]

__all__ = [
    "Fault",
    "TimeoutFault",
    "SlowdownFault",
    "ExceptionFault",
    "ScheduledFault",
    "inject",
    "VirtualScheduler",
]


@dataclass(frozen=True)
class Fault:
    """Base fault: fires with ``probability`` on each engine call."""

    probability: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ProbabilityError(
                f"fault probability {self.probability} outside [0, 1]"
            )

    def fires(self, rng: random.Random) -> bool:
        """Decide whether this call is faulty (deterministic from ``rng``)."""
        return self.probability >= 1.0 or rng.random() < self.probability

    def apply(self, engine: str, real: Callable, *args, **kwargs):
        """Run the faulty behaviour (subclass responsibility)."""
        raise NotImplementedError


@dataclass(frozen=True)
class TimeoutFault(Fault):
    """The engine 'times out': raises :class:`BudgetExceeded` at entry."""

    def apply(self, engine: str, real: Callable, *args, **kwargs):
        raise BudgetExceeded(f"injected timeout in engine {engine!r}")


@dataclass(frozen=True)
class SlowdownFault(Fault):
    """The engine stalls ``seconds`` before doing its real work.

    Immediately after the stall a budget :func:`checkpoint` runs, so a
    deadline that expired during the stall fires even for engines whose
    own first checkpoint would come late.  Without a deadline the
    engine simply runs slow and still answers — which is exactly the
    distinction tests want to probe.
    """

    seconds: float = 0.05

    def __post_init__(self):
        super().__post_init__()
        if self.seconds < 0:
            raise ResourceError(
                f"slowdown seconds must be >= 0, got {self.seconds}"
            )

    def apply(self, engine: str, real: Callable, *args, **kwargs):
        from repro.runtime.racing import race_sleep

        # race_sleep is time.sleep outside a race; under the racing
        # executor it cooperates with cancellation, and under the
        # virtual-clock scheduler it advances virtual time instead of
        # sleeping, so scripted interleavings replay instantly.
        race_sleep(self.seconds)
        checkpoint()
        return real(*args, **kwargs)


def _default_error() -> Exception:
    return QueryError("injected engine failure")


@dataclass(frozen=True)
class ExceptionFault(Fault):
    """The engine raises ``error`` at entry (default: a QueryError)."""

    error: Exception = field(default_factory=_default_error)

    def apply(self, engine: str, real: Callable, *args, **kwargs):
        raise self.error


@dataclass(frozen=True)
class ScheduledFault(Fault):
    """Fire an inner ``fault`` only on scheduled 0-based call indices.

    ``at`` is any iterable of call indices (normalised to a frozenset):
    the wrapped engine's first call is index 0, and only calls whose
    index is listed misbehave — every other call runs the real engine.
    The call counter is per ``ScheduledFault`` *instance*, so inject a
    fresh instance per engine; under the virtual-clock scheduler the
    call order (and therefore which logical operation hits the fault)
    replays bit-for-bit.

    This is the scripted-transient-fault primitive the serve layer's
    retry and circuit-breaker tests are built on: ``ScheduledFault(
    fault=TimeoutFault(), at=(0, 1))`` times out twice and then heals.
    """

    fault: Fault = field(default_factory=TimeoutFault)
    at: frozenset = frozenset()

    def __post_init__(self):
        super().__post_init__()
        if not isinstance(self.fault, Fault):
            raise ResourceError(
                f"inner fault must be a Fault, got {type(self.fault).__name__}"
            )
        indices = frozenset(int(i) for i in self.at)
        if any(i < 0 for i in indices):
            raise ResourceError(f"call indices must be >= 0, got {sorted(indices)}")
        object.__setattr__(self, "at", indices)
        # itertools.count advances atomically under the GIL, so real
        # threaded servers and the lock-step virtual clock agree on the
        # per-call indices.
        object.__setattr__(self, "_calls", itertools.count())

    def fires(self, rng: random.Random) -> bool:
        return next(self._calls) in self.at

    def apply(self, engine: str, real: Callable, *args, **kwargs):
        return self.fault.apply(engine, real, *args, **kwargs)


def _wrapped(
    engine: str, fault: Fault, real: Callable, rng: random.Random
) -> Callable:
    def engine_with_fault(*args, **kwargs):
        if not fault.fires(rng):
            return real(*args, **kwargs)
        obs.inc("runtime.faults_injected")
        obs.event(
            "runtime.fault", engine=engine, fault=type(fault).__name__
        )
        return fault.apply(engine, real, *args, **kwargs)

    engine_with_fault.__wrapped__ = real
    return engine_with_fault


@contextmanager
def inject(
    faults: Mapping[str, Fault], rng: RngLike = 0
) -> Iterator[Dict[str, Fault]]:
    """Wrap engine entry points with faults for the duration of a block.

    ``faults`` maps engine names (keys of
    :data:`repro.runtime.executor.ENGINES`) to :class:`Fault`
    instances.  The registry entries are swapped for fault-wrapped
    versions and restored on exit, even on error.  ``rng`` seeds the
    (deterministic) firing decisions for sub-1.0 probabilities.
    """
    from repro.runtime import executor

    unknown = sorted(set(faults) - set(executor.ENGINES))
    if unknown:
        raise ResourceError(
            f"cannot inject into unknown engines {unknown}; "
            f"available: {sorted(executor.ENGINES)}"
        )
    for name, fault in faults.items():
        if not isinstance(fault, Fault):
            raise ResourceError(
                f"fault for engine {name!r} must be a Fault, "
                f"got {type(fault).__name__}"
            )
    generator = as_rng(rng)
    originals = {name: executor.ENGINES[name] for name in faults}
    try:
        for name, fault in faults.items():
            executor.ENGINES[name] = _wrapped(
                name, fault, originals[name], generator
            )
        yield dict(faults)
    finally:
        executor.ENGINES.update(originals)


# ---------------------------------------------------------------------- #
# the deterministic virtual-clock scheduler
# ---------------------------------------------------------------------- #


class _VirtualEntity:
    __slots__ = ("index", "name", "resume", "vtime", "finished")

    def __init__(self, index: int, name: str, vtime: float):
        self.index = index
        self.name = name
        self.resume = threading.Event()
        self.vtime = vtime
        self.finished = False


class VirtualScheduler:
    """A deterministic lock-step scheduler with a virtual clock.

    Racing is nondeterministic on the wall clock; this scheduler tames
    it for tests.  Racer threads still exist, but **exactly one runs at
    a time**: every cooperative budget checkpoint (and every
    ``SlowdownFault`` stall, routed through
    :func:`repro.runtime.racing.race_sleep`) parks the racer and hands
    control back to the driver, which always grants the next turn to
    the runnable entity with the smallest ``(virtual time, spawn
    order)``.  Virtual time advances only by scripted amounts — a
    per-engine ``tick`` per checkpoint plus the ``seconds`` of any
    ``SlowdownFault`` — so the same fault script and seed replay the
    same interleaving, winner, value, and counters bit-for-bit.

    Use it as the race scheduler and, for deadline tests, as the budget
    clock::

        scheduler = faults.VirtualScheduler(ticks={"karp_luby": 0.01})
        budget = Budget(deadline=2.0, clock=scheduler.now)
        with racing.use_scheduler(scheduler):
            result = run_with_fallback(db, query, race=True, budget=budget)

    ``ticks`` maps engine names to virtual seconds per checkpoint
    (default ``default_tick``, itself defaulting to 0: time then moves
    only through scripted slowdowns).

    The racing executor and the :class:`repro.serve.Server` driver both
    speak this scheduler's driver protocol (``now`` / ``spawn`` /
    ``wait`` / ``pop_completions`` / ``drain`` / ``poke``): a scripted
    fault schedule plus a seed replays a whole multi-query serving run
    — admission decisions, retries, breaker transitions, and per-query
    answers — bit for bit (see tests/serve/test_replay.py).
    """

    is_virtual = True

    def __init__(
        self,
        ticks: Optional[Mapping[str, float]] = None,
        default_tick: float = 0.0,
    ):
        self._ticks = dict(ticks or {})
        self._default_tick = float(default_tick)
        self._entities: List[_VirtualEntity] = []
        self._lock = threading.Lock()
        self._wake_driver = threading.Event()
        self._completions: List[int] = []
        self._pending: List[int] = []
        self._driver_time = 0.0
        self._local = threading.local()

    # -- clock ---------------------------------------------------------- #

    def now(self) -> float:
        """Virtual seconds: the calling racer's time, or the driver's."""
        entity = getattr(self._local, "entity", None)
        if entity is not None:
            return entity.vtime
        return self._driver_time

    def poke(self) -> None:
        """Driver wake-up hook: a no-op on the virtual clock.

        Virtual-mode submissions come from the driver thread itself
        (scripted workloads), so there is never a blocked driver to
        wake; the real :class:`~repro.runtime.racing.ThreadScheduler`
        implements this with a condition notify.
        """

    # -- racer side ----------------------------------------------------- #

    def _yield_turn(self, entity: _VirtualEntity) -> None:
        entity.resume.clear()
        self._wake_driver.set()
        entity.resume.wait()

    def checkpoint(self) -> None:
        """Budget-checkpoint hook: advance the racer's tick and park."""
        entity = getattr(self._local, "entity", None)
        if entity is None:
            return
        entity.vtime += self._ticks.get(entity.name, self._default_tick)
        self._yield_turn(entity)

    def sleep(self, seconds: float) -> None:
        """A scripted stall: virtual seconds pass, nothing really sleeps."""
        entity = getattr(self._local, "entity", None)
        if entity is None:
            return
        entity.vtime += seconds
        self._yield_turn(entity)

    # -- driver side ---------------------------------------------------- #

    def spawn(self, label: str, fn: Callable[[], None]) -> int:
        entity = _VirtualEntity(len(self._entities), label, self._driver_time)
        self._entities.append(entity)

        def body():
            self._local.entity = entity
            entity.resume.wait()  # first turn is granted by the driver
            try:
                fn()
            finally:
                entity.finished = True
                with self._lock:
                    self._pending.append(entity.index)
                self._wake_driver.set()

        thread = threading.Thread(
            target=body, name=f"repro-vracer-{entity.index}-{label}", daemon=True
        )
        thread.start()
        return entity.index

    def _grant(self, entity: _VirtualEntity) -> None:
        """Run one lock-step turn: resume the entity, wait for its yield."""
        self._wake_driver.clear()
        entity.resume.set()
        self._wake_driver.wait()

    def _collect_pending(self) -> None:
        with self._lock:
            if self._pending:
                self._completions.extend(self._pending)
                self._pending.clear()

    def wait(self, timeout: Optional[float] = None) -> None:
        """Advance virtual time until a completion or ``timeout`` passes.

        Lock-step: grants turns to the runnable entity with the least
        ``(vtime, index)`` key.  A queued completion is *delivered*
        (driver time advances to its finish time) only once no runnable
        entity could still produce an earlier event — so the driver
        observes completions in virtual-time order, never in thread
        order.  A completion whose finish time lies past the timeout
        target stays queued: the driver gets its turn (a launch, say)
        at the target first, exactly as it would on a real clock.
        """
        target = math.inf if timeout is None else self._driver_time + timeout
        while True:
            self._collect_pending()
            queued = [self._entities[i] for i in self._completions]
            runnable = [e for e in self._entities if not e.finished]
            tc = min(((e.vtime, e.index) for e in queued), default=None)
            tr = min(((e.vtime, e.index) for e in runnable), default=None)
            if tc is not None and (tr is None or tc <= tr) and tc[0] <= target:
                self._driver_time = max(self._driver_time, tc[0])
                return
            if tr is None or tr[0] > target:
                if target is not math.inf:
                    self._driver_time = max(self._driver_time, target)
                return
            self._grant(self._entities[tr[1]])

    def pop_completions(self, include_future: bool = False) -> List[int]:
        """Completions whose finish time is due, in ``(vtime, index)`` order.

        A completion at a virtual time past the driver's clock is held
        back until :meth:`wait` advances to it (``include_future=True``
        overrides — used after :meth:`drain`).
        """
        self._collect_pending()
        if include_future:
            ready = sorted(
                self._completions,
                key=lambda i: (self._entities[i].vtime, i),
            )
            self._completions = []
            return ready
        ready = sorted(
            (i for i in self._completions
             if self._entities[i].vtime <= self._driver_time),
            key=lambda i: (self._entities[i].vtime, i),
        )
        held = set(ready)
        self._completions = [i for i in self._completions if i not in held]
        return ready

    def drain(self, entities) -> int:
        """Step every given entity to completion (fully deterministic).

        The driver clock does not advance: losers finish in their own
        virtual time, the race's elapsed time stays the winner's.
        Returns 0 — the virtual scheduler never abandons a thread.
        """
        remaining = [
            self._entities[i] for i in entities
            if i is not None and not self._entities[i].finished
        ]
        while True:
            runnable = [e for e in remaining if not e.finished]
            if not runnable:
                break
            self._grant(min(runnable, key=lambda e: (e.vtime, e.index)))
        return 0
