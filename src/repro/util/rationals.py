"""Exact rational arithmetic helpers.

The paper's complexity results assume error probabilities are rational
numbers given in a standard encoding.  All exact algorithms in this library
therefore work with :class:`fractions.Fraction`; these helpers convert user
input, compute the granularity integer ``g`` from Theorem 4.2, and produce
dyadic approximations used by the bit-vector reduction of Theorem 5.3.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, Union

from repro.util.errors import ProbabilityError

RationalLike = Union[int, float, str, Fraction]


def as_fraction(value: RationalLike) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction`.

    Floats are converted via ``Fraction(str(value))`` so that ``0.1`` means
    the decimal one-tenth, not the binary double closest to it.  Strings may
    be ``"p/q"`` or decimal literals.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise ProbabilityError(f"booleans are not probabilities: {value!r}")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(str(value))
    if isinstance(value, str):
        try:
            return Fraction(value)
        except (ValueError, ZeroDivisionError) as exc:
            raise ProbabilityError(f"cannot parse rational {value!r}") from exc
    raise ProbabilityError(f"cannot convert {type(value).__name__} to Fraction")


def parse_probability(value: RationalLike) -> Fraction:
    """Convert ``value`` to a Fraction and check it lies in ``[0, 1]``."""
    frac = as_fraction(value)
    if frac < 0 or frac > 1:
        raise ProbabilityError(f"probability {frac} outside [0, 1]")
    return frac


def granularity(probabilities: Iterable[Fraction]) -> int:
    """Least ``g`` with ``g * p`` integral for every ``p`` in the input.

    This is the integer ``g`` computed in the proof of Theorem 4.2: the
    least common multiple of the (normalised) denominators, computed by the
    paper's gcd loop.  With ``g`` in hand, every possible-world probability
    ``nu(B)`` times ``g ** len(probabilities)`` is a natural number, which
    is what lets the #P machine split leaves into integer multiplicities.
    """
    g = 1
    for prob in probabilities:
        denominator = prob.denominator
        common = gcd(g, denominator)
        if common != denominator:
            g = g * denominator // common
    return g


def dyadic_approximation(value: Fraction, bits: int) -> Fraction:
    """Closest fraction with denominator ``2**bits`` (round half up)."""
    if bits < 0:
        raise ProbabilityError(f"bits must be nonnegative, got {bits}")
    scale = 1 << bits
    numerator = (value * scale + Fraction(1, 2)).__floor__()
    return Fraction(numerator, scale)


def float_of(value: Union[Fraction, float, int]) -> float:
    """Lossy float view of a rational, for reporting only."""
    return float(value)
