"""Shared utilities: deterministic RNG plumbing, rational helpers, errors.

Everything in :mod:`repro` that involves randomness takes an explicit
``random.Random`` instance so that experiments are reproducible; the helpers
here make that convention cheap to follow.
"""

from repro.util.errors import (
    ReproError,
    VocabularyError,
    QueryError,
    ProbabilityError,
    EvaluationError,
    ResourceError,
    BudgetExceeded,
    CostRefused,
    FallbackExhausted,
)
from repro.util.rng import as_rng, make_rng, spawn
from repro.util.rationals import (
    as_fraction,
    parse_probability,
    granularity,
    dyadic_approximation,
)

__all__ = [
    "ReproError",
    "VocabularyError",
    "QueryError",
    "ProbabilityError",
    "EvaluationError",
    "ResourceError",
    "BudgetExceeded",
    "CostRefused",
    "FallbackExhausted",
    "as_rng",
    "make_rng",
    "spawn",
    "as_fraction",
    "parse_probability",
    "granularity",
    "dyadic_approximation",
]
