"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError`, so callers can catch a
single base class.  Each subclass marks the layer that raised it; nothing in
the library raises bare ``ValueError``/``KeyError`` for user-facing misuse.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class VocabularyError(ReproError):
    """A relation symbol, arity, or structure component is inconsistent.

    Raised e.g. when a tuple's length does not match the relation's arity,
    when two symbols with the same name but different arities are declared,
    or when a structure refers to a symbol missing from its vocabulary.
    """


class QueryError(ReproError):
    """A query expression is malformed or used outside its fragment.

    Raised e.g. when a conjunctive-query constructor receives a disjunction,
    when an algorithm requiring an existential query is handed a universal
    one, or when the parser encounters a syntax error.
    """


class ProbabilityError(ReproError):
    """A probability value or distribution is invalid.

    Raised e.g. for error probabilities outside ``[0, 1]`` or metafinite
    value distributions that do not sum to one.
    """


class EvaluationError(ReproError):
    """Evaluation of a query or term failed.

    Raised e.g. when a free variable has no binding or a Datalog program
    uses an undefined predicate.
    """


class ResourceError(ReproError):
    """A resource budget is invalid, exhausted, or refused.

    Base class of the resilient-runtime errors; see
    :mod:`repro.runtime` and ``docs/ROBUSTNESS.md``.
    """


class BudgetExceeded(ResourceError):
    """A running computation hit a :class:`repro.runtime.Budget` limit.

    Raised at a cooperative checkpoint when the wall-clock deadline
    passes or a worlds/clauses/samples counter crosses its cap.  The
    computation's partial state is discarded; the fallback executor
    catches this and degrades to the next engine in the chain.
    """


class CostRefused(ResourceError):
    """A cost preflight predicted the run would blow the budget.

    Unlike :class:`BudgetExceeded`, nothing was computed: the engine
    estimated its work up front (``2 ** |relevant atoms|`` worlds,
    ``|clause templates| * n ** |variables|`` ground clauses) and
    refused to start.  ``estimate`` and ``limit`` carry the numbers.
    """

    def __init__(self, message: str, estimate=None, limit=None):
        super().__init__(message)
        self.estimate = estimate
        self.limit = limit


class CalibrationError(ResourceError):
    """A cost-model calibration file is missing, stale, or corrupt.

    Raised by :func:`repro.runtime.costmodel.load_calibration`; the
    executor-facing loader catches it and degrades to the closed-form
    cost model (``costmodel.fallback`` counter), so a bad calibration
    file can never crash ``run`` or ``analyze``.
    """


class FallbackExhausted(ResourceError):
    """Every engine in a fallback chain failed or was refused.

    ``attempts`` holds the per-engine attempt records
    (:class:`repro.runtime.Attempt`) explaining why each engine fell
    through.
    """

    def __init__(self, message: str, attempts=()):
        super().__init__(message)
        self.attempts = tuple(attempts)
