"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError`, so callers can catch a
single base class.  Each subclass marks the layer that raised it; nothing in
the library raises bare ``ValueError``/``KeyError`` for user-facing misuse.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class VocabularyError(ReproError):
    """A relation symbol, arity, or structure component is inconsistent.

    Raised e.g. when a tuple's length does not match the relation's arity,
    when two symbols with the same name but different arities are declared,
    or when a structure refers to a symbol missing from its vocabulary.
    """


class QueryError(ReproError):
    """A query expression is malformed or used outside its fragment.

    Raised e.g. when a conjunctive-query constructor receives a disjunction,
    when an algorithm requiring an existential query is handed a universal
    one, or when the parser encounters a syntax error.
    """


class ProbabilityError(ReproError):
    """A probability value or distribution is invalid.

    Raised e.g. for error probabilities outside ``[0, 1]`` or metafinite
    value distributions that do not sum to one.
    """


class EvaluationError(ReproError):
    """Evaluation of a query or term failed.

    Raised e.g. when a free variable has no binding or a Datalog program
    uses an undefined predicate.
    """
