"""Deterministic randomness plumbing.

The whole library follows one rule: any function that flips coins takes a
``random.Random`` instance (never the module-level ``random`` state).  These
helpers create and derive such instances reproducibly.
"""

from __future__ import annotations

import random
from typing import Optional, Union

Seed = Union[int, str, bytes, None]


def make_rng(seed: Seed = 0) -> random.Random:
    """Return a fresh ``random.Random`` seeded with ``seed``.

    ``None`` yields an OS-seeded generator; use it only in interactive
    exploration, never in tests or benchmarks.
    """
    return random.Random(seed)


def as_rng(rng: Union[random.Random, Seed]) -> random.Random:
    """Normalise a ``Random`` instance or a seed to a ``Random`` instance.

    Estimator entry points accept either spelling so that callers can
    thread one generator through a pipeline *or* pass a bare seed at the
    boundary; both are reproducible.  ``None`` yields an OS-seeded
    generator (interactive use only).
    """
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def spawn(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from ``rng``.

    The child is seeded from the parent's stream together with ``label``,
    so two children with different labels are decorrelated, and the
    derivation is itself reproducible.  This is the sanctioned way to hand
    out generators to sub-tasks (e.g. one per Monte-Carlo repetition batch)
    without sharing mutable state.
    """
    salt = rng.getrandbits(64)
    return random.Random(f"{salt}:{label}")


def coin(rng: random.Random, probability: float) -> bool:
    """Flip a biased coin: ``True`` with the given probability."""
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    return rng.random() < probability
