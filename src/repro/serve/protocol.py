"""The line-oriented wire format of ``repro serve``.

One JSON object per line, both directions.  Requests::

    {"id": "q1", "query": "exists x. S(x)", "deadline": 2.0,
     "tenant": "alice", "seed": 7}

Responses mirror :class:`repro.serve.request.ServeResponse`; every
submitted line — including malformed ones — produces exactly one
response line, so a client can always join responses back to requests
by ``id``.  Unknown request fields are rejected (not silently dropped):
a typo'd ``deadlien`` must not silently serve an unbounded query.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.util.errors import QueryError

from repro.serve.request import ServeRequest, ServeResponse

_REQUEST_FIELDS = {
    "id",
    "query",
    "free",
    "tenant",
    "quantity",
    "epsilon",
    "delta",
    "deadline",
    "max_cost",
    "chain",
    "seed",
    "arrival",
    "race",
}


def request_from_payload(payload: Mapping[str, Any]) -> ServeRequest:
    """Build a validated :class:`ServeRequest`; raises QueryError."""
    if not isinstance(payload, Mapping):
        raise QueryError(f"request must be a JSON object, got {payload!r}")
    unknown = sorted(set(payload) - _REQUEST_FIELDS)
    if unknown:
        raise QueryError(f"unknown request fields {unknown}")
    if "id" not in payload or "query" not in payload:
        raise QueryError("request needs at least 'id' and 'query'")
    free = payload.get("free")
    chain = payload.get("chain")
    request = ServeRequest(
        id=str(payload["id"]),
        query=payload["query"],
        free=tuple(free) if free else None,
        tenant=str(payload.get("tenant", "default")),
        quantity=payload.get("quantity", "reliability"),
        epsilon=float(payload.get("epsilon", 0.05)),
        delta=float(payload.get("delta", 0.05)),
        deadline=(
            float(payload["deadline"])
            if payload.get("deadline") is not None
            else None
        ),
        max_cost=(
            int(payload["max_cost"])
            if payload.get("max_cost") is not None
            else None
        ),
        chain=tuple(chain) if chain else None,
        seed=int(payload.get("seed", 0)),
        arrival=float(payload.get("arrival", 0.0)),
        race=payload.get("race", False),
    )
    request.validate()
    return request


def parse_request_line(line: str) -> ServeRequest:
    """Parse one request line; raises QueryError on bad JSON."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise QueryError(f"bad request line: {exc}") from None
    return request_from_payload(payload)


def request_to_payload(request: ServeRequest) -> dict:
    """The JSON-able form of a request (``repro submit`` emits this)."""
    payload: dict = {"id": request.id, "query": str(request.query)}
    if request.free:
        payload["free"] = list(request.free)
    if request.tenant != "default":
        payload["tenant"] = request.tenant
    if request.quantity != "reliability":
        payload["quantity"] = request.quantity
    payload["epsilon"] = request.epsilon
    payload["delta"] = request.delta
    if request.deadline is not None:
        payload["deadline"] = request.deadline
    if request.max_cost is not None:
        payload["max_cost"] = request.max_cost
    if request.chain:
        payload["chain"] = list(request.chain)
    if request.seed:
        payload["seed"] = request.seed
    if request.arrival:
        payload["arrival"] = request.arrival
    if request.race:
        payload["race"] = request.race
    return payload


def response_to_payload(response: ServeResponse) -> dict:
    """The JSON-able form of a response (one line of server output)."""
    payload: dict = {
        "id": response.id,
        "tenant": response.tenant,
        "code": response.code,
        "retries": response.retries,
        "elapsed": round(response.elapsed, 6),
    }
    if response.ok:
        payload.update(
            value=response.value,
            engine=response.engine,
            guarantee=response.guarantee,
        )
        if response.epsilon is not None:
            payload["epsilon"] = response.epsilon
            payload["delta"] = response.delta
    if response.tier is not None:
        payload["tier"] = response.tier
    if response.attempts:
        payload["attempts"] = [list(pair) for pair in response.attempts]
    if response.detail:
        payload["detail"] = response.detail
    return payload


def format_response(response: ServeResponse) -> str:
    return json.dumps(response_to_payload(response), sort_keys=True)
