"""repro.serve — reliability as a service: the multi-query scheduler.

Everything below :mod:`repro.runtime` assumes one query owns the
process; this package is the layer that stops assuming.  A
:class:`Server` accepts many concurrent queries, each with its own
:class:`~repro.runtime.budget.Budget`/deadline, and schedules them over
one shared worker pool with:

* **admission control** via :func:`repro.runtime.costmodel.plan_chain`
  forecasts — hopeless or deadline-unmeetable work is refused with a
  structured response before it queues
  (:mod:`repro.serve.admission`);
* a **load-shedding guarantee ladder** that degrades admission tiers
  (exact → relative → additive, the paper's Corollary 5.5 axis) as the
  backlog grows and restores them as it drains;
* **fair-share arbitration between queries** (per-tenant in-flight and
  service-time accounting), not just between engines of one chain;
* **retry with exponential backoff + deterministic jitter** for
  transient engine faults (:mod:`repro.serve.retry`);
* **per-engine circuit breakers** that trip on repeated failures and
  heal on probes (:mod:`repro.serve.breaker`);
* **clean drain/shutdown** — in-flight and queued work flushes, new
  work is answered ``shutdown``.

The whole server runs under the deterministic fault-injection harness:
constructed over a :class:`~repro.runtime.faults.VirtualScheduler`, a
scripted fault schedule plus per-request seeds replays admission
decisions, retries, breaker transitions, and per-query answers
bit-for-bit.  Telemetry is the ``serve.*`` schema of
:mod:`repro.serve.metrics`, aggregated globally and per tenant.

See docs/ROBUSTNESS.md ("Serving and overload") for the full story,
and ``repro serve`` / ``repro submit`` for the CLI surface.
"""

from repro.serve.admission import AdmissionDecision, DegradationLadder, tier_filter
from repro.serve.breaker import CircuitBreaker
from repro.serve.queue import Backlog
from repro.serve.request import (
    FAILED_CODES,
    REJECTED_CODES,
    RESPONSE_CODES,
    SHED_CODES,
    ServeRequest,
    ServeResponse,
)
from repro.serve.retry import RetryPolicy
from repro.serve.scheduler import Server

__all__ = [
    "Server",
    "ServeRequest",
    "ServeResponse",
    "RESPONSE_CODES",
    "REJECTED_CODES",
    "SHED_CODES",
    "FAILED_CODES",
    "DegradationLadder",
    "AdmissionDecision",
    "tier_filter",
    "CircuitBreaker",
    "RetryPolicy",
    "Backlog",
]
