"""Retry policy: exponential backoff with deterministic jitter.

A transient engine fault (the executor's ``budget_exceeded`` outcome —
an injected timeout, a blown fair-share slice) may pass on a later try;
a cost refusal or fragment mismatch never will.  The policy decides
*whether* a failed run retries (any attempt outcome in
:data:`repro.runtime.executor.TRANSIENT_OUTCOMES`) and *when* (capped
exponential backoff plus jitter).

Jitter is deterministic: drawn from ``random.Random(f"{key}:retry:{n}")``
where ``key`` is the request id, so two runs of the same scripted
workload back off identically — jitter decorrelates requests from each
other, not a run from its replay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.runtime.executor import TRANSIENT_OUTCOMES
from repro.util.errors import ResourceError


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transient faults.

    Retry ``n`` (0-based) waits ``min(base_delay * 2**n, max_delay)``
    seconds, stretched by up to ``jitter`` as a fraction (0.5 means up
    to +50%).  ``max_retries=0`` disables retrying entirely.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_retries < 0:
            raise ResourceError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ResourceError("retry delays must be >= 0")
        if not 0.0 <= self.jitter:
            raise ResourceError(f"jitter must be >= 0, got {self.jitter}")

    def should_retry(self, retries: int, outcomes: Sequence[str]) -> bool:
        """True when a failed run earned another try.

        ``retries`` is the count already performed; ``outcomes`` are the
        attempt outcomes of the failed run (a run with no transient
        attempt failed for a permanent reason and never retries).
        """
        if retries >= self.max_retries:
            return False
        return any(outcome in TRANSIENT_OUTCOMES for outcome in outcomes)

    def delay(self, retry: int, key: str) -> float:
        """Backoff before 0-based retry ``retry`` of request ``key``."""
        backoff = min(self.base_delay * (2.0 ** retry), self.max_delay)
        if self.jitter <= 0 or backoff <= 0:
            return backoff
        rng = random.Random(f"{key}:retry:{retry}")
        return backoff * (1.0 + self.jitter * rng.random())
