"""Request and response types for the :mod:`repro.serve` scheduler.

A :class:`ServeRequest` is one query submitted to the server: the query
itself plus the per-query resource contract (``deadline`` and
``max_cost`` become a :class:`~repro.runtime.budget.Budget`), the
sampling parameters, a ``tenant`` for fair-share arbitration and
telemetry, a ``seed`` for deterministic replay, and an optional
``arrival`` offset for scripted workloads.

A :class:`ServeResponse` is the structured answer every request is
guaranteed to receive, whatever happens to it — admission rejection,
load shedding, retries, breaker trips, or a clean answer.  ``code``
is one of :data:`RESPONSE_CODES`; the accounting invariant (see
docs/ROBUSTNESS.md, "Serving and overload") is::

    submitted == admitted + rejected + shed
    admitted  == completed + failed
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.logic.evaluator import FOQuery
from repro.runtime.budget import Budget
from repro.util.errors import QueryError

#: Terminal outcome of a request.  ``ok`` is the only success; the
#: rest split into *rejections* (refused at admission), *sheds*
#: (dropped for load), and *failures* (admitted but not answered).
OK = "ok"
OVERLOADED = "overloaded"                  # shed: backlog full
COST_REFUSED = "cost_refused"              # rejected: no engine can run it
DEADLINE_UNMEETABLE = "deadline_unmeetable"  # rejected: forecast > deadline
INVALID = "invalid"                        # rejected: malformed request
SHUTDOWN = "shutdown"                      # rejected: server draining
DEADLINE_EXPIRED = "deadline_expired"      # failed: expired in queue/flight
EXHAUSTED = "exhausted"                    # failed: every engine fell through
BREAKER_OPEN = "breaker_open"              # failed: no engine healthy in time
FAILED = "failed"                          # failed: unexpected library error

RESPONSE_CODES: Tuple[str, ...] = (
    OK,
    OVERLOADED,
    COST_REFUSED,
    DEADLINE_UNMEETABLE,
    INVALID,
    SHUTDOWN,
    DEADLINE_EXPIRED,
    EXHAUSTED,
    BREAKER_OPEN,
    FAILED,
)

#: Codes counted as admission *rejections* (never entered the backlog).
REJECTED_CODES: Tuple[str, ...] = (
    COST_REFUSED,
    DEADLINE_UNMEETABLE,
    INVALID,
    SHUTDOWN,
)

#: Codes counted as load *shedding*.
SHED_CODES: Tuple[str, ...] = (OVERLOADED,)

#: Codes counted as post-admission *failures*.
FAILED_CODES: Tuple[str, ...] = (
    DEADLINE_EXPIRED,
    EXHAUSTED,
    BREAKER_OPEN,
    FAILED,
)


@dataclass(frozen=True)
class ServeRequest:
    """One query submitted to the server.

    ``query`` is a query object or query text (parsed lazily with
    ``free`` as the free-variable order); ``deadline`` and ``max_cost``
    mirror the CLI's resource flags and become the per-query budget;
    ``arrival`` is the submission offset in scheduler seconds used by
    scripted workloads (``Server.run``) — live submissions ignore it.
    ``chain`` overrides the server's default engine chain; the ladder
    and breaker still filter it.  ``seed`` drives every random choice
    made on behalf of this request (engine rng, retry jitter), which is
    what makes whole-server replay possible.
    """

    id: str
    query: Any
    free: Optional[Tuple[str, ...]] = None
    tenant: str = "default"
    quantity: str = "reliability"
    epsilon: float = 0.05
    delta: float = 0.05
    deadline: Optional[float] = None
    max_cost: Optional[int] = None
    chain: Optional[Tuple[str, ...]] = None
    seed: int = 0
    arrival: float = 0.0
    race: Any = False

    def resolved_query(self):
        """The query object (text is parsed here; raises QueryError)."""
        if isinstance(self.query, str):
            return FOQuery(self.query, tuple(self.free) if self.free else None)
        return self.query

    def make_budget(self, clock) -> Budget:
        """The per-query budget, on the server's scheduler clock."""
        return Budget(
            deadline=self.deadline,
            max_worlds=self.max_cost,
            max_ground_clauses=self.max_cost,
            max_samples=self.max_cost,
            clock=clock,
        )

    def validate(self) -> None:
        """Raise :class:`QueryError` on a malformed request."""
        if not self.id:
            raise QueryError("request id must be non-empty")
        if self.quantity not in ("reliability", "probability"):
            raise QueryError(
                f"unknown quantity {self.quantity!r}; "
                "use 'reliability' or 'probability'"
            )
        for name, value in (("epsilon", self.epsilon), ("delta", self.delta)):
            if not 0.0 < float(value) < 1.0:
                raise QueryError(f"{name} must be in (0, 1), got {value!r}")
        if self.deadline is not None and not self.deadline > 0:
            raise QueryError(
                f"deadline must be positive, got {self.deadline!r}"
            )
        if self.max_cost is not None and not int(self.max_cost) > 0:
            raise QueryError(
                f"max_cost must be positive, got {self.max_cost!r}"
            )
        if self.chain is not None and not self.chain:
            raise QueryError("engine chain override must be non-empty")
        if self.arrival < 0:
            raise QueryError(f"arrival must be >= 0, got {self.arrival!r}")


@dataclass(frozen=True)
class ServeResponse:
    """The structured answer one request receives.

    ``tier`` is the guarantee tier the request was *admitted* at (fixed
    at admission — the ladder never changes it mid-request); ``attempts``
    summarises every engine attempt across all tries as ``(engine,
    outcome)`` pairs; ``retries`` counts re-executions after transient
    faults; ``queued``/``elapsed`` are scheduler-clock seconds.
    """

    id: str
    tenant: str
    code: str
    value: Optional[float] = None
    engine: Optional[str] = None
    guarantee: Optional[str] = None
    tier: Optional[str] = None
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    attempts: Tuple[Tuple[str, str], ...] = ()
    retries: int = 0
    queued: float = 0.0
    elapsed: float = 0.0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.code == OK

    def fingerprint(self) -> Tuple:
        """The replay identity of this response (bit-for-bit checks)."""
        return (
            self.id,
            self.code,
            self.value,
            self.engine,
            self.guarantee,
            self.tier,
            self.attempts,
            self.retries,
        )
