"""Admission control: forecasts, deadlines, and the degradation ladder.

Every request is assessed *before* it may queue, using the same
:func:`repro.runtime.costmodel.plan_chain` dry run ``repro analyze``
prints — admission and execution share one cost model, so a request
the forecast refuses is a request the executor would have refused.

The :class:`DegradationLadder` is the overload policy the paper's
guarantee tiers make principled: under pressure the server does not
fail requests, it *weakens their guarantee*.  As backlog depth grows,
new admissions are capped at ``relative`` and then ``additive`` tier —
their chains drop the expensive exact engines and go straight to the
samplers (Corollary 5.5 / Hoeffding).  The tier is fixed at admission:
a request never downgrades (or upgrades) mid-flight, so degradation is
monotone and observable per request; as the backlog drains, later
admissions recover stronger tiers automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.runtime import costmodel
from repro.runtime.budget import Budget
from repro.runtime.racing import GUARANTEE_RANK
from repro.util.errors import QueryError, ResourceError

from repro.serve import request as rq


@dataclass(frozen=True)
class DegradationLadder:
    """Backlog-depth thresholds for admission-time guarantee tiers.

    Depth below ``relative_at`` admits at full strength (``exact``);
    depth in ``[relative_at, additive_at)`` admits at ``relative``;
    depth at or above ``additive_at`` admits at ``additive``.  ``None``
    disables a rung.
    """

    relative_at: Optional[int] = 4
    additive_at: Optional[int] = 8

    def __post_init__(self):
        if (
            self.relative_at is not None
            and self.additive_at is not None
            and self.additive_at < self.relative_at
        ):
            raise ResourceError(
                "additive_at must be >= relative_at "
                f"({self.additive_at} < {self.relative_at})"
            )

    def tier_for_depth(self, depth: int) -> str:
        if self.additive_at is not None and depth >= self.additive_at:
            return "additive"
        if self.relative_at is not None and depth >= self.relative_at:
            return "relative"
        return "exact"


def tier_filter(
    chain: Tuple[str, ...], quantity: str, tier: str
) -> Tuple[str, ...]:
    """Engines of ``chain`` whose guarantee is no stronger than ``tier``.

    Degrading to ``additive`` drops the exact engines (the expensive
    ones — that is the load the ladder sheds).  A chain that cannot
    degrade (no engine at or below the tier) is returned unchanged:
    degradation must never turn a servable request into an unservable
    one, so such a request is simply served at its native strength.
    """
    floor = GUARANTEE_RANK[tier]
    filtered = tuple(
        engine
        for engine in chain
        if GUARANTEE_RANK[costmodel.engine_guarantee(engine, quantity)] >= floor
    )
    return filtered if filtered else chain


def retain_safe_tier(
    chain: Tuple[str, ...],
    filtered: Tuple[str, ...],
    query,
    tier: str,
) -> Tuple[str, ...]:
    """Keep ``safe_lifted`` through ladder degradation for safe queries.

    The ladder sheds the *expensive* exact engines; a statically safe
    query's lifted plan is polynomial — cheaper than the samplers the
    degraded tier falls back to — so dropping it would make an
    overloaded server do strictly more work for a weaker answer.  When
    the dichotomy classifier proves the query safe, the static tier is
    re-prepended to the degraded chain.
    """
    if (
        tier == "exact"
        or "safe_lifted" not in chain
        or "safe_lifted" in filtered
    ):
        return filtered
    from repro.logic.safety import classify_dichotomy

    if not classify_dichotomy(query).safe:
        return filtered
    return ("safe_lifted",) + filtered


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict on one arriving request.

    ``code`` is ``"admitted"`` or a rejection code from
    :mod:`repro.serve.request`; ``tier`` the admitted guarantee tier;
    ``chain`` the tier-filtered engine chain the run will walk;
    ``predicted_seconds`` the forecast cost of the selected engine.
    """

    code: str
    tier: str
    chain: Tuple[str, ...]
    detail: str = ""
    predicted_seconds: float = 0.0


ADMITTED = "admitted"


def assess(
    db,
    request: "rq.ServeRequest",
    chain: Tuple[str, ...],
    depth: int,
    ladder: DegradationLadder,
    budget: Budget,
    cost_model=None,
    adaptive: bool = False,
) -> AdmissionDecision:
    """Decide one request's admission against the current backlog depth.

    Order of checks: ladder tier for the depth, then the ``plan_chain``
    dry run of the tier-filtered chain under the request's own budget
    (no engine forecast ``ok`` → ``cost_refused``), then the selected
    engine's predicted seconds against the deadline
    (``deadline_unmeetable``).  Malformed queries surface as
    ``invalid``.  The caller's budget is never consumed — the dry run
    is read-only, exactly as ``repro analyze`` is.

    ``adaptive`` forwards to the ``plan_chain`` dry run: predicted
    seconds for the sampling engines then price the surrogate's
    expected early stopping, so a warm surrogate admits requests a
    worst-case forecast would refuse under the same deadline.
    """
    tier = ladder.tier_for_depth(depth)
    filtered = tier_filter(chain, request.quantity, tier)
    try:
        query = request.resolved_query()
        filtered = retain_safe_tier(chain, filtered, query, tier)
        plan = costmodel.plan_chain(
            db,
            query,
            chain=filtered,
            budget=budget,
            quantity=request.quantity,
            epsilon=request.epsilon,
            delta=request.delta,
            cost_model=cost_model,
            adaptive=adaptive,
        )
    except QueryError as exc:
        return AdmissionDecision(rq.INVALID, tier, filtered, str(exc))
    if plan.selected is None:
        reasons = "; ".join(
            f"{f.engine}: {f.detail or f.outcome}" for f in plan.forecasts
        )
        return AdmissionDecision(
            rq.COST_REFUSED, tier, filtered, f"no engine admissible ({reasons})"
        )
    forecast = {f.engine: f.predicted_seconds for f in plan.forecasts}
    predicted = forecast[plan.selected]
    remaining = budget.remaining_time()
    if remaining is None or predicted <= remaining:
        return AdmissionDecision(ADMITTED, tier, plan.chain, "", predicted)
    # The preferred engine cannot finish in time.  Before refusing,
    # fall forward through the plan: admit on the engines whose own
    # forecasts fit the deadline (deadline pressure is just another
    # degradation axis — serve a weaker answer rather than none).
    fitting = tuple(
        engine
        for engine in plan.chain
        if forecast.get(engine, 0.0) <= remaining
    )
    if fitting:
        return AdmissionDecision(
            ADMITTED, tier, fitting, "", forecast[fitting[0]]
        )
    return AdmissionDecision(
        rq.DEADLINE_UNMEETABLE,
        tier,
        filtered,
        f"engine {plan.selected!r} forecast {predicted:.3g}s exceeds "
        f"the {remaining:.3g}s deadline, and no cheaper engine fits",
        predicted,
    )
