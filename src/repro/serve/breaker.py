"""Per-engine circuit breakers for the serve scheduler.

An engine that keeps timing out (a stalled external resource, a bad
calibration making every slice too short) should stop being *tried*:
each failed attempt burns a slice of every request's deadline.  The
breaker watches the executor's per-attempt outcomes and takes a
repeatedly-failing engine out of the launch chain:

``closed``
    healthy: attempts flow, consecutive trip-outcomes are counted;
``open``
    tripped after ``threshold`` consecutive failures: the engine is
    filtered out of every launch for ``cooldown`` scheduler-seconds;
``half_open``
    the cooldown passed: attempts are allowed again as probes — the
    first success closes the breaker, the first failure re-opens it.

Only *transient* outcomes trip the breaker (default: the executor's
``budget_exceeded``); fragment mismatches and cost refusals are
properties of individual queries, not engine health, and neither count
as failures nor reset the streak.

All clocks are the server scheduler's, so breaker trips and heals
replay deterministically under the virtual clock; every transition is
appended to :attr:`CircuitBreaker.transitions` (the replay fingerprint)
and mirrored as ``serve.breaker.*`` telemetry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.util.errors import ResourceError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class _EngineState:
    __slots__ = ("state", "failures", "opened_at")

    def __init__(self):
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0


class CircuitBreaker:
    """Track per-engine health; filter launches; heal on probes."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 1.0,
        trip_outcomes: Tuple[str, ...] = ("budget_exceeded",),
    ):
        if threshold < 1:
            raise ResourceError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ResourceError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.trip_outcomes = tuple(trip_outcomes)
        self._engines: Dict[str, _EngineState] = {}
        #: Every state change, in driver order: ``(time, engine, old, new)``.
        self.transitions: List[Tuple[float, str, str, str]] = []

    def _state(self, engine: str) -> _EngineState:
        state = self._engines.get(engine)
        if state is None:
            state = self._engines[engine] = _EngineState()
        return state

    def _transition(
        self, engine: str, state: _EngineState, new: str, now: float
    ) -> None:
        old = state.state
        state.state = new
        self.transitions.append((now, engine, old, new))
        obs.inc(f"serve.breaker.{new}")
        obs.event(
            "serve.breaker.transition",
            engine=engine,
            old=old,
            new=new,
            time=now,
        )

    def state(self, engine: str) -> str:
        """The engine's current state name (``closed`` if untracked)."""
        state = self._engines.get(engine)
        return CLOSED if state is None else state.state

    def allow(self, engine: str, now: float) -> bool:
        """May the engine be launched at scheduler time ``now``?

        An open breaker whose cooldown has passed transitions to
        half-open here (lazily, on the first launch that asks) and
        allows the probe through.
        """
        state = self._engines.get(engine)
        if state is None or state.state == CLOSED:
            return True
        if state.state == OPEN:
            if now >= state.opened_at + self.cooldown:
                self._transition(engine, state, HALF_OPEN, now)
                return True
            return False
        return True  # half-open: probes are allowed

    def reopen_at(self, engine: str) -> Optional[float]:
        """When an open engine becomes probe-able (``None`` if not open)."""
        state = self._engines.get(engine)
        if state is None or state.state != OPEN:
            return None
        return state.opened_at + self.cooldown

    def record(self, engine: str, outcome: str, now: float) -> None:
        """Feed one executor attempt outcome into the breaker."""
        state = self._state(engine)
        if outcome == "ok":
            state.failures = 0
            if state.state != CLOSED:
                self._transition(engine, state, CLOSED, now)
            return
        if outcome not in self.trip_outcomes:
            return  # permanent, query-specific: not an engine-health signal
        if state.state == HALF_OPEN:
            # The probe failed: straight back to open, cooldown restarts.
            state.failures = self.threshold
            state.opened_at = now
            self._transition(engine, state, OPEN, now)
            return
        state.failures += 1
        if state.state == CLOSED and state.failures >= self.threshold:
            state.opened_at = now
            self._transition(engine, state, OPEN, now)
