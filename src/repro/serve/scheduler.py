"""The serve driver: one shared worker pool, many concurrent queries.

:class:`Server` is the long-lived multi-query scheduler the ROADMAP's
millions-of-users story needs: requests arrive with per-query budgets
and deadlines, are assessed by the same cost-model dry run ``analyze``
uses, queue in a bounded deadline-aware backlog, and are launched over
a fixed-size worker pool with fair-share arbitration *between* queries
— the between-engines fair share of one ``run_with_fallback`` chain
nests inside it unchanged.

The driver is the same event loop shape as the racing executor
(:func:`repro.runtime.racing.run_race`), built on the same scheduler
protocol (``now``/``spawn``/``wait``/``pop_completions``/``poke``):
with the real :class:`~repro.runtime.racing.ThreadScheduler` workers
are daemon threads on the wall clock; with the deterministic
:class:`~repro.runtime.faults.VirtualScheduler` the *whole server* —
admission decisions, fair-share picks, retries, breaker transitions,
per-query answers — replays bit-for-bit from a scripted fault schedule
and a seed (tests/serve/test_replay.py).

Robustness machinery, each in its own module:

* admission control and the load-shedding guarantee ladder —
  :mod:`repro.serve.admission`;
* retry with exponential backoff + deterministic jitter for transient
  faults (the executor's ``budget_exceeded`` outcome) —
  :mod:`repro.serve.retry`;
* per-engine circuit breakers that trip on repeated failures and heal
  on probes — :mod:`repro.serve.breaker`;
* the bounded backlog with deadline expiry — :mod:`repro.serve.queue`.

Every request receives exactly one structured
:class:`~repro.serve.request.ServeResponse`; the ``serve.*`` counters
(:mod:`repro.serve.metrics`) account for every request, globally and
per tenant.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.runtime.budget import CancelToken, RacerBudget
from repro.runtime.executor import DEFAULT_CHAIN
from repro.runtime.racing import ThreadScheduler, racer_scope
from repro.util.errors import (
    BudgetExceeded,
    CostRefused,
    FallbackExhausted,
    QueryError,
    ReproError,
    ResourceError,
)

from repro.serve import admission as adm
from repro.serve import metrics
from repro.serve import request as rq
from repro.serve.breaker import CircuitBreaker
from repro.serve.queue import Backlog
from repro.serve.retry import RetryPolicy


class _Ticket:
    """Mutable per-request state while it lives inside the server."""

    __slots__ = (
        "request",
        "seq",
        "tier",
        "chain",
        "budget",
        "token",
        "worker_budget",
        "entity",
        "not_before",
        "retries",
        "attempts",
        "last_attempts",
        "submitted_at",
        "admitted_at",
        "first_launch_at",
        "launched_at",
        "outcome",
        "detail",
        "result",
        "error",
        "last_elapsed",
    )

    def __init__(self, request: "rq.ServeRequest", seq: int, now: float):
        self.request = request
        self.seq = seq
        self.tier = "exact"
        self.chain: Tuple[str, ...] = ()
        self.budget = None
        self.token: Optional[CancelToken] = None
        self.worker_budget: Optional[RacerBudget] = None
        self.entity: Optional[int] = None
        self.not_before = now
        self.retries = 0
        self.attempts: List = []   # executor Attempt records, across tries
        self.last_attempts: Tuple = ()  # the most recent try's attempts
        self.submitted_at = now
        self.admitted_at = now
        self.first_launch_at: Optional[float] = None
        self.launched_at = now
        self.outcome: Optional[str] = None
        self.detail = ""
        self.result = None
        self.error: Optional[BaseException] = None
        self.last_elapsed = 0.0


class Server:
    """A multi-query reliability server over one shared worker pool.

    ``scripted`` use (tests, CLI batches)::

        server = Server(db, pool_size=2, scheduler=VirtualScheduler())
        responses = server.run(requests)      # honours request.arrival

    Live use: :meth:`submit` from any thread (wakes the driver via the
    scheduler's ``poke``), :meth:`run` in the driver thread, and
    :meth:`shutdown` to start rejecting new work while in-flight and
    queued requests drain.

    ``race`` on a request is honoured only on the real scheduler; the
    virtual clock drives one flat pool (a nested race would need a
    second driver inside a worker entity).
    """

    def __init__(
        self,
        db,
        pool_size: int = 4,
        queue_capacity: int = 16,
        chain: Sequence[str] = DEFAULT_CHAIN,
        ladder: Optional[adm.DegradationLadder] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        cost_model=None,
        scheduler=None,
        cache_dir=None,
        adaptive: bool = False,
    ):
        if pool_size < 1:
            raise ResourceError(f"pool_size must be >= 1, got {pool_size}")
        if queue_capacity < 1:
            raise ResourceError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if cache_dir is not None:
            # Cross-request (and cross-process) warm reuse: every worker
            # shares the process-wide memory LRU, and the persistent tier
            # lets a restarted server start warm on repeated (query, db)
            # pairs — see repro.kernels.cache_persist.
            from repro.kernels import cache_persist

            cache_persist.configure(str(cache_dir))
        self.db = db
        self.pool_size = pool_size
        self.chain = tuple(chain)
        self.ladder = ladder if ladder is not None else adm.DegradationLadder()
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.cost_model = cost_model
        #: Sequential empirical-Bernstein stopping for every request's
        #: sampling engines, plus surrogate-priced admission forecasts
        #: (see repro.runtime.adaptive).
        self.adaptive = bool(adaptive)
        self.scheduler = scheduler if scheduler is not None else ThreadScheduler()
        self._backlog = Backlog(queue_capacity)
        self._running: Dict[int, _Ticket] = {}
        self._inbox: List["rq.ServeRequest"] = []
        self._inbox_lock = threading.Lock()
        self._seq = 0
        self._draining = False
        self._tenant_inflight: Dict[str, int] = {}
        self._tenant_service: Dict[str, float] = {}
        #: Every response, in finalisation (driver) order.
        self.responses: List["rq.ServeResponse"] = []

    # -- public surface -------------------------------------------------- #

    def submit(self, request: "rq.ServeRequest") -> None:
        """Enqueue a request from any thread; wakes a waiting driver."""
        with self._inbox_lock:
            self._inbox.append(request)
        self.scheduler.poke()

    def shutdown(self) -> None:
        """Start draining: new submissions are answered ``shutdown``."""
        self._draining = True
        self.scheduler.poke()

    @property
    def draining(self) -> bool:
        return self._draining

    def backlog_depth(self) -> int:
        return len(self._backlog)

    def inflight(self) -> int:
        return len(self._running)

    def run(
        self, requests: Iterable["rq.ServeRequest"] = ()
    ) -> List["rq.ServeResponse"]:
        """Drive the server until idle; returns this call's responses.

        ``requests`` is a scripted workload: each request is accepted
        when the scheduler clock reaches its ``arrival`` offset
        (relative to this call's start).  Live submissions via
        :meth:`submit` are drained too.  The call returns once every
        accepted request has been answered and no more are scripted —
        the natural drain/flush of a batch.
        """
        start_index = len(self.responses)
        base = self.scheduler.now()
        scripted = sorted(
            enumerate(requests), key=lambda pair: (pair[1].arrival, pair[0])
        )
        scripted = [request for _, request in scripted]
        while True:
            now = self.scheduler.now()
            while scripted and base + scripted[0].arrival <= now:
                self._accept(scripted.pop(0))
            self._drain_inbox()
            self._step(now)
            if not scripted and self._idle():
                break
            next_arrival = (
                base + scripted[0].arrival - now if scripted else None
            )
            self.scheduler.wait(self._timeout(now, next_arrival))
            self._collect()
        return self.responses[start_index:]

    # -- driver internals ------------------------------------------------ #

    def _idle(self) -> bool:
        with self._inbox_lock:
            inbox = bool(self._inbox)
        return not inbox and not len(self._backlog) and not self._running

    def _drain_inbox(self) -> None:
        with self._inbox_lock:
            arrived, self._inbox = self._inbox, []
        for request in arrived:
            self._accept(request)

    def _tenants(self, tenant: str) -> None:
        self._tenant_inflight.setdefault(tenant, 0)
        self._tenant_service.setdefault(tenant, 0.0)

    def _accept(self, request: "rq.ServeRequest") -> None:
        now = self.scheduler.now()
        seq = self._seq
        self._seq += 1
        tenant = request.tenant
        self._tenants(tenant)
        metrics.count(metrics.SUBMITTED, tenant)
        ticket = _Ticket(request, seq, now)
        try:
            request.validate()
        except QueryError as exc:
            self._reject(ticket, rq.INVALID, str(exc))
            return
        if self._draining:
            self._reject(ticket, rq.SHUTDOWN, "server is draining")
            return
        if self._backlog.full:
            metrics.count(metrics.SHED, tenant)
            obs.event(
                "serve.shed",
                id=request.id,
                tenant=tenant,
                depth=len(self._backlog),
            )
            self._finalize(
                ticket,
                rq.OVERLOADED,
                f"backlog full ({self._backlog.capacity} queued)",
                admitted=False,
            )
            return
        budget = request.make_budget(clock=self.scheduler.now).start()
        ticket.budget = budget
        depth = len(self._backlog)
        decision = adm.assess(
            self.db,
            request,
            tuple(request.chain) if request.chain else self.chain,
            depth,
            self.ladder,
            budget,
            self.cost_model,
            adaptive=self.adaptive,
        )
        ticket.tier = decision.tier
        ticket.chain = decision.chain
        if decision.code != adm.ADMITTED:
            self._reject(ticket, decision.code, decision.detail)
            return
        metrics.count(metrics.ADMITTED, tenant)
        if decision.tier != "exact":
            metrics.count(metrics.DEGRADED, tenant)
        obs.event(
            "serve.admitted",
            id=request.id,
            tenant=tenant,
            tier=decision.tier,
            depth=depth,
            predicted_seconds=decision.predicted_seconds,
        )
        ticket.admitted_at = now
        self._backlog.push(ticket)
        obs.gauge(metrics.QUEUE_DEPTH, len(self._backlog))

    def _reject(self, ticket: _Ticket, code: str, detail: str) -> None:
        metrics.count(metrics.REJECTED, ticket.request.tenant)
        self._finalize(ticket, code, detail, admitted=False)

    def _step(self, now: float) -> None:
        """Expire the overdue, then launch ready work fair-share."""
        for ticket in self._backlog.take_expired(now):
            metrics.count(metrics.EXPIRED, ticket.request.tenant)
            self._finalize(
                ticket, rq.DEADLINE_EXPIRED, "deadline expired in the backlog"
            )
        ready = self._backlog.ready(now)
        while ready and len(self._running) < self.pool_size:
            ticket = min(ready, key=self._fair_key)
            ready.remove(ticket)
            self._backlog.remove(ticket)
            self._launch(ticket, now)
        obs.gauge(metrics.QUEUE_DEPTH, len(self._backlog))

    def _fair_key(self, ticket: _Ticket):
        """Fair-share pick order *between* queries.

        Least-served tenants first (in-flight count, then accumulated
        service seconds), then the most urgent deadline, then FIFO —
        every component read off the scheduler clock or driver state,
        so the pick replays deterministically.
        """
        tenant = ticket.request.tenant
        remaining = ticket.budget.remaining_time()
        return (
            self._tenant_inflight.get(tenant, 0),
            self._tenant_service.get(tenant, 0.0),
            remaining if remaining is not None else float("inf"),
            ticket.seq,
        )

    def _timeout(
        self, now: float, next_arrival: Optional[float]
    ) -> Optional[float]:
        """Seconds until the next timed driver event, or ``None``.

        Completions wake the driver by themselves; timers — scripted
        arrivals, retry backoffs, breaker reopen times, queued deadline
        expiries — must bound the wait so the virtual clock advances to
        them even when nothing is running.
        """
        horizon = self._backlog.next_event(now)
        if next_arrival is not None and (
            horizon is None or next_arrival < horizon
        ):
            horizon = next_arrival
        if horizon is None:
            return None
        return max(0.0, horizon)

    def _launch(self, ticket: _Ticket, now: float) -> None:
        request = ticket.request
        allowed = tuple(
            engine
            for engine in ticket.chain
            if self.breaker.allow(engine, now)
        )
        if not allowed:
            reopens = [
                self.breaker.reopen_at(engine) for engine in ticket.chain
            ]
            reopens = [at for at in reopens if at is not None]
            wake = min(reopens) if reopens else None
            remaining = ticket.budget.remaining_time()
            if wake is not None and (
                remaining is None or wake - now < remaining
            ):
                # Wait for the earliest breaker probe window instead of
                # failing: the engine may heal within the deadline.
                ticket.not_before = wake
                self._backlog.push(ticket)
                obs.gauge(metrics.QUEUE_DEPTH, len(self._backlog))
                return
            self._finalize(
                ticket,
                rq.BREAKER_OPEN,
                "every admissible engine's circuit breaker is open",
            )
            return
        token = CancelToken()
        ticket.token = token
        ticket.worker_budget = RacerBudget(
            ticket.budget,
            token,
            sample_headroom=ticket.budget.remaining_samples(),
            on_checkpoint=self.scheduler.checkpoint,
        )
        ticket.launched_at = now
        if ticket.first_launch_at is None:
            ticket.first_launch_at = now
        tenant = request.tenant
        self._tenant_inflight[tenant] = self._tenant_inflight.get(tenant, 0) + 1
        body = self._make_body(ticket, allowed)
        ticket.entity = self.scheduler.spawn(request.id, body)
        self._running[ticket.entity] = ticket
        obs.event(
            "serve.launch",
            id=request.id,
            tenant=tenant,
            try_index=ticket.retries,
            chain=",".join(allowed),
        )

    def _make_body(self, ticket: _Ticket, chain: Tuple[str, ...]):
        from repro.runtime import executor

        request = ticket.request
        db = self.db
        scheduler = self.scheduler
        worker_budget = ticket.worker_budget
        cost_model = self.cost_model
        adaptive = self.adaptive
        # Each try gets its own derived generator: a retry re-samples
        # instead of deterministically replaying the failed draw, while
        # the derivation itself stays replayable from the request seed.
        rng = random.Random(f"{request.seed}:{request.id}:try:{ticket.retries}")
        race = False if scheduler.is_virtual else request.race

        def body():
            with racer_scope(scheduler, ticket.token):
                t0 = scheduler.now()
                try:
                    result = executor.run_with_fallback(
                        db,
                        request.resolved_query(),
                        chain=chain,
                        budget=worker_budget,
                        quantity=request.quantity,
                        epsilon=request.epsilon,
                        delta=request.delta,
                        rng=rng,
                        cost_model=cost_model,
                        race=race,
                        adaptive=adaptive,
                    )
                    ticket.result = result
                    ticket.outcome = "ok"
                    ticket.last_attempts = tuple(result.attempts)
                    ticket.attempts.extend(result.attempts)
                except FallbackExhausted as exc:
                    ticket.outcome = "exhausted"
                    ticket.detail = str(exc)
                    ticket.last_attempts = tuple(exc.attempts)
                    ticket.attempts.extend(exc.attempts)
                except (CostRefused, BudgetExceeded) as exc:
                    outcome, _ = executor.classify_failure(exc)
                    ticket.outcome = outcome
                    ticket.detail = str(exc)
                    ticket.last_attempts = ()
                except ReproError as exc:
                    ticket.outcome = "failed"
                    ticket.detail = str(exc)
                    ticket.last_attempts = ()
                except BaseException as exc:  # a genuine bug: carry out
                    ticket.outcome = "crashed"
                    ticket.error = exc
                finally:
                    ticket.last_elapsed = scheduler.now() - t0

        return body

    def _collect(self) -> None:
        for entity in self.scheduler.pop_completions():
            self._on_complete(self._running[entity])

    def _on_complete(self, ticket: _Ticket) -> None:
        now = self.scheduler.now()
        self._running.pop(ticket.entity, None)
        tenant = ticket.request.tenant
        self._tenant_inflight[tenant] = max(
            0, self._tenant_inflight.get(tenant, 1) - 1
        )
        self._tenant_service[tenant] = (
            self._tenant_service.get(tenant, 0.0) + ticket.last_elapsed
        )
        if ticket.outcome == "crashed":
            raise ticket.error
        # Fold the worker's private ledgers back into the per-query
        # budget: a retry continues the same allowance, it does not get
        # a fresh one — retries cure transient faults, not exhaustion.
        worker_budget = ticket.worker_budget
        if worker_budget is not None:
            ticket.budget.worlds += worker_budget.worlds
            ticket.budget.samples += worker_budget.samples
            ticket.budget.ground_clauses += worker_budget.ground_clauses
        for attempt in ticket.last_attempts:
            self.breaker.record(attempt.engine, attempt.outcome, now)
        if ticket.outcome == "ok":
            self._finalize(ticket, rq.OK)
            return
        outcomes = [a.outcome for a in ticket.last_attempts] or [ticket.outcome]
        if self.retry.should_retry(ticket.retries, outcomes):
            delay = self.retry.delay(ticket.retries, ticket.request.id)
            remaining = ticket.budget.remaining_time()
            if remaining is None or remaining > delay:
                ticket.retries += 1
                metrics.count(metrics.RETRIES, tenant)
                ticket.not_before = now + delay
                ticket.outcome = None
                ticket.detail = ""
                # Already admitted: re-entry bypasses the capacity check.
                self._backlog.push(ticket)
                obs.gauge(metrics.QUEUE_DEPTH, len(self._backlog))
                obs.event(
                    "serve.retry",
                    id=ticket.request.id,
                    tenant=tenant,
                    retry=ticket.retries,
                    delay=delay,
                )
                return
        remaining = ticket.budget.remaining_time()
        expired = remaining is not None and remaining <= 0
        if expired:
            metrics.count(metrics.EXPIRED, tenant)
            self._finalize(
                ticket,
                rq.DEADLINE_EXPIRED,
                ticket.detail or "deadline expired mid-flight",
            )
        elif ticket.outcome == "exhausted":
            self._finalize(ticket, rq.EXHAUSTED, ticket.detail)
        else:
            self._finalize(ticket, rq.FAILED, ticket.detail)

    def _finalize(
        self,
        ticket: _Ticket,
        code: str,
        detail: str = "",
        admitted: bool = True,
    ) -> None:
        now = self.scheduler.now()
        request = ticket.request
        tenant = request.tenant
        result = ticket.result if code == rq.OK else None
        queued = (
            (ticket.first_launch_at or now) - ticket.admitted_at
            if admitted
            else 0.0
        )
        response = rq.ServeResponse(
            id=request.id,
            tenant=tenant,
            code=code,
            value=result.value if result is not None else None,
            engine=result.engine if result is not None else None,
            guarantee=result.guarantee if result is not None else None,
            tier=ticket.tier if admitted else None,
            epsilon=result.epsilon if result is not None else None,
            delta=result.delta if result is not None else None,
            attempts=tuple(
                (attempt.engine, attempt.outcome)
                for attempt in ticket.attempts
            ),
            retries=ticket.retries,
            queued=queued,
            elapsed=now - ticket.submitted_at,
            detail=detail,
        )
        self.responses.append(response)
        if admitted:
            if code == rq.OK:
                metrics.count(metrics.COMPLETED, tenant)
            else:
                metrics.count(metrics.FAILED, tenant)
            metrics.observe(metrics.QUEUE_WAIT, tenant, queued)
            metrics.observe(metrics.SERVICE, tenant, ticket.last_elapsed)
        obs.event(
            "serve.response",
            id=request.id,
            tenant=tenant,
            code=code,
            engine=response.engine,
            tier=response.tier,
            retries=response.retries,
        )
