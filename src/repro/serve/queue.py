"""The bounded, deadline-aware backlog of admitted requests.

Admitted tickets wait here until a pool slot opens.  The backlog is
deliberately dumb — ordering policy (fair share between tenants) lives
in the server's pick function, not in the queue — but it knows two
things about time:

* a ticket whose per-query deadline expires while queued is *expired*
  (collected by :meth:`take_expired` and answered
  ``deadline_expired`` without ever launching), and
* a ticket may carry a ``not_before`` time (retry backoff, breaker
  cooldown) before which it is not :meth:`ready`.

``capacity`` bounds only fresh admissions (checked by the server);
retries re-enter without a capacity check — they were already admitted
and shedding them would double-charge the request.
"""

from __future__ import annotations

from typing import List, Optional


class Backlog:
    """FIFO store of waiting tickets with timed visibility."""

    def __init__(self, capacity: int):
        self.capacity = max(0, int(capacity))
        self._tickets: List = []

    def __len__(self) -> int:
        return len(self._tickets)

    def __iter__(self):
        return iter(self._tickets)

    @property
    def full(self) -> bool:
        return len(self._tickets) >= self.capacity

    def push(self, ticket) -> None:
        self._tickets.append(ticket)

    def remove(self, ticket) -> None:
        self._tickets.remove(ticket)

    def ready(self, now: float) -> List:
        """Tickets eligible to launch at scheduler time ``now``."""
        return [t for t in self._tickets if t.not_before <= now]

    def take_expired(self, now: float) -> List:
        """Remove and return tickets whose deadline has passed."""
        expired = []
        kept = []
        for ticket in self._tickets:
            remaining = ticket.budget.remaining_time()
            if remaining is not None and remaining <= 0:
                expired.append(ticket)
            else:
                kept.append(ticket)
        self._tickets = kept
        return expired

    def next_event(self, now: float) -> Optional[float]:
        """Seconds until the earliest queued timer, or ``None``.

        Timers are retry/breaker ``not_before`` wake-ups and per-query
        deadline expiries — the driver must advance the (virtual) clock
        to them even when nothing is running.
        """
        horizon: Optional[float] = None
        for ticket in self._tickets:
            candidates = []
            if ticket.not_before > now:
                candidates.append(ticket.not_before - now)
            remaining = ticket.budget.remaining_time()
            if remaining is not None and remaining > 0:
                candidates.append(remaining)
            for delta in candidates:
                if horizon is None or delta < horizon:
                    horizon = delta
        return horizon
