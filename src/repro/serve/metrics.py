"""The ``serve.*`` metric schema (names and per-tenant helpers).

Counters obey two accounting invariants the tests enforce::

    serve.submitted == serve.admitted + serve.rejected + serve.shed
    serve.admitted  == serve.completed + serve.failed

Every counter has a per-tenant mirror ``serve.tenant.<tenant>.<name>``
(the suffix after ``serve.``), so multi-tenant dashboards read straight
off :func:`repro.obs.summary` with ``prefix="serve.tenant."``.
"""

from __future__ import annotations

from repro import obs

SUBMITTED = "serve.submitted"
ADMITTED = "serve.admitted"
REJECTED = "serve.rejected"
SHED = "serve.shed"
COMPLETED = "serve.completed"
FAILED = "serve.failed"
EXPIRED = "serve.expired"
RETRIES = "serve.retries"
DEGRADED = "serve.degraded"   # admissions below the exact tier

QUEUE_DEPTH = "serve.queue.depth"          # gauge
QUEUE_WAIT = "serve.queue.wait_seconds"    # histogram
SERVICE = "serve.service_seconds"          # histogram

_PREFIX = "serve."


def tenant_name(tenant: str, name: str) -> str:
    """Per-tenant mirror of a ``serve.*`` metric name."""
    return f"serve.tenant.{tenant}.{name[len(_PREFIX):]}"


def count(name: str, tenant: str = "", amount: int = 1) -> None:
    """Increment a serve counter and its per-tenant mirror."""
    obs.inc(name, amount)
    if tenant:
        obs.inc(tenant_name(tenant, name), amount)


def observe(name: str, tenant: str, value: float) -> None:
    """Record a histogram observation and its per-tenant mirror."""
    obs.observe(name, value)
    if tenant:
        obs.observe(tenant_name(tenant, name), value)
