"""Span-tree profiler: turn span traces into self/total-time profiles.

The recorder emits one record per span at *exit* (records carry the
duration), so a trace lists the innermost span first and the ``depth``
field encodes the nesting.  This module reconstructs the span tree from
that exit-ordered stream and aggregates it two ways:

* a **tree** (:attr:`SpanProfile.roots`) preserving parent/child
  structure, rendered as an indented table — the per-call breakdown of
  where an engine invocation spent its time (compile vs. sample vs.
  checkpoint vs. race coordination);
* a **flat phase table** (:attr:`SpanProfile.phases`) keyed by span
  name, each with call count, *total* time (span open to close,
  children included) and *self* time (total minus direct children) —
  the queryable summary the benchmark harness embeds in every
  :class:`repro.bench.record.BenchResult`.

Reconstruction is a single O(n) pass: spans close child-before-parent,
so a span at depth ``d`` adopts every not-yet-adopted span at depth
``d + 1`` seen since the previous depth-``d`` close.  Traces from
multi-threaded sections (the racing executor) interleave several
per-thread trees; each thread's depths are self-consistent, so the
profile remains a valid aggregate though parentage across threads is
approximate.

Typical use::

    from repro import obs
    from repro.obs.profile import profile_spans

    sink = obs.ListSink()
    with obs.use(obs.StatsRecorder(sink=sink)):
        reliability(db, query)
    profile = profile_spans(sink.events)
    print(profile.render())

or, from the CLI, ``repro <command> ... --profile``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = [
    "SpanNode",
    "PhaseStats",
    "SpanProfile",
    "profile_spans",
    "profile_trace",
    "TeeSink",
]


class SpanNode:
    """One reconstructed span occurrence with its adopted children."""

    __slots__ = ("name", "ts", "dur_s", "depth", "attrs", "children")

    def __init__(self, name, ts, dur_s, depth, attrs, children):
        self.name = name
        self.ts = ts  # end timestamp, seconds since recorder epoch
        self.dur_s = dur_s
        self.depth = depth
        self.attrs = attrs
        self.children: List["SpanNode"] = children

    @property
    def start(self) -> float:
        return self.ts - self.dur_s

    @property
    def self_s(self) -> float:
        """Duration not covered by direct children (clamped at zero)."""
        return max(0.0, self.dur_s - sum(c.dur_s for c in self.children))

    def __repr__(self) -> str:
        return (
            f"SpanNode({self.name!r}, dur_s={self.dur_s:.6f}, "
            f"children={len(self.children)})"
        )


class PhaseStats:
    """Aggregate over every occurrence of one span name."""

    __slots__ = ("name", "count", "total_s", "self_s")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.self_s = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": round(self.total_s, 9),
            "self_s": round(self.self_s, 9),
            "mean_s": round(self.mean_s, 9),
        }

    def __repr__(self) -> str:
        return (
            f"PhaseStats({self.name!r}, count={self.count}, "
            f"total_s={self.total_s:.6f}, self_s={self.self_s:.6f})"
        )


class SpanProfile:
    """The reconstructed tree plus flat per-phase aggregates."""

    def __init__(self, roots: List[SpanNode], phases: Dict[str, PhaseStats]):
        self.roots = roots
        self.phases = phases

    @property
    def total_s(self) -> float:
        """Wall-clock covered by root spans (children are inside them)."""
        return sum(root.dur_s for root in self.roots)

    def phase(self, name: str) -> Optional[PhaseStats]:
        return self.phases.get(name)

    def to_dict(self) -> dict:
        """The embeddable summary: phases sorted by self time, descending."""
        ordered = sorted(
            self.phases.values(), key=lambda p: (-p.self_s, p.name)
        )
        return {
            "total_s": round(self.total_s, 9),
            "phases": [phase.to_dict() for phase in ordered],
        }

    def render(self, max_depth: Optional[int] = None) -> str:
        """An indented table aggregating identically-named siblings.

        Rows carry count, total and self time; within each level the
        heaviest subtree prints first.
        """
        lines = [
            f"{'span':<40} {'count':>6} {'total_s':>10} {'self_s':>10}"
        ]
        merged = _merge_by_name(self.roots)
        _render_level(merged, 0, max_depth, lines)
        if len(lines) == 1:
            lines.append("(no spans recorded)")
        return "\n".join(lines)


class _MergedNode:
    __slots__ = ("name", "count", "total_s", "self_s", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.self_s = 0.0
        self.children: List[SpanNode] = []


def _merge_by_name(nodes: List[SpanNode]) -> List[_MergedNode]:
    merged: Dict[str, _MergedNode] = {}
    for node in nodes:
        entry = merged.get(node.name)
        if entry is None:
            entry = merged[node.name] = _MergedNode(node.name)
        entry.count += 1
        entry.total_s += node.dur_s
        entry.self_s += node.self_s
        entry.children.extend(node.children)
    return sorted(merged.values(), key=lambda m: (-m.total_s, m.name))


def _render_level(merged, indent, max_depth, lines) -> None:
    if max_depth is not None and indent > max_depth:
        return
    for entry in merged:
        label = "  " * indent + entry.name
        lines.append(
            f"{label:<40} {entry.count:>6} {entry.total_s:>10.6f} "
            f"{entry.self_s:>10.6f}"
        )
        _render_level(
            _merge_by_name(entry.children), indent + 1, max_depth, lines
        )


def profile_spans(events: Iterable[dict]) -> SpanProfile:
    """Build a :class:`SpanProfile` from trace records.

    ``events`` is any iterable of recorder/sink records (dicts); only
    ``type == "span"`` records participate, so a full mixed trace (span
    + point events) can be passed as-is.
    """
    # Spans awaiting adoption, keyed by depth.  A closing span at depth
    # d adopts everything pending at depth d + 1.
    pending: Dict[int, List[SpanNode]] = {}
    phases: Dict[str, PhaseStats] = {}
    for event in events:
        if event.get("type") != "span":
            continue
        depth = event.get("depth", 0)
        node = SpanNode(
            event.get("name", "?"),
            float(event.get("ts", 0.0)),
            float(event.get("dur_s", 0.0)),
            depth,
            event.get("attrs") or {},
            pending.pop(depth + 1, []),
        )
        pending.setdefault(depth, []).append(node)
        stats = phases.get(node.name)
        if stats is None:
            stats = phases[node.name] = PhaseStats(node.name)
        stats.count += 1
        stats.total_s += node.dur_s
        stats.self_s += node.self_s
    # Roots are depth-0 spans plus any orphans whose parent never closed
    # (truncated trace, or a parent span still open at snapshot time).
    roots: List[SpanNode] = []
    for depth in sorted(pending):
        roots.extend(pending[depth])
    roots.sort(key=lambda node: node.start)
    return SpanProfile(roots, phases)


def profile_trace(path: str) -> SpanProfile:
    """Profile a JSONL trace file written by ``--trace``."""
    from repro.obs.sink import read_jsonl

    return profile_spans(read_jsonl(path))


class TeeSink:
    """Fan one event stream out to several sinks.

    Used by the CLI when ``--trace`` and ``--profile`` are both given:
    the same records feed the JSONL file and the in-memory profiler
    buffer.  Deliberately does *not* implement ``emit_span`` — the
    recorder then falls back to building plain dicts, which every
    wrapped sink accepts.
    """

    def __init__(self, *sinks):
        self.sinks = sinks

    def emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self.sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
