"""Trace sinks: where structured trace events go.

A sink is anything with ``emit(event: dict)`` and ``close()``.  Two
implementations cover every current consumer:

* :class:`ListSink` — in-memory buffer, used by tests and by callers
  that post-process a trace programmatically;
* :class:`JsonlSink` — one JSON object per line (JSON-lines), the
  interchange format of ``--trace FILE`` and the convergence-curve
  tooling described in ``docs/OBSERVABILITY.md``.

Events are plain dicts produced by the recorder; sinks never mutate
them.  ``JsonlSink`` opens lazily so constructing a recorder with a
trace path configured but never used costs nothing.
"""

from __future__ import annotations

import json
import math
import threading
from typing import IO, List, Optional, Union


class ListSink:
    """Buffer events in memory; ``events`` is the list itself."""

    def __init__(self) -> None:
        self.events: List[dict] = []
        self.closed = False

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True

    def by_name(self, name: str) -> List[dict]:
        """The emitted events carrying the given name, in order."""
        return [event for event in self.events if event.get("name") == name]


class JsonlSink:
    """Write events as JSON-lines to a path or an open file object.

    When given a path the file is opened lazily on the first write and
    closed by :meth:`close`; when given a file object the caller keeps
    ownership and ``close`` only flushes.

    Events are *buffered*: ``emit`` serialises the record and appends it
    to an in-memory list, and the file sees one joined write per
    :data:`FLUSH_EVERY` events — one syscall per batch instead of one
    per record, which keeps hot-loop tracing overhead low (see
    BENCH_obs_overhead.json).  The recorder flushes explicitly whenever
    a top-level span closes, so a trace file is complete after every
    engine call, not just at ``close``.
    """

    #: Buffered events before an automatic flush.
    FLUSH_EVERY = 256

    def __init__(self, target: Union[str, IO[str]]):
        self._path: Optional[str] = None
        self._handle: Optional[IO[str]] = None
        self._owns_handle = False
        self._buffer: List[str] = []
        # Racing engines trace from worker threads; the lock keeps a
        # concurrent flush from dropping records appended between its
        # join and clear.  Uncontended cost is far below serialisation.
        self._lock = threading.Lock()
        if isinstance(target, str):
            self._path = target
        else:
            self._handle = target

    def _append(self, line: str) -> None:
        with self._lock:
            self._buffer.append(line)
            if len(self._buffer) < self.FLUSH_EVERY:
                return
        self.flush()

    def emit(self, event: dict) -> None:
        self._append(_serialise(event))

    def emit_span(
        self, ts: float, name: str, dur_s: float, depth: int, attrs
    ) -> None:
        """Span records without the event-dict detour.

        Recorders call this (when a sink provides it) instead of
        building a dict and going through :meth:`emit`; span records
        dominate hot-loop traces, and formatting the fixed shape
        directly saves the dict construction, two ``round`` calls and
        the shape re-detection in ``_serialise``.  The output parses to
        the same record ``emit`` would have produced (timestamps kept
        to nine decimals).  Subclasses that override ``emit`` to filter
        or transform records should override this method too.
        """
        if (
            _memo_plain(name)
            and type(depth) is int
            and math.isfinite(ts)
            and math.isfinite(dur_s)
        ):
            head = (
                '{"ts": %.9f, "type": "span", "name": "%s", '
                '"dur_s": %.9f, "depth": %d' % (ts, name, dur_s, depth)
            )
            if not attrs:
                self._append(head + "}")
                return
            fragment = _attrs_fragment(attrs)
            if fragment is not None:
                self._append(head + ', "attrs": ' + fragment + "}")
                return
        record = {
            "ts": round(ts, 9),
            "type": "span",
            "name": name,
            "dur_s": round(dur_s, 9),
            "depth": depth,
        }
        if attrs:
            record["attrs"] = attrs
        self.emit(record)

    def flush(self) -> None:
        """Write buffered records through to the underlying file."""
        with self._lock:
            if not self._buffer:
                return
            if self._handle is None:
                self._handle = open(self._path, "w")
                self._owns_handle = True
            self._handle.write("\n".join(self._buffer) + "\n")
            # Push through the file object's own buffer too — flush is
            # called per batch / top-level span, not per record, and the
            # contract is that the file is complete between engine calls.
            self._handle.flush()
            self._buffer.clear()

    def close(self) -> None:
        self.flush()
        if self._handle is None:
            return
        if self._owns_handle:
            self._handle.close()
            self._handle = None
        else:
            self._handle.flush()


def _jsonable(value):
    """Last-resort encoder: Fractions and atoms become strings."""
    return str(value)


def _plain(name) -> bool:
    """A string safe to embed in JSON without escaping."""
    return isinstance(name, str) and name.isascii() and not (
        '"' in name or "\\" in name or any(c < " " for c in name)
    )


# Span names verified escape-free; the vocabulary is a few dozen fixed
# metric names, so membership is effectively O(1) after the first span.
_PLAIN_NAMES: set = set()


def _memo_plain(name) -> bool:
    """``_plain`` with memoisation over the small fixed name vocabulary."""
    if name in _PLAIN_NAMES:
        return True
    if _plain(name):
        if len(_PLAIN_NAMES) < 4096:
            _PLAIN_NAMES.add(name)
        return True
    return False


def _attrs_fragment(attrs: dict) -> Optional[str]:
    """``attrs`` as a JSON object literal, or None if any value is odd."""
    parts = []
    for key, value in attrs.items():
        if not _memo_plain(key):
            return None
        kind = type(value)
        if kind is int:
            parts.append('"%s": %d' % (key, value))
        elif kind is float and math.isfinite(value):
            parts.append('"%s": %r' % (key, value))
        elif kind is str and _memo_plain(value):
            parts.append('"%s": "%s"' % (key, value))
        elif value is True or value is False:
            parts.append('"%s": %s' % (key, "true" if value else "false"))
        else:
            return None
    return "{%s}" % ", ".join(parts)


def _serialise(event: dict) -> str:
    """One JSONL record; span records take a hand-formatted fast path.

    Span records dominate hot-loop traces (one per engine call), and
    ``json.dumps`` costs several microseconds per record; formatting
    the fixed shape directly is much cheaper.  Unusual keys, escapable
    strings, or non-scalar attr values fall back to ``json.dumps``, so
    the output is valid JSON either way.
    """
    size = len(event)
    if (
        (size == 5 or (size == 6 and "attrs" in event))
        and event.get("type") == "span"
        and _memo_plain(event.get("name"))
    ):
        ts = event.get("ts")
        dur = event.get("dur_s")
        depth = event.get("depth")
        if (
            type(ts) is float
            and type(dur) is float
            and type(depth) is int
            and math.isfinite(ts)
            and math.isfinite(dur)
        ):
            head = '{"ts": %r, "type": "span", "name": "%s", "dur_s": %r, "depth": %d' % (
                ts,
                event["name"],
                dur,
                depth,
            )
            if size == 5:
                return head + "}"
            attrs = event["attrs"]
            if type(attrs) is dict:
                fragment = _attrs_fragment(attrs)
                if fragment is not None:
                    return head + ', "attrs": ' + fragment + "}"
    return json.dumps(event, default=_jsonable)


def read_jsonl(path: str) -> List[dict]:
    """Parse a JSON-lines trace file back into a list of event dicts."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
