"""Trace sinks: where structured trace events go.

A sink is anything with ``emit(event: dict)`` and ``close()``.  Two
implementations cover every current consumer:

* :class:`ListSink` — in-memory buffer, used by tests and by callers
  that post-process a trace programmatically;
* :class:`JsonlSink` — one JSON object per line (JSON-lines), the
  interchange format of ``--trace FILE`` and the convergence-curve
  tooling described in ``docs/OBSERVABILITY.md``.

Events are plain dicts produced by the recorder; sinks never mutate
them.  ``JsonlSink`` opens lazily so constructing a recorder with a
trace path configured but never used costs nothing.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Union


class ListSink:
    """Buffer events in memory; ``events`` is the list itself."""

    def __init__(self) -> None:
        self.events: List[dict] = []
        self.closed = False

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True

    def by_name(self, name: str) -> List[dict]:
        """The emitted events carrying the given name, in order."""
        return [event for event in self.events if event.get("name") == name]


class JsonlSink:
    """Write events as JSON-lines to a path or an open file object.

    When given a path the file is opened lazily on the first event and
    closed by :meth:`close`; when given a file object the caller keeps
    ownership and ``close`` only flushes.
    """

    def __init__(self, target: Union[str, IO[str]]):
        self._path: Optional[str] = None
        self._handle: Optional[IO[str]] = None
        self._owns_handle = False
        if isinstance(target, str):
            self._path = target
        else:
            self._handle = target

    def emit(self, event: dict) -> None:
        if self._handle is None:
            self._handle = open(self._path, "w")
            self._owns_handle = True
        self._handle.write(json.dumps(event, default=_jsonable) + "\n")

    def close(self) -> None:
        if self._handle is None:
            return
        if self._owns_handle:
            self._handle.close()
            self._handle = None
        else:
            self._handle.flush()


def _jsonable(value):
    """Last-resort encoder: Fractions and atoms become strings."""
    return str(value)


def read_jsonl(path: str) -> List[dict]:
    """Parse a JSON-lines trace file back into a list of event dicts."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
