"""Named metric instruments: counters, gauges, and histograms.

A :class:`Registry` is a flat namespace of instruments, created on
demand by name.  Instruments are deliberately minimal — plain Python
objects with no locking, no label sets, no export protocol — because the
library is single-threaded per computation and the consumers are the
``--stats`` CLI table, :func:`repro.obs.summary` and the benchmark
harness, all of which read a :meth:`Registry.snapshot` dict.

Naming convention (documented in ``docs/OBSERVABILITY.md``): dotted
lower-case paths rooted at the engine, e.g. ``exact.worlds_enumerated``,
``grounding.clauses_kept``, ``karp_luby.samples``.  Span timings land in
histograms named ``<span name>.seconds``.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing integer-or-float total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> Number:
        self.value += amount
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value-wins measurement (e.g. cover weight, formula size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Streaming summary of observed values: count/total/min/max/mean.

    No buckets — the trace sink carries the raw sequence when a caller
    needs a distribution; the histogram is for cheap summaries.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def summary(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class Registry:
    """A namespace of instruments, created on first use.

    A name may hold at most one kind of instrument; asking for the same
    name as a different kind raises ``ValueError`` (catching typos like
    counting into a gauge).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: Dict) -> None:
        for family in (self.counters, self.gauges, self.histograms):
            if family is not kind and name in family:
                raise ValueError(
                    f"instrument name {name!r} already used with a "
                    "different kind"
                )

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            self._check_free(name, self.counters)
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            self._check_free(name, self.gauges)
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            self._check_free(name, self.histograms)
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict view of every instrument, for printing or JSON."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self.counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
