"""Named metric instruments: counters, gauges, and histograms.

A :class:`Registry` is a flat namespace of instruments, created on
demand by name.  Instruments are small plain Python objects with no
label sets and no export protocol; the consumers are the ``--stats``
CLI table, :func:`repro.obs.summary` and the benchmark harness, all of
which read a :meth:`Registry.snapshot` dict.

**Thread safety.**  Since the speculative racing executor landed,
engines emit ``runtime.race.*`` metrics from multiple worker threads at
once, so updates must not lose increments.  Each counter and histogram
carries its own lock (``value += amount`` is *not* atomic in CPython —
the interpreter can switch threads between the load and the store), and
the registry guards instrument creation with a registry-level lock.
Gauges are last-value-wins single stores, which are atomic under the
GIL, so they stay lock-free.  The uncontended-lock cost is a few tens
of nanoseconds per update — negligible next to the f-string and dict
lookups already on the path (tracked by the ``obs.overhead`` benchmark
in ``BENCH_history.jsonl``).

Naming convention (documented in ``docs/OBSERVABILITY.md``): dotted
lower-case paths rooted at the engine, e.g. ``exact.worlds_enumerated``,
``grounding.clauses_kept``, ``karp_luby.samples``.  Span timings land in
histograms named ``<span name>.seconds``.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing integer-or-float total.

    ``inc`` is thread-safe: concurrent increments from racing engine
    threads are serialised by a per-counter lock.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> Number:
        with self._lock:
            self.value += amount
            return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value-wins measurement (e.g. cover weight, formula size).

    A set is a single attribute store — atomic under the GIL — so the
    gauge needs no lock; concurrent writers race benignly to
    last-value-wins, which is the instrument's semantics anyway.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Streaming summary of observed values: count/total/min/max/mean.

    No buckets — the trace sink carries the raw sequence when a caller
    needs a distribution; the histogram is for cheap summaries.
    ``observe`` is thread-safe (one lock per histogram) so the
    count/total/min/max quadruple stays mutually consistent under
    concurrent emission.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def summary(self) -> Dict[str, Optional[float]]:
        with self._lock:
            count = self.count
            total = self.total
            low = self.min
            high = self.max
        return {
            "count": count,
            "total": total,
            "min": low,
            "max": high,
            "mean": total / count if count else None,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class Registry:
    """A namespace of instruments, created on first use.

    A name may hold at most one kind of instrument; asking for the same
    name as a different kind raises ``ValueError`` (catching typos like
    counting into a gauge).

    Creation is guarded by a registry-level lock with a lock-free fast
    path for the common already-exists case, so two threads asking for
    the same new name get the same instrument object.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def _check_free(self, name: str, kind: Dict) -> None:
        for family in (self.counters, self.gauges, self.histograms):
            if family is not kind and name in family:
                raise ValueError(
                    f"instrument name {name!r} already used with a "
                    "different kind"
                )

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.counters.get(name)
                if instrument is None:
                    self._check_free(name, self.counters)
                    instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.gauges.get(name)
                if instrument is None:
                    self._check_free(name, self.gauges)
                    instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self.histograms.get(name)
                if instrument is None:
                    self._check_free(name, self.histograms)
                    instrument = self.histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict view of every instrument, for printing or JSON.

        Instrument dicts are copied under the registry lock so the
        iteration cannot race concurrent creation; the per-instrument
        reads then go through each instrument's own synchronisation.
        """
        with self._lock:
            counters = sorted(self.counters.items())
            gauges = sorted(self.gauges.items())
            histograms = sorted(self.histograms.items())
        return {
            "counters": {name: counter.value for name, counter in counters},
            "gauges": {name: gauge.value for name, gauge in gauges},
            "histograms": {
                name: histogram.summary() for name, histogram in histograms
            },
        }

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
