"""repro.obs — zero-dependency instrumentation for the reliability engines.

The engines (exact world enumeration, grounded-DNF Shannon expansion,
Karp–Luby, Monte-Carlo baselines, lifted inference) report what they do
through this module: named counters and gauges, span timers, and
structured per-batch events that make estimator convergence plottable.

Design:

* One module-level *active recorder*.  The default is a
  :class:`NullRecorder` whose methods are all no-ops, so instrumented
  code costs roughly one function call per site when observability is
  off (measured <5% on the E1 workload; see ``BENCH_obs_overhead.json``).
* Engines call the module-level helpers (:func:`inc`, :func:`gauge`,
  :func:`observe`, :func:`event`, :func:`span`) which delegate to the
  active recorder.  They never hold a recorder reference, so recorder
  swaps take effect immediately.
* Consumers install a :class:`StatsRecorder` — directly, via the
  :func:`use` context manager, or via the CLI's ``--stats`` /
  ``--trace FILE`` flags — and read :func:`summary` or the JSONL trace.

Typical library use::

    from repro import obs

    recorder = obs.StatsRecorder(sink=obs.JsonlSink("trace.jsonl"))
    with obs.use(recorder):
        reliability(db, query)
    print(recorder.summary()["counters"])
    recorder.close()

Metric names and the trace event schema are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Union

from repro.obs.profile import (
    PhaseStats,
    SpanProfile,
    TeeSink,
    profile_spans,
    profile_trace,
)
from repro.obs.recorder import NullRecorder, StatsRecorder
from repro.obs.registry import Counter, Gauge, Histogram, Registry
from repro.obs.sink import JsonlSink, ListSink, read_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "NullRecorder",
    "StatsRecorder",
    "JsonlSink",
    "ListSink",
    "TeeSink",
    "PhaseStats",
    "SpanProfile",
    "profile_spans",
    "profile_trace",
    "read_jsonl",
    "NULL",
    "get_recorder",
    "set_recorder",
    "use",
    "recording",
    "enabled",
    "inc",
    "gauge",
    "observe",
    "event",
    "span",
    "summary",
]

NULL = NullRecorder()
_active = NULL


def get_recorder():
    """The currently active recorder (the NullRecorder by default)."""
    return _active


def set_recorder(recorder) -> object:
    """Install ``recorder`` as the active recorder; returns the previous one.

    Passing ``None`` restores the default :data:`NULL` recorder.
    """
    global _active
    previous = _active
    _active = recorder if recorder is not None else NULL
    return previous


@contextmanager
def use(recorder) -> Iterator[object]:
    """Scope-install a recorder: active inside the block, restored after."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


@contextmanager
def recording(trace: Optional[str] = None) -> Iterator[StatsRecorder]:
    """Convenience: run a block under a fresh :class:`StatsRecorder`.

    ``trace`` names an optional JSONL file for span/event records.  The
    recorder (with its populated registry) is yielded; its sink is
    closed on exit::

        with obs.recording("run.jsonl") as recorder:
            reliability(db, query)
        print(recorder.summary())
    """
    sink = JsonlSink(trace) if trace is not None else None
    recorder = StatsRecorder(sink=sink)
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
        recorder.close()


def enabled() -> bool:
    """True when the active recorder actually records.

    Engines use this to skip *preparing* per-batch trace payloads in hot
    loops; plain counter/span calls do not need the guard.
    """
    return _active.enabled


def inc(name: str, amount=1) -> None:
    """Increment the named counter on the active recorder."""
    _active.inc(name, amount)


def gauge(name: str, value) -> None:
    """Set the named gauge on the active recorder."""
    _active.gauge(name, value)


def observe(name: str, value) -> None:
    """Record one observation into the named histogram."""
    _active.observe(name, value)


def event(name: str, **fields) -> None:
    """Emit a structured point event (JSONL record when tracing)."""
    _active.event(name, **fields)


def span(name: str, **attrs):
    """A context manager timing a block as a (nestable) named span."""
    return _active.span(name, **attrs)


def summary(prefix: str = "") -> Dict[str, Dict]:
    """Snapshot of the active recorder's registry (``{}`` when off).

    ``prefix`` restricts every section (counters, gauges, histograms)
    to metric names starting with it — e.g. ``summary("serve.")`` for
    the serving dashboard.
    """
    snapshot = _active.summary()
    if not prefix:
        return snapshot
    return {
        section: {
            name: value
            for name, value in metrics.items()
            if name.startswith(prefix)
        }
        for section, metrics in snapshot.items()
    }
