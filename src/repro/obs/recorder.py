"""Recorders: the write side of the instrumentation layer.

Two implementations share one duck-typed surface (``inc`` / ``gauge`` /
``observe`` / ``event`` / ``span`` / ``summary``):

* :class:`NullRecorder` — the default.  Every method is a no-op and
  ``span`` returns one shared reusable context manager, so instrumented
  code pays one attribute lookup and one call per site when
  observability is off.
* :class:`StatsRecorder` — aggregates into a :class:`Registry` and,
  when constructed with a sink, emits structured trace events
  (JSON-lines through :class:`repro.obs.sink.JsonlSink`).

Span events are emitted at *exit* (they carry the duration), so in a
trace the innermost span appears before its parent; the ``depth`` field
reconstructs the nesting.  Timestamps are seconds relative to recorder
creation, from a monotonic clock.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.obs.registry import Registry


class _NullSpan:
    """A reusable, re-entrant no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The do-nothing recorder installed by default."""

    enabled = False

    def inc(self, name: str, amount=1) -> None:
        pass

    def gauge(self, name: str, value) -> None:
        pass

    def observe(self, name: str, value) -> None:
        pass

    def event(self, name: str, **fields) -> None:
        pass

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def summary(self) -> Dict[str, Dict]:
        return {}

    def close(self) -> None:
        pass


class _Span:
    """A live span: times a block and reports to its recorder on exit."""

    __slots__ = ("recorder", "name", "attrs", "start", "depth")

    def __init__(self, recorder: "StatsRecorder", name: str, attrs: dict):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.depth = 0

    def __enter__(self) -> "_Span":
        recorder = self.recorder
        self.depth = len(recorder._span_stack)
        recorder._span_stack.append(self.name)
        self.start = recorder._clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        recorder = self.recorder
        duration = recorder._clock() - self.start
        recorder._span_stack.pop()
        recorder._finish_span(self, duration)
        return False


class StatsRecorder:
    """Aggregate metrics into a registry; optionally trace to a sink.

    ``clock`` is injectable for deterministic tests; it must be a
    zero-argument callable returning monotonically nondecreasing seconds.
    """

    enabled = True

    def __init__(self, sink=None, clock: Callable[[], float] = time.perf_counter):
        self.registry = Registry()
        self.sink = sink
        self._clock = clock
        self._epoch = clock()
        self._span_stack: list = []

    # -- aggregation ---------------------------------------------------- #

    def inc(self, name: str, amount=1) -> None:
        self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value) -> None:
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value) -> None:
        self.registry.histogram(name).observe(value)

    # -- tracing -------------------------------------------------------- #

    def _timestamp(self) -> float:
        return self._clock() - self._epoch

    def event(self, name: str, **fields) -> None:
        """A point event; with a sink it becomes one JSONL record."""
        self.registry.counter(f"{name}.events").inc()
        if self.sink is not None:
            self.sink.emit(
                {
                    "ts": round(self._timestamp(), 9),
                    "type": "event",
                    "name": name,
                    "fields": fields,
                }
            )

    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def _finish_span(self, span: _Span, duration: float) -> None:
        self.registry.histogram(f"{span.name}.seconds").observe(duration)
        if self.sink is not None:
            record: Dict[str, Any] = {
                "ts": round(self._timestamp(), 9),
                "type": "span",
                "name": span.name,
                "dur_s": round(duration, 9),
                "depth": span.depth,
            }
            if span.attrs:
                record["attrs"] = span.attrs
            self.sink.emit(record)

    # -- lifecycle ------------------------------------------------------ #

    def summary(self) -> Dict[str, Dict]:
        return self.registry.snapshot()

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()
