"""Recorders: the write side of the instrumentation layer.

Two implementations share one duck-typed surface (``inc`` / ``gauge`` /
``observe`` / ``event`` / ``span`` / ``summary``):

* :class:`NullRecorder` — the default.  Every method is a no-op and
  ``span`` returns one shared reusable context manager, so instrumented
  code pays one attribute lookup and one call per site when
  observability is off.
* :class:`StatsRecorder` — aggregates into a :class:`Registry` and,
  when constructed with a sink, emits structured trace events
  (JSON-lines through :class:`repro.obs.sink.JsonlSink`).

Span events are emitted at *exit* (they carry the duration), so in a
trace the innermost span appears before its parent; the ``depth`` field
reconstructs the nesting.  Timestamps are seconds relative to recorder
creation, from a monotonic clock.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.obs.registry import Registry


class _NullSpan:
    """A reusable, re-entrant no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The do-nothing recorder installed by default."""

    enabled = False

    def inc(self, name: str, amount=1) -> None:
        pass

    def gauge(self, name: str, value) -> None:
        pass

    def observe(self, name: str, value) -> None:
        pass

    def event(self, name: str, **fields) -> None:
        pass

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def summary(self) -> Dict[str, Dict]:
        return {}

    def close(self) -> None:
        pass


class _Span:
    """A live span: times a block and reports to its recorder on exit.

    Exited spans return to a per-recorder free list and are reused by
    the next ``span()`` call — hot loops open thousands of spans and
    the allocation per block is measurable.  The only constraint this
    puts on callers is the natural one: use a span as a ``with`` block
    and do not re-enter it after exit (the object may since have been
    handed out again).
    """

    __slots__ = ("recorder", "name", "attrs", "start", "depth")

    def __init__(self, recorder: "StatsRecorder", name: str, attrs: dict):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.depth = 0

    def __enter__(self) -> "_Span":
        recorder = self.recorder
        state = recorder._span_state
        self.depth = getattr(state, "depth", 0)
        state.depth = self.depth + 1
        self.start = recorder._clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        recorder = self.recorder
        end = recorder._clock()
        recorder._span_state.depth = self.depth
        recorder._finish_span(self, end - self.start, end)
        recorder._span_pool.append(self)
        return False


class StatsRecorder:
    """Aggregate metrics into a registry; optionally trace to a sink.

    ``clock`` is injectable for deterministic tests; it must be a
    zero-argument callable returning monotonically nondecreasing seconds.

    The recorder is safe to share across threads (the racing executor
    emits from its worker threads): counter and histogram updates go
    through the registry's locked instruments, and span nesting depth
    is tracked per thread, so each thread's span tree is internally
    consistent.  The span free list is shared — ``list.append``/``pop``
    are atomic under the GIL, with a guard for the pop-from-emptied
    race.
    """

    enabled = True

    def __init__(self, sink=None, clock: Callable[[], float] = time.perf_counter):
        self.registry = Registry()
        self.sink = sink
        self._clock = clock
        self._epoch = clock()
        self._span_state = threading.local()
        self._span_pool: list = []
        # Span-duration histograms, memoised per span name: hot loops
        # close thousands of spans and the f-string + registry lookup
        # per close is measurable (see BENCH_obs_overhead.json).
        self._span_seconds: Dict[str, Any] = {}
        # Sink capabilities, resolved once: ``emit_span`` is the
        # dict-free span fast path, ``flush`` the buffered-sink drain.
        self._emit_span = getattr(sink, "emit_span", None)
        self._sink_flush = getattr(sink, "flush", None)

    # -- aggregation ---------------------------------------------------- #

    @property
    def _span_depth(self) -> int:
        """The calling thread's current span nesting depth."""
        return getattr(self._span_state, "depth", 0)

    def inc(self, name: str, amount=1) -> None:
        counter = self.registry.counters.get(name)
        if counter is None:
            counter = self.registry.counter(name)
        counter.inc(amount)

    def gauge(self, name: str, value) -> None:
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value) -> None:
        histogram = self.registry.histograms.get(name)
        if histogram is None:
            histogram = self.registry.histogram(name)
        histogram.observe(value)

    # -- tracing -------------------------------------------------------- #

    def _timestamp(self) -> float:
        return self._clock() - self._epoch

    def event(self, name: str, **fields) -> None:
        """A point event; with a sink it becomes one JSONL record."""
        self.registry.counter(f"{name}.events").inc()
        if self.sink is not None:
            self.sink.emit(
                {
                    "ts": round(self._timestamp(), 9),
                    "type": "event",
                    "name": name,
                    "fields": fields,
                }
            )

    def span(self, name: str, **attrs) -> _Span:
        try:
            # pop() is atomic; the except covers two threads draining
            # the last pooled span at once.
            span = self._span_pool.pop()
        except IndexError:
            return _Span(self, name, attrs)
        span.name = name
        span.attrs = attrs
        return span

    def _finish_span(self, span: _Span, duration: float, end: float) -> None:
        histogram = self._span_seconds.get(span.name)
        if histogram is None:
            histogram = self.registry.histogram(f"{span.name}.seconds")
            self._span_seconds[span.name] = histogram
        histogram.observe(duration)
        if self.sink is not None:
            emit_span = self._emit_span
            if emit_span is not None:
                emit_span(end - self._epoch, span.name, duration,
                          span.depth, span.attrs)
            else:
                record: Dict[str, Any] = {
                    "ts": round(end - self._epoch, 9),
                    "type": "span",
                    "name": span.name,
                    "dur_s": round(duration, 9),
                    "depth": span.depth,
                }
                if span.attrs:
                    record["attrs"] = span.attrs
                self.sink.emit(record)
            if span.depth == 0:
                # A top-level span closing means one engine call is
                # complete; push buffered trace records to disk so the
                # file is readable between calls (buffered sinks only).
                flush = self._sink_flush
                if flush is not None:
                    flush()

    # -- lifecycle ------------------------------------------------------ #

    def summary(self) -> Dict[str, Dict]:
        return self.registry.snapshot()

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()
