"""Normal forms: negation normal form, prenex form, DNF matrices.

Theorem 5.4 assumes the matrix of an existential query is in kDNF; this
module supplies the transformations that make any first-order query fit
that shape (NNF, prenex with fresh-variable renaming, distribution to DNF)
together with :func:`matrix_width`, the ``k`` of the resulting kDNF —
the quantity that controls the FPTRAS's polynomial degree.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.logic.fo import (
    And,
    AtomF,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    conj,
    disj,
    free_variables,
    neg,
    substitute,
)
from repro.logic.terms import Var
from repro.util.errors import QueryError


def eliminate_arrows(formula: Formula) -> Formula:
    """Rewrite ``->`` and ``<->`` in terms of ``~``, ``&``, ``|``."""
    if isinstance(formula, (Top, Bottom, AtomF, Eq)):
        return formula
    if isinstance(formula, Not):
        return neg(eliminate_arrows(formula.sub))
    if isinstance(formula, And):
        return conj(*(eliminate_arrows(s) for s in formula.subs))
    if isinstance(formula, Or):
        return disj(*(eliminate_arrows(s) for s in formula.subs))
    if isinstance(formula, Implies):
        return disj(
            neg(eliminate_arrows(formula.left)), eliminate_arrows(formula.right)
        )
    if isinstance(formula, Iff):
        left = eliminate_arrows(formula.left)
        right = eliminate_arrows(formula.right)
        return disj(conj(left, right), conj(neg(left), neg(right)))
    if isinstance(formula, Exists):
        return Exists(formula.variables, eliminate_arrows(formula.sub))
    if isinstance(formula, Forall):
        return Forall(formula.variables, eliminate_arrows(formula.sub))
    raise QueryError(f"unknown formula node {type(formula).__name__}")


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations pushed onto atoms.

    Arrows are eliminated first.  Quantifiers dualise under negation.
    """
    return _nnf(eliminate_arrows(formula), positive=True)


def _nnf(formula: Formula, positive: bool) -> Formula:
    if isinstance(formula, Top):
        return formula if positive else Bottom()
    if isinstance(formula, Bottom):
        return formula if positive else Top()
    if isinstance(formula, (AtomF, Eq)):
        return formula if positive else Not(formula)
    if isinstance(formula, Not):
        return _nnf(formula.sub, not positive)
    if isinstance(formula, And):
        parts = tuple(_nnf(s, positive) for s in formula.subs)
        return conj(*parts) if positive else disj(*parts)
    if isinstance(formula, Or):
        parts = tuple(_nnf(s, positive) for s in formula.subs)
        return disj(*parts) if positive else conj(*parts)
    if isinstance(formula, Exists):
        inner = _nnf(formula.sub, positive)
        return (
            Exists(formula.variables, inner)
            if positive
            else Forall(formula.variables, inner)
        )
    if isinstance(formula, Forall):
        inner = _nnf(formula.sub, positive)
        return (
            Forall(formula.variables, inner)
            if positive
            else Exists(formula.variables, inner)
        )
    raise QueryError(f"unknown formula node {type(formula).__name__}")


class _FreshNames:
    """Claims variable names, renaming only on collision.

    Seeded with the formula's *free* variables; each quantifier claims its
    name when pulled to the prefix, so distinct scopes reusing one name
    get renamed apart while unambiguous names survive untouched.
    """

    def __init__(self, reserved: set, avoid: set):
        self._reserved = {v.name for v in reserved}
        # Names bound somewhere in the formula: renamed-apart variables
        # must not collide with them, or a later substitution could
        # capture.  A quantifier may still claim its own original name.
        self._avoid = {v.name for v in avoid}
        self._counter = 0

    def fresh(self, base: str) -> Var:
        candidate = base
        while candidate in self._reserved or (
            candidate != base and candidate in self._avoid
        ):
            self._counter += 1
            candidate = f"{base}_{self._counter}"
        self._reserved.add(candidate)
        return Var(candidate)


def to_prenex(formula: Formula) -> Tuple[Tuple[Tuple[str, Var], ...], Formula]:
    """Prenex form of an NNF formula.

    Returns ``(prefix, matrix)`` where ``prefix`` is a tuple of
    ``("exists" | "forall", variable)`` pairs (outermost first) and
    ``matrix`` is quantifier-free.  Bound variables are renamed apart so
    pulling quantifiers out is sound.
    """
    nnf = to_nnf(formula)
    names = _FreshNames(free_variables(nnf), set(_all_variables(nnf)))
    prefix: List[Tuple[str, Var]] = []
    matrix = _pull(nnf, prefix, names)
    return tuple(prefix), matrix


def _all_variables(formula: Formula) -> Iterator[Var]:
    if isinstance(formula, AtomF):
        for term in formula.args:
            if isinstance(term, Var):
                yield term
    elif isinstance(formula, Eq):
        for term in (formula.left, formula.right):
            if isinstance(term, Var):
                yield term
    elif isinstance(formula, Not):
        yield from _all_variables(formula.sub)
    elif isinstance(formula, (And, Or)):
        for sub in formula.subs:
            yield from _all_variables(sub)
    elif isinstance(formula, (Exists, Forall)):
        yield from formula.variables
        yield from _all_variables(formula.sub)


def _pull(
    formula: Formula, prefix: List[Tuple[str, Var]], names: _FreshNames
) -> Formula:
    if isinstance(formula, (Top, Bottom, AtomF, Eq)):
        return formula
    if isinstance(formula, Not):
        # NNF: negation sits on an atom.
        return formula
    if isinstance(formula, (And, Or)):
        parts = tuple(_pull(s, prefix, names) for s in formula.subs)
        return conj(*parts) if isinstance(formula, And) else disj(*parts)
    if isinstance(formula, (Exists, Forall)):
        kind = "exists" if isinstance(formula, Exists) else "forall"
        renaming: Dict[Var, Var] = {}
        for var in formula.variables:
            fresh = names.fresh(var.name)
            renaming[var] = fresh
            prefix.append((kind, fresh))
        body = substitute(formula.sub, renaming) if renaming else formula.sub
        return _pull(body, prefix, names)
    raise QueryError(f"unknown formula node {type(formula).__name__}")


def matrix_to_dnf(matrix: Formula) -> Formula:
    """Distribute a quantifier-free NNF matrix into disjunctive normal form.

    The result is an ``Or`` of ``And``s of literals (or a single
    conjunction / literal / constant).  Worst-case exponential in the
    matrix size — but the matrix belongs to the fixed query, not the data,
    so this is a constant for data-complexity purposes (the paper makes
    the same move in Theorem 5.4).
    """
    if isinstance(matrix, (Top, Bottom, AtomF, Eq, Not)):
        return matrix
    if isinstance(matrix, Or):
        return disj(*(matrix_to_dnf(s) for s in matrix.subs))
    if isinstance(matrix, And):
        factor_lists: List[List[Formula]] = []
        for sub in matrix.subs:
            dnf_sub = matrix_to_dnf(sub)
            if isinstance(dnf_sub, Or):
                factor_lists.append(list(dnf_sub.subs))
            else:
                factor_lists.append([dnf_sub])
        disjuncts: List[Formula] = [Top()]
        for factors in factor_lists:
            disjuncts = [
                conj(existing, factor)
                for existing in disjuncts
                for factor in factors
            ]
        return disj(*disjuncts)
    raise QueryError(
        f"matrix_to_dnf expects a quantifier-free NNF formula, got "
        f"{type(matrix).__name__}"
    )


def dnf_clauses(dnf: Formula) -> Tuple[Tuple[Formula, ...], ...]:
    """View a DNF formula as a tuple of clauses, each a tuple of literals."""
    if isinstance(dnf, Bottom):
        return ()
    if isinstance(dnf, Or):
        return tuple(_clause_literals(sub) for sub in dnf.subs)
    return (_clause_literals(dnf),)


def _clause_literals(clause: Formula) -> Tuple[Formula, ...]:
    if isinstance(clause, And):
        return clause.subs
    return (clause,)


def matrix_width(dnf: Formula) -> int:
    """The ``k`` of a kDNF matrix: the largest clause size."""
    clauses = dnf_clauses(dnf)
    if not clauses:
        return 0
    return max(len(clause) for clause in clauses)


def existential_parts(formula: Formula) -> Tuple[Tuple[Var, ...], Formula]:
    """Decompose an existential query into its variables and DNF matrix.

    Raises :class:`QueryError` when the prenex prefix contains a universal
    quantifier — callers use this to enforce Theorem 5.4's precondition.
    """
    prefix, matrix = to_prenex(formula)
    for kind, _var in prefix:
        if kind != "exists":
            raise QueryError(
                "formula is not existential: prenex prefix contains forall"
            )
    variables = tuple(var for _kind, var in prefix)
    return variables, matrix_to_dnf(matrix)
