"""Relational algebra over finite structures, compiled to first-order logic.

The paper's related work (Zimányi; ProbView) phrases queries in
relational algebra; practitioners do too.  This module provides the
classical operators —

* :func:`rel` — a base relation scan,
* :meth:`~RAExpression.select` — selection by column/constant equalities,
* :meth:`~RAExpression.project` — projection (introduces existentials),
* :meth:`~RAExpression.join` — natural join on shared column names,
* :meth:`~RAExpression.rename` — column renaming,
* :meth:`~RAExpression.union`, :meth:`~RAExpression.difference`,
* :meth:`~RAExpression.product` — cartesian product —

with two consumers: direct set-at-a-time evaluation on a
:class:`~repro.relational.structure.Structure`, and compilation to an
equivalent :class:`~repro.logic.evaluator.FOQuery` (tests assert the two
agree), which plugs the whole algebra into every reliability engine in
the library.

Columns are named; an expression's schema is an ordered tuple of column
names.  The compiled formula uses one variable per output column plus
existentials for projected-away columns.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.logic.evaluator import FOQuery
from repro.logic.fo import AtomF, Eq, Formula, conj, disj, exists, neg
from repro.logic.terms import Const, Term, Var
from repro.relational.structure import Structure
from repro.util.errors import QueryError

Row = Tuple[Any, ...]


class RAExpression:
    """Base class: a relational-algebra expression with a named schema."""

    __slots__ = ()

    @property
    def schema(self) -> Tuple[str, ...]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # combinators (fluent API)
    # ------------------------------------------------------------------ #

    def select(self, **equalities: Any) -> "RAExpression":
        """Keep rows where each named column equals the given constant.

        ``expr.select(colour="red", size=3)``; to compare two columns use
        :meth:`select_eq`.
        """
        return Selection(self, tuple(equalities.items()), ())

    def select_eq(self, left: str, right: str) -> "RAExpression":
        """Keep rows where two columns are equal."""
        return Selection(self, (), ((left, right),))

    def project(self, *columns: str) -> "RAExpression":
        """Keep (and reorder to) the named columns."""
        return Projection(self, tuple(columns))

    def rename(self, **mapping: str) -> "RAExpression":
        """Rename columns: ``expr.rename(old="new")``."""
        return Renaming(self, tuple(mapping.items()))

    def join(self, other: "RAExpression") -> "RAExpression":
        """Natural join on all shared column names."""
        return Join(self, other)

    def product(self, other: "RAExpression") -> "RAExpression":
        """Cartesian product; schemas must be disjoint."""
        return Product(self, other)

    def union(self, other: "RAExpression") -> "RAExpression":
        """Set union; schemas must match exactly."""
        return Union_(self, other)

    def difference(self, other: "RAExpression") -> "RAExpression":
        """Set difference; schemas must match exactly."""
        return Difference(self, other)

    # ------------------------------------------------------------------ #
    # consumers
    # ------------------------------------------------------------------ #

    def rows(self, structure: Structure) -> Set[Row]:
        """Evaluate set-at-a-time on a structure."""
        raise NotImplementedError

    def to_formula(self) -> Tuple[Formula, Tuple[Var, ...]]:
        """Compile to ``(formula, free_variable_order)``."""
        counter = count()
        variables = {name: Var(f"c{next(counter)}_{name}") for name in self.schema}
        formula = self._compile(variables, counter)
        return formula, tuple(variables[name] for name in self.schema)

    def to_fo_query(self) -> FOQuery:
        """Compile to an :class:`FOQuery` usable by the reliability layer."""
        formula, order = self.to_formula()
        return FOQuery(formula, order)

    def _compile(self, variables: Dict[str, Var], counter) -> Formula:
        raise NotImplementedError

    # query protocol ---------------------------------------------------- #

    @property
    def arity(self) -> int:
        return len(self.schema)

    def evaluate(self, structure: Structure, args: Sequence[Any] = ()) -> bool:
        if len(args) != self.arity:
            raise QueryError(
                f"expression has arity {self.arity}, got {len(args)} arguments"
            )
        return tuple(args) in self.rows(structure)

    def answers(self, structure: Structure) -> Set[Row]:
        return self.rows(structure)


def rel(name: str, *columns: str) -> "BaseRelation":
    """A base relation scan with named columns."""
    return BaseRelation(name, tuple(columns))


class BaseRelation(RAExpression):
    """Scan of a stored relation, columns named by the caller."""

    __slots__ = ("name", "_schema")

    def __init__(self, name: str, columns: Tuple[str, ...]):
        if len(set(columns)) != len(columns):
            raise QueryError(f"duplicate column names in {columns}")
        self.name = name
        self._schema = columns

    @property
    def schema(self) -> Tuple[str, ...]:
        return self._schema

    def rows(self, structure: Structure) -> Set[Row]:
        stored = structure.relation(self.name)
        if stored and len(next(iter(stored))) != len(self._schema):
            raise QueryError(
                f"relation {self.name!r} has arity "
                f"{len(next(iter(stored)))}, expression names "
                f"{len(self._schema)} columns"
            )
        return set(stored)

    def _compile(self, variables: Dict[str, Var], counter) -> Formula:
        return AtomF(self.name, tuple(variables[c] for c in self._schema))

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self._schema)})"


class Selection(RAExpression):
    """Selection by constant equalities and column-column equalities."""

    __slots__ = ("source", "constants", "pairs")

    def __init__(
        self,
        source: RAExpression,
        constants: Tuple[Tuple[str, Any], ...],
        pairs: Tuple[Tuple[str, str], ...],
    ):
        for column, _value in constants:
            if column not in source.schema:
                raise QueryError(f"unknown column {column!r} in selection")
        for left, right in pairs:
            if left not in source.schema or right not in source.schema:
                raise QueryError(
                    f"unknown column in selection pair ({left}, {right})"
                )
        self.source = source
        self.constants = constants
        self.pairs = pairs

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.source.schema

    def rows(self, structure: Structure) -> Set[Row]:
        index = {name: i for i, name in enumerate(self.schema)}
        result = set()
        for row in self.source.rows(structure):
            if any(row[index[c]] != v for c, v in self.constants):
                continue
            if any(row[index[l]] != row[index[r]] for l, r in self.pairs):
                continue
            result.add(row)
        return result

    def _compile(self, variables: Dict[str, Var], counter) -> Formula:
        inner = self.source._compile(variables, counter)
        guards: List[Formula] = []
        for column, value in self.constants:
            guards.append(Eq(variables[column], Const(value)))
        for left, right in self.pairs:
            guards.append(Eq(variables[left], variables[right]))
        return conj(inner, *guards)

    def __repr__(self) -> str:
        conditions = [f"{c}={v!r}" for c, v in self.constants]
        conditions += [f"{l}={r}" for l, r in self.pairs]
        return f"select[{', '.join(conditions)}]({self.source!r})"


class Projection(RAExpression):
    """Projection onto (and reordering of) named columns."""

    __slots__ = ("source", "columns")

    def __init__(self, source: RAExpression, columns: Tuple[str, ...]):
        missing = [c for c in columns if c not in source.schema]
        if missing:
            raise QueryError(f"unknown columns {missing} in projection")
        if len(set(columns)) != len(columns):
            raise QueryError(f"duplicate columns {columns} in projection")
        self.source = source
        self.columns = columns

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.columns

    def rows(self, structure: Structure) -> Set[Row]:
        index = {name: i for i, name in enumerate(self.source.schema)}
        return {
            tuple(row[index[c]] for c in self.columns)
            for row in self.source.rows(structure)
        }

    def _compile(self, variables: Dict[str, Var], counter) -> Formula:
        inner_vars = dict(variables)
        dropped = []
        for name in self.source.schema:
            if name not in self.columns:
                fresh = Var(f"p{next(counter)}_{name}")
                inner_vars[name] = fresh
                dropped.append(fresh)
        inner = self.source._compile(inner_vars, counter)
        return exists(dropped, inner)

    def __repr__(self) -> str:
        return f"project[{', '.join(self.columns)}]({self.source!r})"


class Renaming(RAExpression):
    """Column renaming."""

    __slots__ = ("source", "mapping")

    def __init__(self, source: RAExpression, mapping: Tuple[Tuple[str, str], ...]):
        table = dict(mapping)
        for old in table:
            if old not in source.schema:
                raise QueryError(f"unknown column {old!r} in rename")
        renamed = tuple(table.get(c, c) for c in source.schema)
        if len(set(renamed)) != len(renamed):
            raise QueryError(f"rename produces duplicate columns {renamed}")
        self.source = source
        self.mapping = mapping

    @property
    def schema(self) -> Tuple[str, ...]:
        table = dict(self.mapping)
        return tuple(table.get(c, c) for c in self.source.schema)

    def rows(self, structure: Structure) -> Set[Row]:
        return self.source.rows(structure)

    def _compile(self, variables: Dict[str, Var], counter) -> Formula:
        table = dict(self.mapping)
        inner_vars = {
            old: variables[table.get(old, old)] for old in self.source.schema
        }
        return self.source._compile(inner_vars, counter)

    def __repr__(self) -> str:
        inner = ", ".join(f"{o}->{n}" for o, n in self.mapping)
        return f"rename[{inner}]({self.source!r})"


class Join(RAExpression):
    """Natural join on shared column names."""

    __slots__ = ("left", "right", "_schema", "_shared")

    def __init__(self, left: RAExpression, right: RAExpression):
        shared = tuple(c for c in left.schema if c in right.schema)
        self.left = left
        self.right = right
        self._shared = shared
        self._schema = left.schema + tuple(
            c for c in right.schema if c not in shared
        )

    @property
    def schema(self) -> Tuple[str, ...]:
        return self._schema

    def rows(self, structure: Structure) -> Set[Row]:
        left_rows = self.left.rows(structure)
        right_rows = self.right.rows(structure)
        left_index = {c: i for i, c in enumerate(self.left.schema)}
        right_index = {c: i for i, c in enumerate(self.right.schema)}
        extra = [c for c in self.right.schema if c not in self._shared]
        # Hash join on the shared columns.
        buckets: Dict[Tuple, List[Row]] = {}
        for row in right_rows:
            key = tuple(row[right_index[c]] for c in self._shared)
            buckets.setdefault(key, []).append(row)
        result = set()
        for row in left_rows:
            key = tuple(row[left_index[c]] for c in self._shared)
            for match in buckets.get(key, ()):
                result.add(row + tuple(match[right_index[c]] for c in extra))
        return result

    def _compile(self, variables: Dict[str, Var], counter) -> Formula:
        return conj(
            self.left._compile(variables, counter),
            self.right._compile(variables, counter),
        )

    def __repr__(self) -> str:
        return f"({self.left!r} |x| {self.right!r})"


class Product(RAExpression):
    """Cartesian product of schema-disjoint expressions."""

    __slots__ = ("left", "right")

    def __init__(self, left: RAExpression, right: RAExpression):
        overlap = set(left.schema) & set(right.schema)
        if overlap:
            raise QueryError(
                f"product schemas overlap on {sorted(overlap)}; "
                "rename or use join"
            )
        self.left = left
        self.right = right

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.left.schema + self.right.schema

    def rows(self, structure: Structure) -> Set[Row]:
        return {
            l + r
            for l in self.left.rows(structure)
            for r in self.right.rows(structure)
        }

    def _compile(self, variables: Dict[str, Var], counter) -> Formula:
        return conj(
            self.left._compile(variables, counter),
            self.right._compile(variables, counter),
        )

    def __repr__(self) -> str:
        return f"({self.left!r} x {self.right!r})"


def _check_same_schema(left: RAExpression, right: RAExpression, op: str):
    if left.schema != right.schema:
        raise QueryError(
            f"{op} needs identical schemas, got {left.schema} vs {right.schema}"
        )


class Union_(RAExpression):
    """Set union of same-schema expressions."""

    __slots__ = ("left", "right")

    def __init__(self, left: RAExpression, right: RAExpression):
        _check_same_schema(left, right, "union")
        self.left = left
        self.right = right

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.left.schema

    def rows(self, structure: Structure) -> Set[Row]:
        return self.left.rows(structure) | self.right.rows(structure)

    def _compile(self, variables: Dict[str, Var], counter) -> Formula:
        return disj(
            self.left._compile(variables, counter),
            self.right._compile(variables, counter),
        )

    def __repr__(self) -> str:
        return f"({self.left!r} U {self.right!r})"


class Difference(RAExpression):
    """Set difference of same-schema expressions."""

    __slots__ = ("left", "right")

    def __init__(self, left: RAExpression, right: RAExpression):
        _check_same_schema(left, right, "difference")
        self.left = left
        self.right = right

    @property
    def schema(self) -> Tuple[str, ...]:
        return self.left.schema

    def rows(self, structure: Structure) -> Set[Row]:
        return self.left.rows(structure) - self.right.rows(structure)

    def _compile(self, variables: Dict[str, Var], counter) -> Formula:
        return conj(
            self.left._compile(variables, counter),
            neg(self.right._compile(variables, counter)),
        )

    def __repr__(self) -> str:
        return f"({self.left!r} - {self.right!r})"
