"""First-order formula AST.

Formulas are immutable and hashable.  Connectives: ``Not``, n-ary ``And``
and ``Or``, ``Implies``, ``Iff``; quantifiers ``Exists`` and ``Forall``
(each binding a block of variables); atomic formulas ``AtomF`` (a relation
applied to terms) and ``Eq`` (term equality); constants ``Top`` and
``Bottom``.

Smart constructors (:func:`conj`, :func:`disj`, :func:`neg`, ...) perform
light simplification — flattening nested conjunctions, absorbing
``Top``/``Bottom`` — which keeps grounded formulas small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from repro.logic.terms import Const, Term, Var, substitute_term
from repro.util.errors import QueryError


class Formula:
    """Base class for first-order formulas."""

    __slots__ = ()

    # Frozen dataclasses with explicit ``__slots__`` have no __dict__
    # and reject setattr, so default pickling fails; the persistent
    # compilation cache (repro.kernels.cache_persist) round-trips
    # formulas through pickle, hence the explicit slot state protocol.
    def __getstate__(self):
        state = {}
        for klass in type(self).__mro__:
            for name in getattr(klass, "__slots__", ()):
                state[name] = getattr(self, name)
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # Convenience operator sugar so queries read naturally in examples:
    def __and__(self, other: "Formula") -> "Formula":
        return conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return disj(self, other)

    def __invert__(self) -> "Formula":
        return neg(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, other)


@dataclass(frozen=True)
class Top(Formula):
    """The true constant."""

    __slots__ = ()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Bottom(Formula):
    """The false constant."""

    __slots__ = ()

    def __str__(self) -> str:
        return "false"


TOP = Top()
BOTTOM = Bottom()


@dataclass(frozen=True)
class AtomF(Formula):
    """An atomic formula ``R(t1, ..., tk)`` with terms as arguments."""

    relation: str
    args: Tuple[Term, ...]

    __slots__ = ("relation", "args")

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.args)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class Eq(Formula):
    """Term equality ``t1 = t2``."""

    left: Term
    right: Term

    __slots__ = ("left", "right")

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    sub: Formula

    __slots__ = ("sub",)

    def __str__(self) -> str:
        return f"~{_paren(self.sub)}"


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction."""

    subs: Tuple[Formula, ...]

    __slots__ = ("subs",)

    def __str__(self) -> str:
        return " & ".join(_paren(s) for s in self.subs)


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction."""

    subs: Tuple[Formula, ...]

    __slots__ = ("subs",)

    def __str__(self) -> str:
        return " | ".join(_paren(s) for s in self.subs)


@dataclass(frozen=True)
class Implies(Formula):
    """Implication ``left -> right``."""

    left: Formula
    right: Formula

    __slots__ = ("left", "right")

    def __str__(self) -> str:
        return f"{_paren(self.left)} -> {_paren(self.right)}"


@dataclass(frozen=True)
class Iff(Formula):
    """Biconditional ``left <-> right``."""

    left: Formula
    right: Formula

    __slots__ = ("left", "right")

    def __str__(self) -> str:
        return f"{_paren(self.left)} <-> {_paren(self.right)}"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over a block of variables."""

    variables: Tuple[Var, ...]
    sub: Formula

    __slots__ = ("variables", "sub")

    def __str__(self) -> str:
        names = " ".join(v.name for v in self.variables)
        return f"exists {names}. {_paren(self.sub)}"


@dataclass(frozen=True)
class Forall(Formula):
    """Universal quantification over a block of variables."""

    variables: Tuple[Var, ...]
    sub: Formula

    __slots__ = ("variables", "sub")

    def __str__(self) -> str:
        names = " ".join(v.name for v in self.variables)
        return f"forall {names}. {_paren(self.sub)}"


def _paren(formula: Formula) -> str:
    if isinstance(formula, (AtomF, Eq, Not, Top, Bottom)):
        return str(formula)
    return f"({formula})"


# ---------------------------------------------------------------------- #
# smart constructors
# ---------------------------------------------------------------------- #


def atom(relation: str, *args: object) -> AtomF:
    """Atomic formula; bare strings become variables, other values constants.

    ``atom("E", "x", "y")`` is ``E(x, y)`` with variables ``x`` and ``y``;
    ``atom("E", "x", Const(3))`` mixes a variable with the element ``3``.
    """
    terms = []
    for arg in args:
        if isinstance(arg, (Var, Const)):
            terms.append(arg)
        elif isinstance(arg, str):
            terms.append(Var(arg))
        else:
            terms.append(Const(arg))
    return AtomF(relation, tuple(terms))


def conj(*formulas: Formula) -> Formula:
    """Flattening conjunction with ``Top``/``Bottom`` absorption."""
    parts = []
    for formula in formulas:
        if isinstance(formula, Bottom):
            return BOTTOM
        if isinstance(formula, Top):
            continue
        if isinstance(formula, And):
            parts.extend(formula.subs)
        else:
            parts.append(formula)
    if not parts:
        return TOP
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def disj(*formulas: Formula) -> Formula:
    """Flattening disjunction with ``Top``/``Bottom`` absorption."""
    parts = []
    for formula in formulas:
        if isinstance(formula, Top):
            return TOP
        if isinstance(formula, Bottom):
            continue
        if isinstance(formula, Or):
            parts.extend(formula.subs)
        else:
            parts.append(formula)
    if not parts:
        return BOTTOM
    if len(parts) == 1:
        return parts[0]
    return Or(tuple(parts))


def neg(formula: Formula) -> Formula:
    """Negation with double-negation and constant elimination."""
    if isinstance(formula, Not):
        return formula.sub
    if isinstance(formula, Top):
        return BOTTOM
    if isinstance(formula, Bottom):
        return TOP
    return Not(formula)


def exists(variables: Iterable[object], sub: Formula) -> Formula:
    """Existential block; strings are promoted to variables."""
    block = tuple(Var(v) if isinstance(v, str) else v for v in variables)
    if not block:
        return sub
    if isinstance(sub, Exists):
        return Exists(block + sub.variables, sub.sub)
    return Exists(block, sub)


def forall(variables: Iterable[object], sub: Formula) -> Formula:
    """Universal block; strings are promoted to variables."""
    block = tuple(Var(v) if isinstance(v, str) else v for v in variables)
    if not block:
        return sub
    if isinstance(sub, Forall):
        return Forall(block + sub.variables, sub.sub)
    return Forall(block, sub)


# ---------------------------------------------------------------------- #
# structural queries
# ---------------------------------------------------------------------- #


def free_variables(formula: Formula) -> FrozenSet[Var]:
    """The free variables of a formula."""
    if isinstance(formula, (Top, Bottom)):
        return frozenset()
    if isinstance(formula, AtomF):
        return frozenset(t for t in formula.args if isinstance(t, Var))
    if isinstance(formula, Eq):
        return frozenset(
            t for t in (formula.left, formula.right) if isinstance(t, Var)
        )
    if isinstance(formula, Not):
        return free_variables(formula.sub)
    if isinstance(formula, (And, Or)):
        result: FrozenSet[Var] = frozenset()
        for sub in formula.subs:
            result |= free_variables(sub)
        return result
    if isinstance(formula, (Implies, Iff)):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.sub) - frozenset(formula.variables)
    raise QueryError(f"unknown formula node {type(formula).__name__}")


def relations_used(formula: Formula) -> FrozenSet[str]:
    """Names of all relation symbols occurring in the formula."""
    if isinstance(formula, AtomF):
        return frozenset({formula.relation})
    if isinstance(formula, (Top, Bottom, Eq)):
        return frozenset()
    if isinstance(formula, Not):
        return relations_used(formula.sub)
    if isinstance(formula, (And, Or)):
        result: FrozenSet[str] = frozenset()
        for sub in formula.subs:
            result |= relations_used(sub)
        return result
    if isinstance(formula, (Implies, Iff)):
        return relations_used(formula.left) | relations_used(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return relations_used(formula.sub)
    raise QueryError(f"unknown formula node {type(formula).__name__}")


def substitute(formula: Formula, binding: Mapping[Var, Term]) -> Formula:
    """Capture-avoiding substitution of terms for free variables.

    Bindings whose targets are constants can never be captured; bindings to
    variables are checked against the quantifier blocks they pass through.
    """
    if not binding:
        return formula
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, AtomF):
        return AtomF(
            formula.relation,
            tuple(substitute_term(t, binding) for t in formula.args),
        )
    if isinstance(formula, Eq):
        return Eq(
            substitute_term(formula.left, binding),
            substitute_term(formula.right, binding),
        )
    if isinstance(formula, Not):
        return Not(substitute(formula.sub, binding))
    if isinstance(formula, And):
        return And(tuple(substitute(s, binding) for s in formula.subs))
    if isinstance(formula, Or):
        return Or(tuple(substitute(s, binding) for s in formula.subs))
    if isinstance(formula, Implies):
        return Implies(
            substitute(formula.left, binding), substitute(formula.right, binding)
        )
    if isinstance(formula, Iff):
        return Iff(
            substitute(formula.left, binding), substitute(formula.right, binding)
        )
    if isinstance(formula, (Exists, Forall)):
        bound = set(formula.variables)
        inner: Dict[Var, Term] = {
            var: term for var, term in binding.items() if var not in bound
        }
        for term in inner.values():
            if isinstance(term, Var) and term in bound:
                raise QueryError(
                    f"substitution would capture variable {term.name!r}"
                )
        cls = type(formula)
        return cls(formula.variables, substitute(formula.sub, inner))
    raise QueryError(f"unknown formula node {type(formula).__name__}")


def instantiate(formula: Formula, values: Mapping[Var, object]) -> Formula:
    """Substitute concrete universe elements for free variables."""
    binding = {var: Const(value) for var, value in values.items()}
    return substitute(formula, binding)


def formula_size(formula: Formula) -> int:
    """Number of AST nodes — used when reporting grounded-formula blowup."""
    if isinstance(formula, (Top, Bottom, AtomF, Eq)):
        return 1
    if isinstance(formula, Not):
        return 1 + formula_size(formula.sub)
    if isinstance(formula, (And, Or)):
        return 1 + sum(formula_size(s) for s in formula.subs)
    if isinstance(formula, (Implies, Iff)):
        return 1 + formula_size(formula.left) + formula_size(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return 1 + formula_size(formula.sub)
    raise QueryError(f"unknown formula node {type(formula).__name__}")
