"""Second-order quantification by brute force.

Second-order queries capture exactly the polynomial-time hierarchy on
finite structures (Fagin/Stockmeyer), which is how Theorem 4.2 extends the
FP^#P upper bound beyond PTIME-evaluable queries.  This module evaluates
second-order prefixes ``(exists|forall) X^arity ...`` over a first-order
body by enumerating all ``2 ** (n ** arity)`` interpretations — usable
only on small universes, which is all the exact FP^#P algorithm of
Theorem 4.2 needs for validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations, product
from typing import Any, Iterable, Iterator, Sequence, Set, Tuple, Union

from repro.logic.evaluator import FOQuery
from repro.logic.fo import Formula
from repro.logic.parser import parse
from repro.relational.schema import RelationSymbol, Vocabulary
from repro.relational.structure import Structure
from repro.util.errors import QueryError

TupleOf = Tuple[Any, ...]


@dataclass(frozen=True)
class SOQuantifier:
    """One second-order quantifier: kind, relation-variable name, arity."""

    kind: str  # "exists" | "forall"
    name: str
    arity: int

    def __post_init__(self) -> None:
        if self.kind not in ("exists", "forall"):
            raise QueryError(f"bad second-order quantifier kind {self.kind!r}")
        if self.arity < 0:
            raise QueryError(f"negative arity for {self.name!r}")


def SOExists(name: str, arity: int) -> SOQuantifier:
    """Existential second-order quantifier over an ``arity``-ary relation."""
    return SOQuantifier("exists", name, arity)


def SOForall(name: str, arity: int) -> SOQuantifier:
    """Universal second-order quantifier over an ``arity``-ary relation."""
    return SOQuantifier("forall", name, arity)


def _all_relations(
    universe: Sequence[Any], arity: int
) -> Iterator[Tuple[TupleOf, ...]]:
    rows = tuple(product(universe, repeat=arity))
    return chain.from_iterable(
        combinations(rows, size) for size in range(len(rows) + 1)
    )


class SOQuery:
    """A second-order query: an SO prefix over a first-order body.

    Example — 3-colourability (a sigma-1-1 query)::

        SOQuery(
            [SOExists("C1", 1), SOExists("C2", 1)],
            "forall x y. E(x, y) -> ~((C1(x) <-> C1(y)) & (C2(x) <-> C2(y)))",
        )

    Evaluation is exponential in ``n ** arity`` per quantifier; the class
    implements the query protocol, so the reliability layer treats it
    uniformly.
    """

    __slots__ = ("prefix", "body", "_fo")

    def __init__(
        self,
        prefix: Iterable[SOQuantifier],
        body: Union[Formula, str],
        free_order: Sequence[str] = (),
    ):
        self.prefix: Tuple[SOQuantifier, ...] = tuple(prefix)
        if isinstance(body, str):
            body = parse(body)
        self.body = body
        names = [q.name for q in self.prefix]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate relation variables in prefix: {names}")
        self._fo = FOQuery(body, free_order or None)

    @property
    def arity(self) -> int:
        return self._fo.arity

    def evaluate(self, structure: Structure, args: Sequence[Any] = ()) -> bool:
        """Truth of the SO query on one tuple."""
        return self._eval(structure, 0, args)

    def _eval(
        self, structure: Structure, depth: int, args: Sequence[Any]
    ) -> bool:
        if depth == len(self.prefix):
            return self._fo.evaluate(structure, args)
        quantifier = self.prefix[depth]
        if quantifier.name in structure.vocabulary:
            raise QueryError(
                f"structure already interprets {quantifier.name!r}"
            )
        extra = Vocabulary([RelationSymbol(quantifier.name, quantifier.arity)])
        want = quantifier.kind == "exists"
        for rows in _all_relations(structure.universe, quantifier.arity):
            expanded = structure.expand(extra, relations={quantifier.name: rows})
            if self._eval(expanded, depth + 1, args) == want:
                return want
        return not want

    def answers(self, structure: Structure) -> Set[TupleOf]:
        """The answer relation (query-protocol method)."""
        result: Set[TupleOf] = set()
        for args in product(structure.universe, repeat=self.arity):
            if self.evaluate(structure, args):
                result.add(args)
        return result

    def __repr__(self) -> str:
        prefix = " ".join(
            f"{q.kind[0].upper()}{q.name}^{q.arity}" for q in self.prefix
        )
        return f"SOQuery({prefix}. {self.body})"


def evaluate_so(
    structure: Structure,
    prefix: Iterable[SOQuantifier],
    body: Union[Formula, str],
    args: Sequence[Any] = (),
) -> bool:
    """One-shot evaluation of a second-order query."""
    return SOQuery(prefix, body).evaluate(structure, args)


def three_colourability() -> SOQuery:
    """NP-complete benchmark query: is the graph 3-colourable?

    Colour classes are encoded by two unary relation variables giving four
    colour codes, with one code (both false) excluded via a third clause —
    here we use two existential unary relations and allow 4 colours minus
    constraints; for exactly three colours we forbid the code (1, 1).
    """
    return SOQuery(
        [SOExists("C1", 1), SOExists("C2", 1)],
        "(forall x. ~(C1(x) & C2(x))) & "
        "(forall x y. E(x, y) -> ~((C1(x) <-> C1(y)) & (C2(x) <-> C2(y))))",
    )
