"""Query languages over finite relational structures.

The paper ranges over a tower of query languages — quantifier-free,
conjunctive, existential/universal, full first-order, Datalog, fixed-point
and second-order.  This subpackage implements all of them:

* :mod:`~repro.logic.fo` — the first-order AST (and the second-order
  extension in :mod:`~repro.logic.so`);
* :mod:`~repro.logic.parser` — a textual syntax, e.g.
  ``"exists x y. E(x, y) & ~S(x)"``;
* :mod:`~repro.logic.evaluator` — evaluation of formulas on structures;
* :mod:`~repro.logic.normalform` — NNF, prenex form, DNF matrices;
* :mod:`~repro.logic.classify` — syntactic fragment detection, which the
  reliability layer uses to dispatch to the right algorithm;
* :mod:`~repro.logic.conjunctive` — conjunctive queries as a first-class
  type (the fragment of Proposition 3.2);
* :mod:`~repro.logic.datalog` — Datalog with semi-naive evaluation (the
  PTIME queries of Theorem 5.12);
* :mod:`~repro.logic.fixpoint` — inflationary fixed-point queries;
* :mod:`~repro.logic.so` — second-order quantification by brute force
  (the language of Theorem 4.2).
"""

from repro.logic.terms import Var, Const, Term
from repro.logic.fo import (
    Formula,
    AtomF,
    Eq,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Exists,
    Forall,
    Top,
    Bottom,
)
from repro.logic.parser import parse
from repro.logic.evaluator import evaluate, answers, FOQuery
from repro.logic.classify import (
    is_quantifier_free,
    is_existential,
    is_universal,
    is_conjunctive,
    classify,
)
from repro.logic.conjunctive import ConjunctiveQuery
from repro.logic.safety import (
    SafeVerdict,
    UnsafeVerdict,
    classify_dichotomy,
)
from repro.logic.datalog import DatalogProgram, DatalogQuery, Rule
from repro.logic.fixpoint import FixpointQuery
from repro.logic.so import SOExists, SOForall, evaluate_so
from repro.logic.algebra import rel, RAExpression

__all__ = [
    "Var",
    "Const",
    "Term",
    "Formula",
    "AtomF",
    "Eq",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Exists",
    "Forall",
    "Top",
    "Bottom",
    "parse",
    "evaluate",
    "answers",
    "FOQuery",
    "is_quantifier_free",
    "is_existential",
    "is_universal",
    "is_conjunctive",
    "classify",
    "ConjunctiveQuery",
    "SafeVerdict",
    "UnsafeVerdict",
    "classify_dichotomy",
    "DatalogProgram",
    "DatalogQuery",
    "Rule",
    "FixpointQuery",
    "SOExists",
    "SOForall",
    "evaluate_so",
    "rel",
    "RAExpression",
]
