"""Inflationary fixed-point queries.

Theorem 4.2's FP^#P upper bound covers "all fixed point queries"; this
module makes that concrete.  A :class:`FixpointQuery` repeatedly evaluates
a first-order formula ``phi(X, x1..xk)`` with a free ``k``-ary relation
variable ``X``, adding every satisfying tuple to ``X`` until nothing
changes (the inflationary fixed point), then answers from the final
relation.

The relation variable is threaded through as an ordinary relation symbol
in an expanded structure, so the plain FO evaluator does the work.
"""

from __future__ import annotations

from typing import Any, Sequence, Set, Tuple, Union

from repro.logic.evaluator import FOQuery, all_tuples
from repro.logic.fo import Formula, relations_used
from repro.logic.parser import parse
from repro.relational.schema import RelationSymbol, Vocabulary
from repro.relational.structure import Structure
from repro.util.errors import QueryError

TupleOf = Tuple[Any, ...]


class FixpointQuery:
    """The inflationary fixed point of a first-order operator.

    ``formula`` must mention the relation name ``fixpoint_relation`` (the
    recursion variable ``X``) and have exactly ``arity`` free first-order
    variables, in ``free_order``.  Example — transitive closure::

        FixpointQuery(
            "E(x, y) | (exists z. X(x, z) & E(z, y))",
            fixpoint_relation="X",
            free_order=("x", "y"),
        )

    Evaluation is polynomial: the relation grows monotonically, so at most
    ``n**arity`` rounds each costing one FO evaluation pass.  The class
    implements the query protocol (``arity``/``evaluate``/``answers``).
    """

    __slots__ = ("query", "fixpoint_relation")

    def __init__(
        self,
        formula: Union[Formula, str],
        fixpoint_relation: str = "X",
        free_order: Sequence[str] = (),
    ):
        if isinstance(formula, str):
            formula = parse(formula)
        if fixpoint_relation not in relations_used(formula):
            raise QueryError(
                f"formula does not mention the fixpoint relation "
                f"{fixpoint_relation!r}"
            )
        self.query = FOQuery(formula, free_order or None)
        self.fixpoint_relation = fixpoint_relation
        if self.query.arity == 0:
            raise QueryError("fixpoint queries must have arity at least 1")

    @property
    def arity(self) -> int:
        return self.query.arity

    def _expanded(self, structure: Structure, current: Set[TupleOf]) -> Structure:
        extra = Vocabulary([RelationSymbol(self.fixpoint_relation, self.arity)])
        return structure.expand(extra, relations={self.fixpoint_relation: current})

    def answers(self, structure: Structure) -> Set[TupleOf]:
        """The inflationary fixed point, fully materialised."""
        if self.fixpoint_relation in structure.vocabulary:
            raise QueryError(
                f"structure already interprets {self.fixpoint_relation!r}"
            )
        current: Set[TupleOf] = set()
        while True:
            expanded = self._expanded(structure, current)
            derived = self.query.answers(expanded)
            merged = current | derived
            if merged == current:
                return current
            current = merged

    def evaluate(self, structure: Structure, args: Sequence[Any] = ()) -> bool:
        if len(args) != self.arity:
            raise QueryError(
                f"query has arity {self.arity}, got {len(args)} arguments"
            )
        return tuple(args) in self.answers(structure)

    def __repr__(self) -> str:
        return (
            f"FixpointQuery(X={self.fixpoint_relation!r}, "
            f"{self.query.formula})"
        )
