"""The Dalvi–Suciu dichotomy as a *static* query classifier.

Proposition 3.2 makes conjunctive-query reliability #P-hard in general,
but the dichotomy theorem (Dalvi–Suciu, "The Dichotomy of Conjunctive
Queries on Probabilistic Structures") splits the self-join-free Boolean
CQs exactly in two:

* **safe** — the variable structure is *hierarchical* (for any two
  variables, the sets of atoms containing them are nested or disjoint):
  the probability factorises along a safe plan and is computable in
  polynomial time;
* **unsafe** — any witness of non-hierarchy (a variable pair whose atom
  sets overlap without nesting) makes the query #P-complete.

:func:`classify_dichotomy` decides this *before* any engine runs and
returns a verdict object carrying a checkable witness: the hierarchy
tree (the safe plan itself) for safe queries, the offending variable
pair or self-join for unsafe ones.  Queries outside the self-join-free
Boolean-CQ fragment get an out-of-fragment verdict naming the reason —
the dichotomy simply does not speak about them and the runtime falls
through to the general chain.

The classifier is load-bearing: the executor's ``safe_lifted`` tier and
the racing/serve routers trust a ``safe`` verdict to mean "the lifted
plan terminates with the exact answer".  Its agreement with the
brute-force hierarchy oracle and with the lifted engine itself is
pinned by ``tests/logic/test_safety_differential.py``.

``classify_dichotomy`` never raises: malformed input becomes an
out-of-fragment verdict with the parse error as detail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.logic.conjunctive import ConjunctiveQuery
from repro.logic.classify import is_conjunctive
from repro.logic.evaluator import FOQuery
from repro.logic.fo import AtomF, Eq, Formula
from repro.logic.parser import parse
from repro.logic.terms import Var
from repro.util.errors import QueryError

__all__ = [
    "PlanNode",
    "SafeVerdict",
    "UnsafeVerdict",
    "Verdict",
    "classify_dichotomy",
    "hierarchy_oracle",
]

#: Unsafe reasons, in the order the classifier checks them.
#: ``non_hierarchical`` is the only *hard* verdict (provably
#: #P-complete by the dichotomy); the others mark queries the
#: dichotomy does not speak about.
UNSAFE_REASONS: Tuple[str, ...] = (
    "not_first_order",
    "not_boolean",
    "not_conjunctive",
    "equality",
    "self_join",
    "non_hierarchical",
)


@dataclass(frozen=True)
class PlanNode:
    """One node of the hierarchy tree — the safe plan as a witness.

    ``kind`` is ``"atom"`` (a leaf: one relational atom), ``"join"``
    (independent product of components and ground atoms) or
    ``"project"`` (independent project over the root ``variable``).
    The tree mirrors the recursion of
    :func:`repro.reliability.lifted.lifted_probability` exactly, so a
    safe verdict *is* the plan the engine will execute.
    """

    kind: str
    variable: Optional[str] = None
    atom: Optional[str] = None
    children: Tuple["PlanNode", ...] = ()

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.kind == "atom":
            return f"{pad}{self.atom}"
        if self.kind == "project":
            lines = [f"{pad}project {self.variable} (independent over the domain):"]
            lines.extend(child.render(indent + 1) for child in self.children)
            return "\n".join(lines)
        if not self.children:
            return f"{pad}join (empty body: always true)"
        lines = [f"{pad}join (independent components):"]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)


@dataclass(frozen=True)
class SafeVerdict:
    """The query is safe: PTIME by the lifted plan in ``plan``."""

    plan: PlanNode
    atoms: Tuple[str, ...] = ()

    safe = True
    hard = False
    reason = "safe"

    def summary(self) -> str:
        return (
            "safe: hierarchical self-join-free Boolean CQ "
            "(Dalvi-Suciu dichotomy: PTIME lifted plan)"
        )

    def explain(self) -> str:
        lines = [self.summary(), "hierarchy tree:"]
        lines.append(self.plan.render(1))
        return "\n".join(lines)


@dataclass(frozen=True)
class UnsafeVerdict:
    """The query has no safe plan, with a checkable witness.

    ``reason`` is one of :data:`UNSAFE_REASONS`.  For
    ``non_hierarchical`` the witness is ``(x, y, atoms_x, atoms_y)`` —
    a variable pair whose atom-occurrence sets overlap without nesting
    (re-checkable: ``atoms_x & atoms_y`` non-empty, neither a subset of
    the other); this is the #P-hardness certificate.  For ``self_join``
    the witness is ``(relation, atom_a, atom_b)``.  Out-of-fragment
    reasons carry an empty witness and a human-readable ``detail``.
    """

    reason: str
    detail: str = ""
    witness: Tuple[str, ...] = ()
    occurrences: Tuple[Tuple[str, ...], Tuple[str, ...]] = ((), ())

    safe = False

    @property
    def hard(self) -> bool:
        """True when the verdict certifies #P-completeness."""
        return self.reason == "non_hierarchical"

    def summary(self) -> str:
        if self.reason == "non_hierarchical":
            x, y = self.witness[0], self.witness[1]
            return (
                f"unsafe: variables {x} and {y} overlap without nesting "
                "(#P-complete by the Dalvi-Suciu dichotomy)"
            )
        if self.reason == "self_join":
            return (
                f"unsafe: relation {self.witness[0]} occurs in two atoms "
                "(self-join: outside the dichotomy's fragment, "
                "#P-hard in general by Prop 3.2)"
            )
        return f"out of fragment ({self.reason}): {self.detail}"

    def explain(self) -> str:
        lines = [self.summary()]
        if self.reason == "non_hierarchical":
            x, y = self.witness[0], self.witness[1]
            ax, ay = self.occurrences
            lines.append(f"  atoms({x}) = {{{', '.join(ax)}}}")
            lines.append(f"  atoms({y}) = {{{', '.join(ay)}}}")
            lines.append(
                "  the sets intersect but neither contains the other, "
                "so no safe plan exists"
            )
        elif self.reason == "self_join":
            lines.append(
                f"  offending atoms: {self.witness[1]} and {self.witness[2]}"
            )
        lines.append("routing: falls through to the general engine chain")
        return "\n".join(lines)


Verdict = Union[SafeVerdict, UnsafeVerdict]


# ---------------------------------------------------------------------- #
# classification
# ---------------------------------------------------------------------- #


def _coerce(query) -> Union[ConjunctiveQuery, UnsafeVerdict]:
    """Normalise any query-like object to a Boolean CQ or a verdict."""
    if isinstance(query, str):
        try:
            query = parse(query)
        except Exception as exc:  # parse errors: out of fragment, not a crash
            return UnsafeVerdict("not_first_order", str(exc))
    if isinstance(query, FOQuery):
        if query.arity != 0:
            return UnsafeVerdict(
                "not_boolean",
                f"query has arity {query.arity}; the dichotomy is about "
                "Boolean queries — instantiate free variables first",
            )
        query = query.formula
    if isinstance(query, Formula):
        if not is_conjunctive(query):
            return UnsafeVerdict(
                "not_conjunctive", "the formula is not a conjunctive query"
            )
        try:
            query = ConjunctiveQuery.from_formula(query)
        except QueryError as exc:
            return UnsafeVerdict("not_conjunctive", str(exc))
    if not isinstance(query, ConjunctiveQuery):
        return UnsafeVerdict(
            "not_first_order",
            f"cannot classify a {type(query).__name__}; the dichotomy is "
            "about conjunctive queries",
        )
    if query.arity != 0:
        return UnsafeVerdict(
            "not_boolean",
            f"query has arity {query.arity}; the dichotomy is about "
            "Boolean queries — instantiate free variables first",
        )
    return query


def _atom_vars(atom: AtomF) -> FrozenSet[Var]:
    return frozenset(t for t in atom.args if isinstance(t, Var))


def _components(
    items: List[Tuple[str, FrozenSet[Var]]]
) -> List[List[Tuple[str, FrozenSet[Var]]]]:
    """Variable-connected components of ``(label, vars)`` pairs."""
    remaining = list(items)
    components: List[List[Tuple[str, FrozenSet[Var]]]] = []
    while remaining:
        seed = remaining.pop()
        component = [seed]
        variables = set(seed[1])
        changed = True
        while changed:
            changed = False
            still = []
            for item in remaining:
                if item[1] & variables:
                    component.append(item)
                    variables |= item[1]
                    changed = True
                else:
                    still.append(item)
            remaining = still
        components.append(component)
    return components


def _build_tree(items: List[Tuple[str, FrozenSet[Var]]]) -> PlanNode:
    """The hierarchy tree of a hierarchical atom set.

    Mirrors the lifted recursion symbolically: ground-at-this-level
    atoms become leaves, variable-connected components become
    independent-project nodes over their root variable (the variable in
    *every* atom of the component — guaranteed to exist because the
    caller verified hierarchy).
    """
    ground = [item for item in items if not item[1]]
    open_items = [item for item in items if item[1]]
    nodes: List[PlanNode] = [
        PlanNode("atom", atom=label) for label, _ in ground
    ]
    for component in sorted(_components(open_items), key=lambda c: c[0][0]):
        shared = set(component[0][1])
        for _, variables in component[1:]:
            shared &= variables
        root = sorted(shared)[0]  # non-empty: the hierarchy check passed
        child_items = [
            (label, variables - {root}) for label, variables in component
        ]
        nodes.append(
            PlanNode(
                "project",
                variable=root.name,
                children=(_build_tree(child_items),),
            )
        )
    if len(nodes) == 1:
        return nodes[0]
    return PlanNode("join", children=tuple(nodes))


def classify_dichotomy(query) -> Verdict:
    """Decide the Dalvi–Suciu dichotomy for ``query``, statically.

    Accepts a :class:`~repro.logic.conjunctive.ConjunctiveQuery`, a
    :class:`~repro.logic.evaluator.FOQuery`, a
    :class:`~repro.logic.fo.Formula`, or query text.  Returns a
    :class:`SafeVerdict` (with the hierarchy tree as witness) or an
    :class:`UnsafeVerdict` (with the offending variable pair, the
    self-join, or the out-of-fragment reason).  Never raises.
    """
    coerced = _coerce(query)
    if isinstance(coerced, UnsafeVerdict):
        return coerced
    cq = coerced

    atoms: List[AtomF] = []
    for part in cq.body:
        if isinstance(part, Eq):
            return UnsafeVerdict(
                "equality",
                "equality atoms are outside the lifted fragment; "
                "substitute them away first",
            )
        atoms.append(part)
    # Duplicate atoms are one event; distinct atoms sharing a relation
    # are a self-join (the fragment boundary).
    atoms = list(dict.fromkeys(atoms))
    seen = {}
    for atom in atoms:
        if atom.relation in seen:
            return UnsafeVerdict(
                "self_join",
                f"relation {atom.relation} occurs more than once",
                witness=(atom.relation, str(seen[atom.relation]), str(atom)),
            )
        seen[atom.relation] = atom

    occurrences: dict = {}
    for index, atom in enumerate(atoms):
        for variable in _atom_vars(atom):
            occurrences.setdefault(variable, set()).add(index)
    variables = sorted(occurrences)
    for i, x in enumerate(variables):
        for y in variables[i + 1 :]:
            sx, sy = occurrences[x], occurrences[y]
            if sx & sy and not (sx <= sy or sy <= sx):
                return UnsafeVerdict(
                    "non_hierarchical",
                    f"atom sets of {x.name} and {y.name} overlap "
                    "without nesting",
                    witness=(
                        x.name,
                        y.name,
                        tuple(str(atoms[k]) for k in sorted(sx)),
                        tuple(str(atoms[k]) for k in sorted(sy)),
                    ),
                    occurrences=(
                        tuple(str(atoms[k]) for k in sorted(sx)),
                        tuple(str(atoms[k]) for k in sorted(sy)),
                    ),
                )

    items = [(str(atom), _atom_vars(atom)) for atom in atoms]
    return SafeVerdict(
        plan=_build_tree(items), atoms=tuple(str(a) for a in atoms)
    )


def hierarchy_oracle(atom_variable_sets: Sequence[FrozenSet[str]]) -> bool:
    """Brute-force hierarchy check over raw variable sets (test oracle).

    ``atom_variable_sets[i]`` is the set of variable names in atom
    ``i``.  Returns True iff for every variable pair the occurrence
    sets are nested or disjoint — the textbook definition, computed
    with no shared code paths with :func:`classify_dichotomy` (the
    differential suite pins their agreement).
    """
    occurrences: dict = {}
    for index, names in enumerate(atom_variable_sets):
        for name in names:
            occurrences.setdefault(name, set()).add(index)
    names = list(occurrences)
    for i, x in enumerate(names):
        for y in names[i + 1 :]:
            sx, sy = occurrences[x], occurrences[y]
            if sx & sy and not (sx <= sy or sy <= sx):
                return False
    return True
