"""Conjunctive queries as a first-class type.

Conjunctive queries — ``exists x1 ... xk. (a1 & ... & al)`` with atomic
conjuncts — are the smallest fragment the paper proves hard
(Proposition 3.2).  :class:`ConjunctiveQuery` stores the body as a list of
atoms, validates the shape on construction, and converts to/from the
generic :class:`~repro.logic.evaluator.FOQuery` representation.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Set, Tuple, Union

from repro.logic.evaluator import FOQuery
from repro.logic.fo import (
    AtomF,
    Eq,
    Exists,
    Formula,
    And,
    Top,
    conj,
    exists,
    free_variables,
)
from repro.logic.parser import parse
from repro.logic.terms import Const, Term, Var
from repro.relational.structure import Structure
from repro.util.errors import QueryError


class ConjunctiveQuery:
    """An existentially quantified conjunction of atoms.

    Construct from atoms directly::

        from repro.logic.fo import atom
        cq = ConjunctiveQuery(
            head=("x",),
            body=[atom("E", "x", "y"), atom("S", "y")],
        )

    or from text (which must parse to a conjunctive formula)::

        cq = ConjunctiveQuery.from_text("exists y. E(x, y) & S(y)", head=("x",))

    ``head`` lists the free (answer) variables; every variable in the body
    not in the head is existentially quantified.
    """

    __slots__ = ("head", "body")

    def __init__(
        self,
        head: Sequence[Union[Var, str]],
        body: Iterable[Formula],
    ):
        self.head: Tuple[Var, ...] = tuple(
            Var(v) if isinstance(v, str) else v for v in head
        )
        atoms = []
        for part in body:
            if not isinstance(part, (AtomF, Eq)):
                raise QueryError(
                    "conjunctive query bodies may contain only atoms and "
                    f"equalities, got {type(part).__name__}"
                )
            atoms.append(part)
        self.body: Tuple[Formula, ...] = tuple(atoms)
        body_vars = free_variables(conj(*self.body)) if self.body else frozenset()
        missing = set(self.head) - set(body_vars)
        if missing:
            names = sorted(v.name for v in missing)
            raise QueryError(f"head variables {names} do not occur in the body")

    # ------------------------------------------------------------------ #

    @classmethod
    def from_text(
        cls, source: str, head: Optional[Sequence[Union[Var, str]]] = None
    ) -> "ConjunctiveQuery":
        """Parse a textual conjunctive query."""
        formula = parse(source)
        return cls.from_formula(formula, head)

    @classmethod
    def from_formula(
        cls,
        formula: Formula,
        head: Optional[Sequence[Union[Var, str]]] = None,
    ) -> "ConjunctiveQuery":
        """Convert a conjunctive-shaped formula; reject anything else."""
        body = formula
        while isinstance(body, Exists):
            body = body.sub
        if isinstance(body, (AtomF, Eq)):
            parts: Tuple[Formula, ...] = (body,)
        elif isinstance(body, And):
            parts = body.subs
        elif isinstance(body, Top):
            parts = ()
        else:
            raise QueryError(
                f"formula is not conjunctive: body is {type(body).__name__}"
            )
        if head is None:
            head = tuple(sorted(free_variables(formula)))
        return cls(head, parts)

    # ------------------------------------------------------------------ #

    @property
    def arity(self) -> int:
        return len(self.head)

    @property
    def existential_variables(self) -> Tuple[Var, ...]:
        """Body variables not in the head, sorted by name."""
        body_vars = free_variables(conj(*self.body)) if self.body else frozenset()
        return tuple(sorted(body_vars - set(self.head)))

    def to_formula(self) -> Formula:
        """The equivalent first-order formula."""
        return exists(self.existential_variables, conj(*self.body))

    def to_fo_query(self) -> FOQuery:
        """The equivalent :class:`FOQuery` (same free-variable order)."""
        return FOQuery(self.to_formula(), self.head)

    def evaluate(self, structure: Structure, args: Sequence[Any] = ()) -> bool:
        """Truth of the query on one tuple (query-protocol method)."""
        return self.to_fo_query().evaluate(structure, args)

    def answers(self, structure: Structure) -> Set[Tuple[Any, ...]]:
        """The answer relation (query-protocol method)."""
        return self.to_fo_query().answers(structure)

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.head)
        body = " & ".join(str(a) for a in self.body)
        return f"ConjunctiveQuery([{names}] <- {body})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self.head == other.head and self.body == other.body

    def __hash__(self) -> int:
        return hash((self.head, self.body))


def hardness_query() -> ConjunctiveQuery:
    """The Boolean conjunctive query of Proposition 3.2.

    ``exists x y z. L(x, y) & R(x, z) & S(y) & S(z)`` — on a structure
    encoding a monotone 2-CNF formula plus an assignment ``S``, it says
    the assignment *falsifies* some clause.  Its expected error equals the
    fraction of satisfying assignments, which makes computing it
    #P-hard.
    """
    from repro.logic.fo import atom

    return ConjunctiveQuery(
        head=(),
        body=[
            atom("L", "x", "y"),
            atom("R", "x", "z"),
            atom("S", "y"),
            atom("S", "z"),
        ],
    )
