"""Recursive-descent parser for a textual first-order query syntax.

Grammar (lowest to highest precedence)::

    formula     := quantified
    quantified  := ("exists" | "forall") var+ "." quantified | iff
    iff         := implies ("<->" implies)*
    implies     := or ("->" implies)?          (right associative)
    or          := and ("|" and)*
    and         := unary ("&" unary)*
    unary       := "~" unary | "true" | "false" | "(" formula ")" | atom | eq
    atom        := NAME "(" term ("," term)* ")" | NAME "(" ")"
    eq          := term "=" term | term "!=" term
    term        := NAME (a variable)  |  NUMBER or 'quoted' (a constant)

Variable names are lower-case identifiers; relation names may be any
identifier (the parser distinguishes them by position).  Numbers and
single-quoted tokens are constants.  Examples::

    parse("exists x y. E(x, y) & S(y)")
    parse("forall x. P(x) -> exists y. E(x, y)")
    parse("R(x) & x != 'a'")
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from repro.logic.fo import (
    BOTTOM,
    TOP,
    AtomF,
    Eq,
    Formula,
    conj,
    disj,
    exists,
    forall,
    neg,
)
from repro.logic.terms import Const, Term, Var
from repro.util.errors import QueryError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow2><->)
  | (?P<arrow>->)
  | (?P<neq>!=)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<number>-?\d+)
  | (?P<string>'[^']*')
  | (?P<punct>[().,&|~=])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"exists", "forall", "true", "false"}


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    index = 0
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if match is None:
            raise QueryError(
                f"syntax error at position {index}: {source[index:index + 10]!r}"
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), index))
        index = match.end()
    return tokens


class _Parser:
    def __init__(self, source: str):
        self._source = source
        self._tokens = _tokenize(source)
        self._pos = 0

    # -- token helpers -------------------------------------------------- #

    def _peek(self) -> Optional[_Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryError(f"unexpected end of query: {self._source!r}")
        self._pos += 1
        return token

    def _expect(self, text: str) -> None:
        token = self._next()
        if token.text != text:
            raise QueryError(
                f"expected {text!r} at position {token.position}, got {token.text!r}"
            )

    def _accept(self, text: str) -> bool:
        token = self._peek()
        if token is not None and token.text == text:
            self._pos += 1
            return True
        return False

    # -- grammar -------------------------------------------------------- #

    def parse(self) -> Formula:
        formula = self._quantified()
        leftover = self._peek()
        if leftover is not None:
            raise QueryError(
                f"trailing input at position {leftover.position}: {leftover.text!r}"
            )
        return formula

    def _quantified(self) -> Formula:
        token = self._peek()
        if token is not None and token.text in ("exists", "forall"):
            self._next()
            variables: List[str] = []
            while True:
                name = self._peek()
                if name is None or name.kind != "name" or name.text in _KEYWORDS:
                    break
                variables.append(self._next().text)
            if not variables:
                raise QueryError(
                    f"quantifier at position {token.position} binds no variables"
                )
            self._expect(".")
            body = self._quantified()
            maker = exists if token.text == "exists" else forall
            return maker(variables, body)
        return self._iff()

    def _iff(self) -> Formula:
        left = self._implies()
        while self._accept("<->"):
            right = self._implies()
            from repro.logic.fo import Iff

            left = Iff(left, right)
        return left

    def _implies(self) -> Formula:
        left = self._or()
        if self._accept("->"):
            right = self._implies()
            from repro.logic.fo import Implies

            return Implies(left, right)
        return left

    def _or(self) -> Formula:
        parts = [self._and()]
        while self._accept("|"):
            parts.append(self._and())
        return disj(*parts) if len(parts) > 1 else parts[0]

    def _and(self) -> Formula:
        parts = [self._unary()]
        while self._accept("&"):
            parts.append(self._unary())
        return conj(*parts) if len(parts) > 1 else parts[0]

    def _unary(self) -> Formula:
        if self._accept("~"):
            return neg(self._unary())
        token = self._peek()
        if token is None:
            raise QueryError(f"unexpected end of query: {self._source!r}")
        if token.text == "(":
            self._next()
            inner = self._quantified()
            self._expect(")")
            return inner
        if token.text == "true":
            self._next()
            return TOP
        if token.text == "false":
            self._next()
            return BOTTOM
        if token.kind == "name" and token.text in ("exists", "forall"):
            return self._quantified()
        # Atom `R(...)` or equality `t = t` / `t != t`.
        if token.kind == "name" and self._lookahead_is("("):
            return self._atom()
        return self._equality()

    def _lookahead_is(self, text: str) -> bool:
        nxt = self._pos + 1
        return nxt < len(self._tokens) and self._tokens[nxt].text == text

    def _atom(self) -> Formula:
        name = self._next().text
        self._expect("(")
        args: List[Term] = []
        if not self._accept(")"):
            args.append(self._term())
            while self._accept(","):
                args.append(self._term())
            self._expect(")")
        return AtomF(name, tuple(args))

    def _equality(self) -> Formula:
        left = self._term()
        token = self._peek()
        if token is None or token.text not in ("=", "!="):
            raise QueryError(
                f"expected '=' or '!=' in equality near {self._source!r}"
            )
        self._next()
        right = self._term()
        equality: Formula = Eq(left, right)
        return equality if token.text == "=" else neg(equality)

    def _term(self) -> Term:
        token = self._next()
        if token.kind == "number":
            return Const(int(token.text))
        if token.kind == "string":
            return Const(token.text[1:-1])
        if token.kind == "name":
            if token.text in _KEYWORDS:
                raise QueryError(
                    f"keyword {token.text!r} cannot be used as a term "
                    f"(position {token.position})"
                )
            return Var(token.text)
        raise QueryError(
            f"expected a term at position {token.position}, got {token.text!r}"
        )


def parse(source: str) -> Formula:
    """Parse a textual first-order query into a :class:`Formula`."""
    return _Parser(source).parse()
