"""Evaluation of first-order formulas on finite structures.

The evaluator is the naive recursive one: quantifiers range over the
universe.  Its cost is ``O(n ** quantifier_depth)`` — polynomial for a
fixed query, which is exactly the data-complexity stance of the paper.

:class:`FOQuery` wraps a formula with an explicit free-variable order so
it can serve as the library-wide ``Query`` protocol: any object with
``arity``, ``evaluate(structure, args)`` and ``answers(structure)`` can be
fed to the reliability layer (FO queries, Datalog queries, fixed-point and
second-order queries all implement it).
"""

from __future__ import annotations

from itertools import product
from typing import Any, Dict, Iterable, Iterator, Optional, Sequence, Set, Tuple, Union

from repro.logic.fo import (
    And,
    AtomF,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    free_variables,
)
from repro.logic.parser import parse
from repro.logic.terms import Term, Var, term_value
from repro.relational.structure import Structure
from repro.util.errors import EvaluationError, QueryError


def evaluate(
    structure: Structure,
    formula: Formula,
    assignment: Optional[Dict[Var, Any]] = None,
) -> bool:
    """Truth value of ``formula`` in ``structure`` under ``assignment``."""
    env = assignment if assignment is not None else {}
    return _eval(structure, formula, env)


def _eval(structure: Structure, formula: Formula, env: Dict[Var, Any]) -> bool:
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, AtomF):
        row = tuple(term_value(t, env) for t in formula.args)
        return row in structure.relation(formula.relation)
    if isinstance(formula, Eq):
        return term_value(formula.left, env) == term_value(formula.right, env)
    if isinstance(formula, Not):
        return not _eval(structure, formula.sub, env)
    if isinstance(formula, And):
        return all(_eval(structure, sub, env) for sub in formula.subs)
    if isinstance(formula, Or):
        return any(_eval(structure, sub, env) for sub in formula.subs)
    if isinstance(formula, Implies):
        return (not _eval(structure, formula.left, env)) or _eval(
            structure, formula.right, env
        )
    if isinstance(formula, Iff):
        return _eval(structure, formula.left, env) == _eval(
            structure, formula.right, env
        )
    if isinstance(formula, Exists):
        return _eval_block(structure, formula.variables, formula.sub, env, True)
    if isinstance(formula, Forall):
        return not _eval_block(
            structure, formula.variables, Not(formula.sub), env, True
        )
    raise EvaluationError(f"unknown formula node {type(formula).__name__}")


def _eval_block(
    structure: Structure,
    variables: Tuple[Var, ...],
    sub: Formula,
    env: Dict[Var, Any],
    want: bool,
) -> bool:
    saved = {var: env[var] for var in variables if var in env}
    try:
        for values in product(structure.universe, repeat=len(variables)):
            for var, value in zip(variables, values):
                env[var] = value
            if _eval(structure, sub, env) == want:
                return True
        return False
    finally:
        for var in variables:
            env.pop(var, None)
        env.update(saved)


def answers(
    structure: Structure,
    formula: Formula,
    free_order: Optional[Sequence[Var]] = None,
) -> Set[Tuple[Any, ...]]:
    """The answer relation ``psi^A = { a : A |= psi(a) }``.

    ``free_order`` fixes the column order; by default free variables are
    sorted by name.  For a sentence the result is ``{()}`` or ``set()``.
    """
    order = _resolve_order(formula, free_order)
    result: Set[Tuple[Any, ...]] = set()
    env: Dict[Var, Any] = {}
    for values in product(structure.universe, repeat=len(order)):
        for var, value in zip(order, values):
            env[var] = value
        if _eval(structure, formula, env):
            result.add(values)
    return result


def _resolve_order(
    formula: Formula, free_order: Optional[Sequence[Var]]
) -> Tuple[Var, ...]:
    free = free_variables(formula)
    if free_order is None:
        return tuple(sorted(free))
    order = tuple(Var(v) if isinstance(v, str) else v for v in free_order)
    if set(order) != set(free):
        raise QueryError(
            f"free_order {sorted(v.name for v in order)} does not match "
            f"free variables {sorted(v.name for v in free)}"
        )
    return order


class FOQuery:
    """A first-order query: a formula plus an explicit free-variable order.

    This is the concrete type most of the library passes around.  It
    implements the query protocol used by the reliability layer:

    * :attr:`arity` — number of free variables (``k`` in the paper);
    * :meth:`evaluate` — truth of ``psi(a)`` for a single tuple;
    * :meth:`answers` — the full answer relation ``psi^A``.
    """

    __slots__ = ("formula", "free_order")

    def __init__(
        self,
        formula: Union[Formula, str],
        free_order: Optional[Sequence[Union[Var, str]]] = None,
    ):
        if isinstance(formula, str):
            formula = parse(formula)
        self.formula = formula
        self.free_order = _resolve_order(formula, free_order)

    @property
    def arity(self) -> int:
        return len(self.free_order)

    def evaluate(self, structure: Structure, args: Sequence[Any] = ()) -> bool:
        """Truth of ``psi(args)`` in ``structure``."""
        if len(args) != self.arity:
            raise QueryError(
                f"query has arity {self.arity}, got {len(args)} arguments"
            )
        env = dict(zip(self.free_order, args))
        return _eval(structure, self.formula, env)

    def answers(self, structure: Structure) -> Set[Tuple[Any, ...]]:
        """The answer relation on ``structure``."""
        return answers(structure, self.formula, self.free_order)

    def instantiated(self, args: Sequence[Any]) -> Formula:
        """The Boolean formula ``psi(args)`` with constants plugged in."""
        from repro.logic.fo import instantiate

        if len(args) != self.arity:
            raise QueryError(
                f"query has arity {self.arity}, got {len(args)} arguments"
            )
        return instantiate(self.formula, dict(zip(self.free_order, args)))

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.free_order)
        return f"FOQuery([{names}] -> {self.formula})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FOQuery):
            return NotImplemented
        return (
            self.formula == other.formula and self.free_order == other.free_order
        )

    def __hash__(self) -> int:
        return hash((self.formula, self.free_order))


def all_tuples(structure: Structure, arity: int) -> Iterator[Tuple[Any, ...]]:
    """All ``arity``-tuples over the structure's universe."""
    return product(structure.universe, repeat=arity)
