"""Syntactic classification of first-order queries.

The paper's results are indexed by fragment — quantifier-free
(Proposition 3.1), conjunctive (Proposition 3.2), existential/universal
(Theorem 5.4, Corollary 5.5), polynomial-time evaluable (Theorem 5.12).
The reliability layer dispatches on these predicates, so they live in one
place and are shared by tests and benchmarks.
"""

from __future__ import annotations

from repro.logic.fo import (
    And,
    AtomF,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
)
from repro.logic.normalform import to_nnf, to_prenex
from repro.util.errors import QueryError


def is_quantifier_free(formula: Formula) -> bool:
    """No quantifier anywhere in the formula."""
    if isinstance(formula, (Top, Bottom, AtomF, Eq)):
        return True
    if isinstance(formula, Not):
        return is_quantifier_free(formula.sub)
    if isinstance(formula, (And, Or)):
        return all(is_quantifier_free(s) for s in formula.subs)
    if isinstance(formula, (Implies, Iff)):
        return is_quantifier_free(formula.left) and is_quantifier_free(
            formula.right
        )
    if isinstance(formula, (Exists, Forall)):
        return False
    raise QueryError(f"unknown formula node {type(formula).__name__}")


def is_existential(formula: Formula) -> bool:
    """Equivalent (after NNF/prenex) to ``exists* (quantifier-free)``.

    This is a syntactic check on the prenex prefix of the NNF, so e.g.
    ``~forall x. phi`` counts as existential — the same closure the paper
    implicitly uses when it speaks of "existential queries".
    """
    prefix, _matrix = to_prenex(formula)
    return all(kind == "exists" for kind, _var in prefix)


def is_universal(formula: Formula) -> bool:
    """Equivalent (after NNF/prenex) to ``forall* (quantifier-free)``."""
    prefix, _matrix = to_prenex(formula)
    return all(kind == "forall" for kind, _var in prefix)


def is_conjunctive(formula: Formula) -> bool:
    """Of the form ``exists x1 ... xk. (a1 & ... & al)`` with atomic ``ai``.

    Strict syntactic conjunctive queries as in Proposition 3.2: no
    negation, no disjunction, no equality atoms required (equalities are
    permitted, matching the usual CQ definition with selections).
    """
    body = formula
    while isinstance(body, Exists):
        body = body.sub
    if isinstance(body, (AtomF, Eq, Top)):
        return True
    if isinstance(body, And):
        return all(isinstance(s, (AtomF, Eq, Top)) for s in body.subs)
    return False


def classify(formula: Formula) -> str:
    """Finest fragment label for dispatching reliability algorithms.

    Returns one of ``"quantifier-free"``, ``"conjunctive"``,
    ``"existential"``, ``"universal"``, ``"first-order"``.
    """
    if is_quantifier_free(formula):
        return "quantifier-free"
    if is_conjunctive(formula):
        return "conjunctive"
    if is_existential(formula):
        return "existential"
    if is_universal(formula):
        return "universal"
    return "first-order"
