"""First-order terms: variables and constants.

The paper's relational setting has no function symbols, so a term is
either a variable or a constant denoting a universe element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Union

from repro.util.errors import EvaluationError


@dataclass(frozen=True, order=True)
class Var:
    """A first-order variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant denoting a fixed universe element."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


Term = Union[Var, Const]


def term_value(term: Term, assignment: Mapping[Var, Any]) -> Any:
    """The universe element denoted by ``term`` under ``assignment``."""
    if isinstance(term, Const):
        return term.value
    try:
        return assignment[term]
    except KeyError:
        raise EvaluationError(f"unbound variable {term.name!r}") from None


def substitute_term(term: Term, binding: Mapping[Var, Term]) -> Term:
    """Apply a variable-to-term substitution to a single term."""
    if isinstance(term, Var):
        return binding.get(term, term)
    return term
