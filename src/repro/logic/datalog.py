"""Datalog with semi-naive bottom-up evaluation.

Datalog is the paper's canonical example of polynomial-time evaluable
queries beyond first-order logic (de Rougemont proved the FP^#P upper
bound for Datalog reliability; Theorem 4.2 subsumes it, and Theorem 5.12's
estimator applies to it).  The engine here is a classic bottom-up
semi-naive fixpoint with *semipositive* negation: rule bodies may negate
EDB (database) predicates and use equality/inequality guards, but not IDB
predicates — keeping every program PTIME-evaluable.

Syntax, programmatically::

    program = DatalogProgram([
        Rule(head("T", "x", "y"), [lit("E", "x", "y")]),
        Rule(head("T", "x", "z"), [lit("T", "x", "y"), lit("E", "y", "z")]),
    ])

or from text::

    program = DatalogProgram.parse('''
        T(x, y) :- E(x, y).
        T(x, z) :- T(x, y), E(y, z).
    ''')
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.logic.terms import Const, Term, Var
from repro.relational.structure import Structure
from repro.util.errors import EvaluationError, QueryError

TupleOf = Tuple[Any, ...]


@dataclass(frozen=True)
class HeadAtom:
    """The head of a rule: an IDB predicate applied to terms."""

    predicate: str
    args: Tuple[Term, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.args)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True)
class BodyLiteral:
    """A body literal: possibly negated predicate atom, or a comparison.

    ``predicate`` is ``"="`` for equality guards (with exactly two args);
    negation of ``"="`` expresses inequality.
    """

    predicate: str
    args: Tuple[Term, ...]
    negated: bool = False

    def __str__(self) -> str:
        if self.predicate == "=":
            op = "!=" if self.negated else "="
            return f"{self.args[0]} {op} {self.args[1]}"
        inner = ", ".join(str(t) for t in self.args)
        sign = "not " if self.negated else ""
        return f"{sign}{self.predicate}({inner})"


def head(predicate: str, *args: Union[str, Term, Any]) -> HeadAtom:
    """Build a rule head; bare strings become variables."""
    return HeadAtom(predicate, tuple(_as_term(a) for a in args))


def lit(
    predicate: str, *args: Union[str, Term, Any], negated: bool = False
) -> BodyLiteral:
    """Build a body literal; bare strings become variables."""
    return BodyLiteral(predicate, tuple(_as_term(a) for a in args), negated)


def _as_term(value: Union[str, Term, Any]) -> Term:
    if isinstance(value, (Var, Const)):
        return value
    if isinstance(value, str):
        return Var(value)
    return Const(value)


@dataclass(frozen=True)
class Rule:
    """A Datalog rule ``head :- body``."""

    head: HeadAtom
    body: Tuple[BodyLiteral, ...]

    def __init__(self, head: HeadAtom, body: Iterable[BodyLiteral]):
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        inner = ", ".join(str(b) for b in self.body)
        return f"{self.head} :- {inner}."

    def variables(self) -> Set[Var]:
        result: Set[Var] = set()
        for term in self.head.args:
            if isinstance(term, Var):
                result.add(term)
        for literal in self.body:
            for term in literal.args:
                if isinstance(term, Var):
                    result.add(term)
        return result


_RULE_RE = re.compile(r"^\s*(.+?)\s*(?::-\s*(.*?))?\s*\.\s*$")
_ATOM_RE = re.compile(r"^\s*(not\s+)?([A-Za-z_][A-Za-z_0-9]*)\s*\(([^()]*)\)\s*$")
_CMP_RE = re.compile(r"^\s*([A-Za-z_0-9']+)\s*(!=|=)\s*([A-Za-z_0-9']+)\s*$")


def _parse_term_token(token: str) -> Term:
    token = token.strip()
    if not token:
        raise QueryError("empty term in Datalog rule")
    if token.startswith("'") and token.endswith("'"):
        return Const(token[1:-1])
    try:
        return Const(int(token))
    except ValueError:
        pass
    if token[0].isalpha() or token[0] == "_":
        return Var(token)
    raise QueryError(f"cannot parse Datalog term {token!r}")


def _parse_literal(text: str) -> BodyLiteral:
    match = _ATOM_RE.match(text)
    if match:
        negated = bool(match.group(1))
        name = match.group(2)
        args_text = match.group(3).strip()
        args: Tuple[Term, ...] = ()
        if args_text:
            args = tuple(_parse_term_token(t) for t in args_text.split(","))
        return BodyLiteral(name, args, negated)
    match = _CMP_RE.match(text)
    if match:
        left = _parse_term_token(match.group(1))
        right = _parse_term_token(match.group(3))
        return BodyLiteral("=", (left, right), negated=match.group(2) == "!=")
    raise QueryError(f"cannot parse Datalog literal {text!r}")


def _split_literals(body: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    current = []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return parts


class DatalogProgram:
    """A set of rules with semi-naive bottom-up evaluation.

    IDB predicates are those occurring in some head; everything else in a
    body is EDB and must exist in the structure's vocabulary at evaluation
    time.  Negation is *stratified*: a rule may negate EDB predicates,
    ``=`` guards, and IDB predicates defined in strictly lower strata —
    no recursion through negation.  Stratified programs have a unique
    perfect model computed stratum by stratum, each stratum by a
    semi-naive fixpoint, all in polynomial time.
    """

    def __init__(self, rules: Iterable[Rule]):
        self.rules: Tuple[Rule, ...] = tuple(rules)
        if not self.rules:
            raise QueryError("a Datalog program needs at least one rule")
        self.idb: FrozenSet[str] = frozenset(r.head.predicate for r in self.rules)
        self._arities: Dict[str, int] = {}
        for rule in self.rules:
            self._check_rule(rule)
        self.strata: Dict[str, int] = self._stratify()

    def _check_rule(self, rule: Rule) -> None:
        self._record_arity(rule.head.predicate, len(rule.head.args))
        head_vars = {t for t in rule.head.args if isinstance(t, Var)}
        positive_vars: Set[Var] = set()
        for literal in rule.body:
            if literal.predicate == "=":
                if len(literal.args) != 2:
                    raise QueryError(f"bad comparison in rule {rule}")
                continue
            self._record_arity(literal.predicate, len(literal.args))
            if not literal.negated:
                positive_vars.update(
                    t for t in literal.args if isinstance(t, Var)
                )
        unsafe = head_vars - positive_vars
        for literal in rule.body:
            if literal.predicate == "=" and not literal.negated:
                # An equality can ground a head variable via a constant.
                left, right = literal.args
                if isinstance(left, Var) and isinstance(right, Const):
                    unsafe.discard(left)
                if isinstance(right, Var) and isinstance(left, Const):
                    unsafe.discard(right)
        if unsafe:
            names = sorted(v.name for v in unsafe)
            raise QueryError(f"unsafe head variables {names} in rule {rule}")

    def _record_arity(self, predicate: str, arity: int) -> None:
        known = self._arities.get(predicate)
        if known is not None and known != arity:
            raise QueryError(
                f"predicate {predicate!r} used with arities {known} and {arity}"
            )
        self._arities[predicate] = arity

    def _stratify(self) -> Dict[str, int]:
        """Assign strata so negation never points upward or sideways.

        Iterative relaxation: a positive IDB body literal forces
        ``stratum(head) >= stratum(body)``, a negated one forces strict
        inequality.  Failure to stabilise within ``len(idb)`` rounds means
        a negative cycle — the program is not stratifiable.
        """
        strata = {p: 0 for p in self.idb}
        for _round in range(len(self.idb) + 1):
            changed = False
            for rule in self.rules:
                head = rule.head.predicate
                for literal in rule.body:
                    if literal.predicate not in self.idb:
                        continue
                    required = strata[literal.predicate] + (
                        1 if literal.negated else 0
                    )
                    if strata[head] < required:
                        strata[head] = required
                        changed = True
            if not changed:
                return strata
        raise QueryError(
            "program is not stratifiable (recursion through negation)"
        )

    # ------------------------------------------------------------------ #

    @classmethod
    def parse(cls, source: str) -> "DatalogProgram":
        """Parse a newline/period separated rule list."""
        rules: List[Rule] = []
        for raw in source.split("\n"):
            line = raw.split("%")[0].strip()
            if not line:
                continue
            match = _RULE_RE.match(line)
            if match is None:
                raise QueryError(f"cannot parse Datalog rule {line!r}")
            head_text, body_text = match.group(1), match.group(2)
            head_literal = _parse_literal(head_text)
            if head_literal.negated or head_literal.predicate == "=":
                raise QueryError(f"invalid rule head in {line!r}")
            body: List[BodyLiteral] = []
            if body_text:
                for part in _split_literals(body_text):
                    body.append(_parse_literal(part))
            rules.append(
                Rule(HeadAtom(head_literal.predicate, head_literal.args), body)
            )
        return cls(rules)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, structure: Structure) -> Dict[str, Set[TupleOf]]:
        """Compute the perfect model: all IDB relations, fully materialised.

        Strata are evaluated bottom-up; within each stratum a semi-naive
        fixpoint joins only against the previous round's delta, so total
        work is polynomial in the output size.
        """
        fixed: Dict[str, FrozenSet[TupleOf]] = {}
        for name in structure.vocabulary.names():
            fixed[name] = structure.relation(name)
        for predicate, arity in self._arities.items():
            if predicate in self.idb or predicate == "=":
                continue
            if predicate not in fixed:
                raise EvaluationError(
                    f"EDB predicate {predicate!r} missing from the structure"
                )
            if structure.vocabulary.arity(predicate) != arity:
                raise EvaluationError(
                    f"predicate {predicate!r} has arity "
                    f"{structure.vocabulary.arity(predicate)} in the "
                    f"structure but {arity} in the program"
                )

        result: Dict[str, Set[TupleOf]] = {}
        for level in sorted(set(self.strata.values())):
            current = frozenset(
                p for p, s in self.strata.items() if s == level
            )
            rules = [r for r in self.rules if r.head.predicate in current]
            materialised = self._fixpoint(rules, current, fixed)
            for predicate in current:
                result[predicate] = materialised[predicate]
                fixed[predicate] = frozenset(materialised[predicate])
        return result

    def _fixpoint(
        self,
        rules: List[Rule],
        current: FrozenSet[str],
        fixed: Mapping[str, FrozenSet[TupleOf]],
    ) -> Dict[str, Set[TupleOf]]:
        idb: Dict[str, Set[TupleOf]] = {p: set() for p in current}
        delta: Dict[str, Set[TupleOf]] = {p: set() for p in current}

        # Naive first round: fire every rule against fixed + empty IDB.
        for rule in rules:
            for row in self._fire(rule, current, fixed, idb, None):
                if row not in idb[rule.head.predicate]:
                    idb[rule.head.predicate].add(row)
                    delta[rule.head.predicate].add(row)

        while any(delta.values()):
            new_delta: Dict[str, Set[TupleOf]] = {p: set() for p in current}
            for rule in rules:
                if not any(
                    not b.negated
                    and b.predicate in current
                    and delta[b.predicate]
                    for b in rule.body
                ):
                    continue
                for row in self._fire(rule, current, fixed, idb, delta):
                    if row not in idb[rule.head.predicate]:
                        idb[rule.head.predicate].add(row)
                        new_delta[rule.head.predicate].add(row)
            delta = new_delta
        return idb

    def _fire(
        self,
        rule: Rule,
        current: FrozenSet[str],
        fixed: Mapping[str, FrozenSet[TupleOf]],
        idb: Mapping[str, Set[TupleOf]],
        delta: Optional[Mapping[str, Set[TupleOf]]],
    ) -> Set[TupleOf]:
        """All head tuples derivable by one rule.

        When ``delta`` is given, at least one positive current-stratum
        literal must be matched against the delta (semi-naive
        restriction); we implement this by trying each such literal as
        the "delta position".
        """
        results: Set[TupleOf] = set()
        recursive_positions = [
            i
            for i, literal in enumerate(rule.body)
            if not literal.negated and literal.predicate in current
        ]
        if delta is None or not recursive_positions:
            if delta is not None:
                return results
            for env in self._match_body(
                rule.body, 0, {}, current, fixed, idb, None, -1
            ):
                results.add(self._head_tuple(rule.head, env))
            return results
        for delta_index in recursive_positions:
            for env in self._match_body(
                rule.body, 0, {}, current, fixed, idb, delta, delta_index
            ):
                results.add(self._head_tuple(rule.head, env))
        return results

    def _match_body(
        self,
        body: Tuple[BodyLiteral, ...],
        index: int,
        env: Dict[Var, Any],
        current: FrozenSet[str],
        fixed: Mapping[str, FrozenSet[TupleOf]],
        idb: Mapping[str, Set[TupleOf]],
        delta: Optional[Mapping[str, Set[TupleOf]]],
        delta_index: int,
    ):
        if index == len(body):
            yield dict(env)
            return
        literal = body[index]
        if literal.predicate == "=":
            yield from self._match_comparison(
                literal, body, index, env, current, fixed, idb, delta, delta_index
            )
            return
        if literal.negated:
            # Stratification guarantees the relation is fully known: EDB
            # or an IDB from a strictly lower stratum.
            rows = fixed[literal.predicate]
            grounded = tuple(self._ground(t, env) for t in literal.args)
            if any(g is None for g in grounded):
                raise EvaluationError(
                    f"negated literal {literal} has unbound variables; "
                    "reorder the rule body so positives come first"
                )
            if tuple(grounded) not in rows:
                yield from self._match_body(
                    body, index + 1, env, current, fixed, idb, delta, delta_index
                )
            return
        if literal.predicate in current:
            if delta is not None and index == delta_index:
                source: Iterable[TupleOf] = delta[literal.predicate]
            else:
                source = idb[literal.predicate]
        else:
            source = fixed[literal.predicate]
        for row in source:
            bound = self._unify(literal.args, row, env)
            if bound is None:
                continue
            yield from self._match_body(
                body, index + 1, bound, current, fixed, idb, delta, delta_index
            )

    def _match_comparison(
        self, literal, body, index, env, current, fixed, idb, delta, delta_index
    ):
        left = self._ground(literal.args[0], env)
        right = self._ground(literal.args[1], env)
        if left is None and right is None:
            raise EvaluationError(
                f"comparison {literal} has two unbound variables"
            )
        if left is None or right is None:
            if literal.negated:
                raise EvaluationError(
                    f"inequality {literal} has an unbound variable"
                )
            variable = literal.args[0] if left is None else literal.args[1]
            value = right if left is None else left
            env2 = dict(env)
            env2[variable] = value
            yield from self._match_body(
                body, index + 1, env2, current, fixed, idb, delta, delta_index
            )
            return
        matches = (left == right) != literal.negated
        if matches:
            yield from self._match_body(
                body, index + 1, env, current, fixed, idb, delta, delta_index
            )

    @staticmethod
    def _ground(term: Term, env: Mapping[Var, Any]):
        if isinstance(term, Const):
            return term.value
        return env.get(term)

    @staticmethod
    def _unify(
        args: Tuple[Term, ...], row: TupleOf, env: Dict[Var, Any]
    ) -> Optional[Dict[Var, Any]]:
        bound = dict(env)
        for term, value in zip(args, row):
            if isinstance(term, Const):
                if term.value != value:
                    return None
            else:
                known = bound.get(term)
                if known is None:
                    bound[term] = value
                elif known != value:
                    return None
        return bound

    @staticmethod
    def _head_tuple(head_atom: HeadAtom, env: Mapping[Var, Any]) -> TupleOf:
        row = []
        for term in head_atom.args:
            if isinstance(term, Const):
                row.append(term.value)
            else:
                row.append(env[term])
        return tuple(row)


class DatalogQuery:
    """A Datalog program with a distinguished answer predicate.

    Implements the library's query protocol (``arity`` / ``evaluate`` /
    ``answers``), so it can be passed to the Theorem 5.12 estimator and
    the exact reliability engine like any first-order query.
    """

    __slots__ = ("program", "predicate", "_arity")

    def __init__(self, program: Union[DatalogProgram, str], predicate: str):
        if isinstance(program, str):
            program = DatalogProgram.parse(program)
        self.program = program
        self.predicate = predicate
        if predicate not in program.idb:
            raise QueryError(
                f"answer predicate {predicate!r} is not defined by the program"
            )
        self._arity = program._arities[predicate]

    @property
    def arity(self) -> int:
        return self._arity

    def answers(self, structure: Structure) -> Set[TupleOf]:
        return set(self.program.evaluate(structure)[self.predicate])

    def evaluate(self, structure: Structure, args: Sequence[Any] = ()) -> bool:
        if len(args) != self._arity:
            raise QueryError(
                f"query has arity {self._arity}, got {len(args)} arguments"
            )
        return tuple(args) in self.answers(structure)

    def __repr__(self) -> str:
        return f"DatalogQuery({self.predicate}/{self._arity}, {len(self.program.rules)} rules)"


def reachability_query(
    edge: str = "E", answer: str = "Reach"
) -> DatalogQuery:
    """Transitive closure of a binary relation — the classic PTIME query.

    Not first-order expressible, so it exercises exactly the gap between
    Theorem 5.4 (existential queries) and Theorem 5.12 (all PTIME
    queries).
    """
    program = DatalogProgram(
        [
            Rule(head(answer, "x", "y"), [lit(edge, "x", "y")]),
            Rule(
                head(answer, "x", "z"),
                [lit(answer, "x", "y"), lit(edge, "y", "z")],
            ),
        ]
    )
    return DatalogQuery(program, answer)
