"""Propositional formulas, model counting, and the Karp–Luby FPTRAS.

Section 5 of the paper reduces query-probability computation to
propositional problems: ``#C`` (count satisfying assignments of formulas
in class ``C``) and ``Prob-C`` (probability of truth under independent
variable probabilities).  This subpackage supplies:

* :mod:`~repro.propositional.formula` — literals, clauses, and DNF/CNF
  containers over arbitrary hashable variable labels (the reliability
  layer uses ground :class:`~repro.relational.atoms.Atom` objects as
  variables);
* :mod:`~repro.propositional.counting` — exact weighted model counting by
  Shannon expansion with memoisation and independent-component factoring,
  plus brute-force enumeration as the test oracle;
* :mod:`~repro.propositional.karp_luby` — the Karp–Luby fully
  polynomial-time randomized approximation scheme for weighted DNF
  probability (Theorem 5.2 / 5.3), in both the coverage ("self-adjusting")
  and canonical-clause variants;
* :mod:`~repro.propositional.bitvector` — the paper's Theorem 5.3
  reduction from Prob-kDNF to #DNF via binary counters.
"""

from repro.propositional.formula import Literal, Clause, DNF, CNF, pos, neg_lit
from repro.propositional.counting import (
    count_models,
    probability_exact,
    probability_enumerate,
)
from repro.propositional.karp_luby import (
    KarpLubyEstimate,
    karp_luby,
    karp_luby_samples,
    sample_count,
    naive_probability_estimate,
)
from repro.propositional.bitvector import (
    BitvectorInstance,
    bitvector_reduction,
    dnf_less_than,
    dnf_geq,
    probability_via_bitvector,
)
from repro.propositional.bdd import (
    BDD,
    compile_dnf,
    probability_via_bdd,
    influences_via_bdd,
)
from repro.propositional.stopping_rule import (
    StoppingRuleEstimate,
    karp_luby_stopping_rule,
    stopping_rule_threshold,
)

__all__ = [
    "Literal",
    "Clause",
    "DNF",
    "CNF",
    "pos",
    "neg_lit",
    "count_models",
    "probability_exact",
    "probability_enumerate",
    "KarpLubyEstimate",
    "karp_luby",
    "karp_luby_samples",
    "sample_count",
    "naive_probability_estimate",
    "BitvectorInstance",
    "bitvector_reduction",
    "dnf_less_than",
    "dnf_geq",
    "probability_via_bitvector",
    "BDD",
    "compile_dnf",
    "probability_via_bdd",
    "influences_via_bdd",
    "StoppingRuleEstimate",
    "karp_luby_stopping_rule",
    "stopping_rule_threshold",
]
