"""The Theorem 5.3 reduction: Prob-kDNF to #DNF via binary counters.

Given a kDNF ``phi`` with rational variable probabilities ``nu(X) = p/q``,
the paper replaces each variable ``X`` by a block of ``len(q)`` fresh bit
variables ``Y`` and each literal by a DNF expressing ``val(Y) < p`` (for
``X``) or ``val(Y) >= p`` (for ``~X``).  Assignments with ``val(Y) >= q``
are *illegal*; adding, for every block, the clause set "``val(Y) >= q``"
yields ``phi''`` whose model count determines ``nu(phi)``:

    nu(phi) = (#phi'' - #illegal) / prod(q_X)

Counting ``phi''`` with the Karp–Luby FPTRAS yields an FPTRAS for
``nu(phi)`` — because ``#phi'' >= #illegal`` and the subtraction is exact,
relative error on ``#phi''`` translates to bounded relative error on the
numerator only when ``#illegal`` is not dominant; the paper sidesteps this
by approximating ``#phi''`` directly and subtracting the exactly-known
``#illegal``.  :func:`probability_via_bitvector` implements both the exact
pipeline (for tests) and the sampled pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.propositional.counting import count_models
from repro.propositional.formula import DNF, Clause, Literal, Variable
from repro.propositional.karp_luby import karp_luby
from repro.util.errors import ProbabilityError


def _bit_length(value: int) -> int:
    """len(q): length of the shortest binary representation of q."""
    if value <= 0:
        raise ProbabilityError(f"bit_length of nonpositive {value}")
    return value.bit_length()


def dnf_less_than(bits: Sequence[Variable], bound: int) -> DNF:
    """A DNF over ``bits`` (most significant first) true iff value < bound.

    The paper's formula: one clause per 1-bit ``i`` of ``bound``, asserting
    ``~Y_i`` together with ``~Y_j`` for every more significant 0-bit ``j``.
    Length ``O(len(bits)^2)``.
    """
    width = len(bits)
    if bound >= (1 << width):
        return DNF.true()
    if bound <= 0:
        return DNF.false()
    clauses: List[Clause] = []
    # bits[0] is the most significant; bit position i counts from the least.
    for position in range(width):
        if not (bound >> position) & 1:
            continue
        literals = [Literal(bits[width - 1 - position], False)]
        for higher in range(position + 1, width):
            if not (bound >> higher) & 1:
                literals.append(Literal(bits[width - 1 - higher], False))
        clauses.append(Clause(literals))
    return DNF(clauses)


def dnf_geq(bits: Sequence[Variable], bound: int) -> DNF:
    """A DNF over ``bits`` true iff value >= bound.

    Dual construction: the "equality-or-above on the ones" clause plus one
    clause per 0-bit of ``bound`` asserting that bit together with every
    more significant 1-bit.
    """
    width = len(bits)
    if bound <= 0:
        return DNF.true()
    if bound >= (1 << width):
        return DNF.false()
    clauses: List[Clause] = []
    ones = [
        Literal(bits[width - 1 - position], True)
        for position in range(width)
        if (bound >> position) & 1
    ]
    clauses.append(Clause(ones))
    for position in range(width):
        if (bound >> position) & 1:
            continue
        literals = [Literal(bits[width - 1 - position], True)]
        for higher in range(position + 1, width):
            if (bound >> higher) & 1:
                literals.append(Literal(bits[width - 1 - higher], True))
        clauses.append(Clause(literals))
    return DNF(clauses)


@dataclass(frozen=True)
class BitvectorInstance:
    """Output of the Theorem 5.3 reduction.

    Attributes:
        phi_double_prime: the #DNF instance over the bit variables.
        bit_variables: all bit variables, in a fixed order.
        legal_total: ``prod(q_X)`` — the number of legal assignments.
        total: ``2 ** len(bit_variables)`` — all assignments.
        blocks: per original variable, its bit block and its ``q``.
    """

    phi_double_prime: DNF
    bit_variables: Tuple[Variable, ...]
    legal_total: int
    total: int
    blocks: Tuple[Tuple[Variable, Tuple[Variable, ...], int], ...]

    @property
    def illegal_total(self) -> int:
        return self.total - self.legal_total


def bitvector_reduction(
    dnf: DNF, probs: Mapping[Variable, Fraction]
) -> BitvectorInstance:
    """Transform a weighted kDNF into the paper's #DNF instance.

    Blowup: each literal becomes a DNF with ``O(len(q))`` clauses, and the
    clause-product distribution multiplies sizes within one clause —
    ``O(len(q) ** k)`` per original clause, polynomial for fixed ``k``,
    exactly the paper's accounting.
    """
    blocks: List[Tuple[Variable, Tuple[Variable, ...], int]] = []
    lt_dnf: Dict[Variable, DNF] = {}
    geq_dnf: Dict[Variable, DNF] = {}
    illegal_dnf: List[DNF] = []
    bit_variables: List[Variable] = []
    for variable in sorted(dnf.variables, key=repr):
        probability = probs[variable]
        if not isinstance(probability, Fraction):
            raise ProbabilityError(
                f"bitvector reduction needs exact Fractions, got "
                f"{type(probability).__name__} for {variable!r}"
            )
        if probability < 0 or probability > 1:
            raise ProbabilityError(
                f"probability {probability} for {variable!r} not in [0,1]"
            )
        p, q = probability.numerator, probability.denominator
        width = _bit_length(q)
        bits: Tuple[Variable, ...] = tuple(
            ("bit", variable, index) for index in range(width)
        )
        bit_variables.extend(bits)
        blocks.append((variable, bits, q))
        lt_dnf[variable] = dnf_less_than(bits, p)
        geq_dnf[variable] = dnf_geq(bits, p)
        illegal_dnf.append(dnf_geq(bits, q))

    transformed_clauses: List[Clause] = []
    for clause in dnf.clauses:
        replaced = DNF.true()
        for literal in clause:
            piece = (
                lt_dnf[literal.variable]
                if literal.positive
                else geq_dnf[literal.variable]
            )
            replaced = replaced.and_with(piece)
        transformed_clauses.extend(replaced.clauses)
    phi_prime = DNF(transformed_clauses)

    phi_double_prime = phi_prime
    for piece in illegal_dnf:
        phi_double_prime = phi_double_prime.or_with(piece)

    legal_total = 1
    total = 1
    for _variable, bits, q in blocks:
        legal_total *= q
        total *= 1 << len(bits)
    return BitvectorInstance(
        phi_double_prime=phi_double_prime,
        bit_variables=tuple(bit_variables),
        legal_total=legal_total,
        total=total,
        blocks=tuple(blocks),
    )


def probability_via_bitvector(
    dnf: DNF,
    probs: Mapping[Variable, Fraction],
    epsilon: Optional[float] = None,
    delta: Optional[float] = None,
    rng: Optional[random.Random] = None,
) -> Fraction:
    """``nu(dnf)`` through the Theorem 5.3 pipeline.

    With ``epsilon``/``delta``/``rng`` omitted, the #DNF instance is
    counted exactly (test oracle for the reduction).  With them given, the
    count is approximated by Karp–Luby, matching the paper's FPTRAS
    construction end to end; the return value is then a float-backed
    Fraction.
    """
    if dnf.is_true():
        return Fraction(1)
    if dnf.is_false():
        return Fraction(0)
    instance = bitvector_reduction(dnf, probs)
    width = len(instance.bit_variables)
    if epsilon is None:
        model_count = count_models(instance.phi_double_prime, width)
    else:
        if delta is None or rng is None:
            raise ProbabilityError(
                "sampled pipeline needs epsilon, delta and rng together"
            )
        half = Fraction(1, 2)
        uniform = {v: half for v in instance.phi_double_prime.variables}
        run = karp_luby(instance.phi_double_prime, uniform, epsilon, delta, rng)
        model_count = round(run.estimate * instance.total)
    legal_models = model_count - instance.illegal_total
    return Fraction(legal_models, instance.legal_total)
