"""Exact weighted model counting for DNF formulas.

Two engines:

* :func:`probability_enumerate` — brute-force enumeration over all
  assignments; exponential, used as the oracle in tests;
* :func:`probability_exact` — Shannon expansion with memoisation and
  independent-component factoring.  Still worst-case exponential (the
  problem is #P-hard), but handles the grounded query formulas of the
  paper's experiments at practical sizes, and is the exact baseline the
  FPTRAS benchmarks compare against.

Both take the variable probabilities as exact fractions and return exact
fractions, so test assertions are equalities, not tolerances.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Set, Tuple

from repro import obs
from repro.propositional.formula import DNF, Clause, Variable
from repro.runtime.budget import checkpoint
from repro.util.errors import ProbabilityError

ProbMap = Mapping[Variable, Fraction]


def _check_probs(dnf: DNF, probs: ProbMap) -> None:
    for variable in dnf.variables:
        if variable not in probs:
            raise ProbabilityError(f"no probability given for {variable!r}")
        p = probs[variable]
        if p < 0 or p > 1:
            raise ProbabilityError(f"probability {p} for {variable!r} not in [0,1]")


def probability_enumerate(dnf: DNF, probs: ProbMap) -> Fraction:
    """Exact Pr[dnf] by enumerating all assignments (test oracle)."""
    _check_probs(dnf, probs)
    variables = sorted(dnf.variables, key=repr)
    total = Fraction(0)
    for values in product((False, True), repeat=len(variables)):
        checkpoint(worlds=1)
        assignment = dict(zip(variables, values))
        if dnf.satisfied_by(assignment):
            weight = Fraction(1)
            for variable, value in assignment.items():
                p = probs[variable]
                weight *= p if value else 1 - p
            total += weight
    return total


def probability_exact(dnf: DNF, probs: ProbMap) -> Fraction:
    """Exact Pr[dnf] by Shannon expansion with memo and factoring.

    Strategy:

    1. split the clause set into connected components (clauses sharing no
       variable are independent events only if their *variable sets* are
       disjoint — then Pr[union] factorises as
       ``1 - prod(1 - Pr[component])``);
    2. within a component, pick the most frequent variable, condition on
       both values, and recurse, memoising on the canonical clause set.
    """
    _check_probs(dnf, probs)
    with obs.span(
        "shannon.expand",
        variables=len(dnf.variables),
        clauses=len(dnf.clauses),
    ):
        memo: Dict[FrozenSet, Fraction] = {}
        stats = {"nodes": 0, "memo_hits": 0, "component_splits": 0}
        result = _prob(dnf, probs, memo, stats)
        obs.inc("shannon.nodes", stats["nodes"])
        obs.inc("shannon.memo_hits", stats["memo_hits"])
        obs.inc("shannon.component_splits", stats["component_splits"])
        return result


def _prob(
    dnf: DNF,
    probs: ProbMap,
    memo: Dict[FrozenSet, Fraction],
    stats: Dict[str, int],
) -> Fraction:
    checkpoint()
    if dnf.is_false():
        return Fraction(0)
    if dnf.is_true():
        return Fraction(1)
    key = dnf.key()
    cached = memo.get(key)
    if cached is not None:
        stats["memo_hits"] += 1
        return cached

    stats["nodes"] += 1
    components = _components(dnf)
    if len(components) > 1:
        stats["component_splits"] += 1
        miss = Fraction(1)
        for component in components:
            miss *= 1 - _prob(component, probs, memo, stats)
        result = 1 - miss
    else:
        variable = _pivot(dnf)
        p = probs[variable]
        result = p * _prob(dnf.restrict(variable, True), probs, memo, stats) + (
            1 - p
        ) * _prob(dnf.restrict(variable, False), probs, memo, stats)
    memo[key] = result
    return result


def _components(dnf: DNF) -> List[DNF]:
    """Partition clauses into variable-connected components."""
    parent: Dict[Variable, Variable] = {}

    def find(x: Variable) -> Variable:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: Variable, b: Variable) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for clause in dnf.clauses:
        variables = list(clause.variables)
        for variable in variables:
            parent.setdefault(variable, variable)
        for first, second in zip(variables, variables[1:]):
            union(first, second)

    groups: Dict[Variable, List[Clause]] = {}
    for clause in dnf.clauses:
        root = find(next(iter(clause.variables)))
        groups.setdefault(root, []).append(clause)
    return [DNF(clauses) for clauses in groups.values()]


def _pivot(dnf: DNF) -> Variable:
    """Most frequent variable — a standard branching heuristic."""
    counts: Dict[Variable, int] = {}
    for clause in dnf.clauses:
        for variable in clause.variables:
            counts[variable] = counts.get(variable, 0) + 1
    return max(counts, key=lambda v: (counts[v], repr(v)))


def count_models(dnf: DNF, variables: Optional[int] = None) -> int:
    """#DNF: the number of satisfying assignments.

    ``variables`` gives the total number of variables the count is over;
    it defaults to the variables occurring in the formula.  Computed as
    ``Pr[dnf] * 2 ** m`` under the uniform distribution — exact because
    the probability engine works in rationals.
    """
    occurring = len(dnf.variables)
    if variables is None:
        variables = occurring
    if variables < occurring:
        raise ProbabilityError(
            f"count_models over {variables} variables, but the formula "
            f"mentions {occurring}"
        )
    half = Fraction(1, 2)
    probability = probability_exact(dnf, {v: half for v in dnf.variables})
    count = probability * (1 << variables)
    assert count.denominator == 1
    return count.numerator
