"""Propositional literals, clauses, and DNF/CNF containers.

Variables are arbitrary hashable labels.  The reliability layer uses
ground :class:`~repro.relational.atoms.Atom` objects as variables, so a
grounded query formula talks directly about the database's atomic
statements — mirroring the paper's proof of Theorem 5.4, where atomic
statements *are* the propositional variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Tuple,
)

from repro.util.errors import QueryError

Variable = Hashable


@dataclass(frozen=True, order=False)
class Literal:
    """A propositional literal: a variable with a polarity."""

    variable: Variable
    positive: bool = True

    def negate(self) -> "Literal":
        return Literal(self.variable, not self.positive)

    def satisfied_by(self, assignment: Mapping[Variable, bool]) -> bool:
        return assignment[self.variable] == self.positive

    def __str__(self) -> str:
        sign = "" if self.positive else "~"
        return f"{sign}{self.variable}"


def pos(variable: Variable) -> Literal:
    """Positive literal."""
    return Literal(variable, True)


def neg_lit(variable: Variable) -> Literal:
    """Negative literal."""
    return Literal(variable, False)


class Clause:
    """A conjunction (in DNF) or disjunction (in CNF) of literals.

    Stored as a mapping variable → polarity; constructing a clause that
    contains both polarities of one variable yields a *contradictory*
    clause (for DNF) — callers check :attr:`contradictory` and usually
    drop such clauses.
    """

    __slots__ = ("_polarity", "contradictory", "_hash")

    def __init__(self, literals: Iterable[Literal]):
        polarity: Dict[Variable, bool] = {}
        contradictory = False
        for literal in literals:
            known = polarity.get(literal.variable)
            if known is None:
                polarity[literal.variable] = literal.positive
            elif known != literal.positive:
                contradictory = True
        self._polarity: Mapping[Variable, bool] = polarity
        self.contradictory = contradictory
        self._hash: Optional[int] = None

    def __iter__(self) -> Iterator[Literal]:
        for variable, positive in self._polarity.items():
            yield Literal(variable, positive)

    def __len__(self) -> int:
        return len(self._polarity)

    def __contains__(self, variable: Variable) -> bool:
        return variable in self._polarity

    def polarity(self, variable: Variable) -> bool:
        """Polarity of ``variable`` in this clause."""
        try:
            return self._polarity[variable]
        except KeyError:
            raise QueryError(f"variable {variable!r} not in clause") from None

    @property
    def variables(self) -> AbstractSet[Variable]:
        return self._polarity.keys()

    def satisfied_by(self, assignment: Mapping[Variable, bool]) -> bool:
        """Conjunctive reading: every literal holds."""
        if self.contradictory:
            return False
        return all(
            assignment[var] == positive
            for var, positive in self._polarity.items()
        )

    def restrict(self, variable: Variable, value: bool) -> Optional["Clause"]:
        """Condition on ``variable = value`` (conjunctive reading).

        Returns ``None`` when the clause becomes false, otherwise the
        clause with the variable removed.
        """
        if self.contradictory:
            return None
        known = self._polarity.get(variable)
        if known is None:
            return self
        if known != value:
            return None
        remaining = [
            Literal(var, positive)
            for var, positive in self._polarity.items()
            if var != variable
        ]
        return Clause(remaining)

    def key(self) -> FrozenSet[Tuple[Variable, bool]]:
        """Canonical hashable form."""
        return frozenset(self._polarity.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return self.key() == other.key() and self.contradictory == other.contradictory

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.key(), self.contradictory))
        return self._hash

    def __str__(self) -> str:
        if not self._polarity:
            return "()"
        return " & ".join(str(l) for l in sorted(self, key=repr))


class DNF:
    """A disjunction of conjunctive clauses.

    Contradictory clauses are dropped and duplicates merged on
    construction.  An empty DNF is identically false; a DNF containing an
    empty clause is identically true.
    """

    __slots__ = ("clauses", "_variables")

    def __init__(self, clauses: Iterable[Clause]):
        seen = {}
        for clause in clauses:
            if clause.contradictory:
                continue
            seen.setdefault(clause.key(), clause)
        self.clauses: Tuple[Clause, ...] = tuple(seen.values())
        self._variables: Optional[FrozenSet[Variable]] = None

    @classmethod
    def of(cls, *clause_literals: Iterable[Literal]) -> "DNF":
        """Build from iterables of literals: ``DNF.of([a, ~b], [c])``."""
        return cls(Clause(lits) for lits in clause_literals)

    @classmethod
    def false(cls) -> "DNF":
        return cls(())

    @classmethod
    def true(cls) -> "DNF":
        return cls((Clause(()),))

    @property
    def variables(self) -> FrozenSet[Variable]:
        if self._variables is None:
            result = set()
            for clause in self.clauses:
                result.update(clause.variables)
            self._variables = frozenset(result)
        return self._variables

    @property
    def width(self) -> int:
        """The ``k`` of kDNF: the largest clause size."""
        return max((len(c) for c in self.clauses), default=0)

    def is_false(self) -> bool:
        return not self.clauses

    def is_true(self) -> bool:
        return any(len(clause) == 0 for clause in self.clauses)

    def satisfied_by(self, assignment: Mapping[Variable, bool]) -> bool:
        return any(clause.satisfied_by(assignment) for clause in self.clauses)

    def satisfied_count(self, assignment: Mapping[Variable, bool]) -> int:
        """Number of clauses the assignment satisfies (Karp–Luby coverage)."""
        return sum(
            1 for clause in self.clauses if clause.satisfied_by(assignment)
        )

    def restrict(self, variable: Variable, value: bool) -> "DNF":
        """Condition the whole DNF on ``variable = value``."""
        restricted = []
        for clause in self.clauses:
            outcome = clause.restrict(variable, value)
            if outcome is not None:
                restricted.append(outcome)
        return DNF(restricted)

    def or_with(self, other: "DNF") -> "DNF":
        """Disjunction of two DNFs (clause union)."""
        return DNF(self.clauses + other.clauses)

    def and_with(self, other: "DNF") -> "DNF":
        """Conjunction of two DNFs by clause-product distribution."""
        combined = []
        for left in self.clauses:
            for right in other.clauses:
                combined.append(Clause(list(left) + list(right)))
        return DNF(combined)

    def key(self) -> FrozenSet[FrozenSet[Tuple[Variable, bool]]]:
        """Canonical hashable form (used as a memo key)."""
        return frozenset(clause.key() for clause in self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DNF):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __str__(self) -> str:
        if self.is_false():
            return "false"
        return " | ".join(f"({c})" for c in self.clauses)

    def __repr__(self) -> str:
        return (
            f"DNF({len(self.clauses)} clauses, {len(self.variables)} vars, "
            f"width {self.width})"
        )


class CNF:
    """A conjunction of disjunctive clauses (used by workload generators).

    Mainly a carrier for 2-CNF instances of the Proposition 3.2 reduction;
    :meth:`negation_dnf` produces the DNF of the negation (clause-wise De
    Morgan), and :meth:`to_dnf` distributes into an equivalent DNF.
    """

    __slots__ = ("clauses",)

    def __init__(self, clauses: Iterable[Clause]):
        self.clauses: Tuple[Clause, ...] = tuple(clauses)

    @classmethod
    def of(cls, *clause_literals: Iterable[Literal]) -> "CNF":
        return cls(Clause(lits) for lits in clause_literals)

    @property
    def variables(self) -> FrozenSet[Variable]:
        result = set()
        for clause in self.clauses:
            result.update(clause.variables)
        return frozenset(result)

    def satisfied_by(self, assignment: Mapping[Variable, bool]) -> bool:
        # Disjunctive reading of each clause.
        for clause in self.clauses:
            if not any(lit.satisfied_by(assignment) for lit in clause):
                return False
        return True

    def negation_dnf(self) -> DNF:
        """DNF of the negation: one conjunctive clause per CNF clause."""
        return DNF(
            Clause([lit.negate() for lit in clause]) for clause in self.clauses
        )

    def to_dnf(self) -> DNF:
        """Distribute into an equivalent DNF (exponential in general)."""
        result = DNF.true()
        for clause in self.clauses:
            step = DNF(Clause([lit]) for lit in clause)
            result = result.and_with(step)
        return result

    def __len__(self) -> int:
        return len(self.clauses)

    def __str__(self) -> str:
        if not self.clauses:
            return "true"
        parts = []
        for clause in self.clauses:
            inner = " | ".join(str(l) for l in sorted(clause, key=repr))
            parts.append(f"({inner})")
        return " & ".join(parts)
