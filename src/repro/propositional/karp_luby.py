"""The Karp–Luby FPTRAS for (weighted) DNF probability.

Karp and Luby (FOCS 1983) gave a fully polynomial-time randomized
approximation scheme for #DNF; the same importance-sampling construction
applies verbatim to ``Prob-DNF`` with independent variable probabilities,
which is the form the paper uses in Theorems 5.3/5.4.

The estimator works in the *clause cover* space.  Write ``W_i`` for the
probability that clause ``i``'s literals all hold and ``W = sum(W_i)``.
Sampling a pair ``(i, sigma)`` with ``i ~ W_i / W`` and ``sigma`` drawn
from the variable distribution conditioned on clause ``i`` being true
gives a uniform-over-cover sample.  Two classic unbiased estimators of
``Pr[dnf] / W`` are implemented:

* ``coverage`` (the "self-adjusting" estimator): ``X = 1 / #covered``,
  where ``#covered`` is the number of clauses ``sigma`` satisfies.  Always
  in ``[1/m, 1]``, so relative error concentrates with
  ``t = O(m log(1/delta) / eps^2)`` samples.
* ``canonical``: ``X = [i is the lowest-index clause satisfied by sigma]``.
  Same expectation, slightly higher variance, simpler analysis.

Both yield ``Pr[dnf] = W * E[X]``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro import obs
from repro.kernels.bitops import dyadic_bits
from repro.kernels.plan import compile_dnf_plan
from repro.kernels.sampling import (
    KlPlan,
    sample_kl_batches,
    sample_naive_batches,
)
from repro.propositional.formula import DNF, Variable
from repro.runtime.budget import checkpoint
from repro.runtime.preflight import preflight_samples
from repro.util.errors import ProbabilityError, QueryError
from repro.util.rng import Seed, as_rng

ProbLike = Union[float, Fraction]
RngLike = Union[random.Random, Seed]

# Convergence traces partition the sample budget into at most this many
# running-estimate events (see docs/OBSERVABILITY.md).
TRACE_BATCHES = 64

# The scalar fallback loops charge the runtime budget in chunks of this
# many samples; BudgetExceeded is accurate to within one chunk.
CHECKPOINT_CHUNK = 64


def _clause_weights(dnf: DNF, probs: Mapping[Variable, ProbLike]) -> List[float]:
    weights = []
    for clause in dnf.clauses:
        weight = 1.0
        for literal in clause:
            p = float(probs[literal.variable])
            weight *= p if literal.positive else 1.0 - p
        weights.append(weight)
    return weights


def sample_count(
    clause_count: int, epsilon: float, delta: float, method: str = "coverage"
) -> int:
    """Samples sufficient for a relative (epsilon, delta) guarantee.

    For the coverage estimator the per-sample value lies in ``[1/m, 1]``
    with mean ``mu >= 1/m``; the zero–one estimator theorem of Karp–Luby
    (Lemma 5.11 in the paper, applied with values scaled into ``[0, 1]``)
    gives ``t >= 9 m ln(2/delta) / (2 eps^2)``.  The canonical estimator is
    a Bernoulli variable with the same mean, so the same bound applies.
    """
    if epsilon <= 0 or delta <= 0 or delta >= 1:
        raise ProbabilityError(
            f"need epsilon > 0 and 0 < delta < 1, got {epsilon}, {delta}"
        )
    if method not in ("coverage", "canonical"):
        raise QueryError(f"unknown Karp-Luby method {method!r}")
    m = max(clause_count, 1)
    return max(1, math.ceil(9.0 * m * math.log(2.0 / delta) / (2.0 * epsilon**2)))


@dataclass(frozen=True)
class KarpLubyEstimate:
    """Result of a Karp–Luby run: the estimate plus diagnostics."""

    estimate: float
    samples: int
    clause_weight_total: float
    method: str

    def __float__(self) -> float:
        return self.estimate


def karp_luby(
    dnf: DNF,
    probs: Mapping[Variable, ProbLike],
    epsilon: float,
    delta: float,
    rng: RngLike,
    method: str = "coverage",
    adaptive: bool = False,
) -> KarpLubyEstimate:
    """FPTRAS for ``Pr[dnf]`` with relative (epsilon, delta) guarantee.

    Runtime is ``O(t * m * k)`` with ``t = sample_count(m, eps, delta)`` —
    polynomial in the formula size, ``1/epsilon`` and ``log(1/delta)``,
    which is what "fully polynomial" demands.  ``adaptive`` switches
    the batched kernel to the sequential empirical-Bernstein stopper
    (:mod:`repro.runtime.adaptive`): the same relative guarantee, but
    the run stops as soon as the empirical variance of the coverage
    estimator certifies it, with ``sample_count`` as the never-exceeded
    worst case.
    """
    samples = sample_count(len(dnf.clauses), epsilon, delta, method)
    return karp_luby_samples(
        dnf,
        probs,
        samples,
        rng,
        method,
        epsilon=epsilon,
        delta=delta,
        adaptive=adaptive,
    )


def karp_luby_samples(
    dnf: DNF,
    probs: Mapping[Variable, ProbLike],
    samples: int,
    rng: RngLike,
    method: str = "coverage",
    kernel: str = "batched",
    shards: int = 1,
    epsilon: Optional[float] = None,
    delta: Optional[float] = None,
    adaptive: bool = False,
) -> KarpLubyEstimate:
    """Karp–Luby with an explicit sample budget (for benchmark sweeps).

    ``kernel="batched"`` (the default) draws and evaluates samples in
    bit-parallel column batches (see docs/PERFORMANCE.md);
    ``kernel="scalar"`` keeps the per-sample loop for comparison.
    ``shards`` fans batches out over worker processes; results are
    identical for a fixed seed regardless of shard count.

    ``adaptive`` treats ``samples`` as the worst case and stops at the
    first canonical checkpoint where the empirical-Bernstein interval
    certifies a relative ``epsilon`` at confidence ``delta`` (both then
    required); it needs the batched kernel and runs its own fixed
    block schedule sequentially (``shards`` is ignored).
    """
    if method not in ("coverage", "canonical"):
        raise QueryError(f"unknown Karp-Luby method {method!r}")
    if kernel not in ("batched", "scalar"):
        raise QueryError(f"unknown Karp-Luby kernel {kernel!r}")
    if samples <= 0:
        raise ProbabilityError(f"sample budget must be positive, got {samples}")
    if adaptive:
        if kernel != "batched":
            raise QueryError(
                "adaptive Karp-Luby requires the batched kernel"
            )
        if epsilon is None or delta is None:
            raise ProbabilityError(
                "adaptive Karp-Luby needs epsilon and delta to stop on"
            )
    if dnf.is_true():
        return KarpLubyEstimate(1.0, 0, 1.0, method)
    if dnf.is_false():
        return KarpLubyEstimate(0.0, 0, 0.0, method)
    # Refuse up front when the active budget cannot fit the run.
    preflight_samples(samples)
    for variable in dnf.variables:
        if variable not in probs:
            raise ProbabilityError(f"no probability given for {variable!r}")
    rng = as_rng(rng)

    weights = _clause_weights(dnf, probs)
    total_weight = sum(weights)
    if total_weight <= 0.0:
        return KarpLubyEstimate(0.0, 0, 0.0, method)

    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    variables = sorted(dnf.variables, key=repr)
    float_probs = {v: float(probs[v]) for v in variables}

    obs.inc("karp_luby.runs")
    obs.gauge("karp_luby.cover_weight", total_weight)
    obs.gauge("karp_luby.clauses", len(dnf.clauses))
    trace = obs.enabled()
    stride = max(1, samples // TRACE_BATCHES)

    if kernel == "batched":
        plan = compile_dnf_plan(dnf)
        kl_plan = KlPlan(
            plan.clauses,
            tuple(dyadic_bits(float_probs[v]) for v in plan.variables),
            cumulative,
            total_weight,
            method,
        )
        if adaptive:
            from repro.runtime.adaptive import adaptive_kl_accumulate

            run = adaptive_kl_accumulate(
                kl_plan, rng, samples, epsilon, delta
            )
            obs.inc("karp_luby.samples", run.drawn)
            estimate = total_weight * run.mean
            return KarpLubyEstimate(
                min(estimate, 1.0), run.drawn, total_weight, method
            )
        accumulator = sample_kl_batches(kl_plan, rng, samples, shards=shards)
        obs.inc("karp_luby.samples", samples)
        estimate = total_weight * accumulator / samples
        return KarpLubyEstimate(
            min(estimate, 1.0), samples, total_weight, method
        )

    accumulator = 0.0
    pending = 0
    for drawn in range(1, samples + 1):
        pending += 1
        if pending >= CHECKPOINT_CHUNK or drawn == samples:
            checkpoint(samples=pending)
            pending = 0
        # Pick a clause proportionally to its weight.
        target = rng.random() * total_weight
        index = _bisect(cumulative, target)
        clause = dnf.clauses[index]
        # Sample an assignment conditioned on that clause being true.
        assignment: Dict[Variable, bool] = {}
        for variable in variables:
            if variable in clause:
                assignment[variable] = clause.polarity(variable)
            else:
                assignment[variable] = rng.random() < float_probs[variable]
        if method == "coverage":
            covered = dnf.satisfied_count(assignment)
            accumulator += 1.0 / covered
        else:
            first = _first_satisfied(dnf, assignment)
            accumulator += 1.0 if first == index else 0.0
        if trace and (drawn % stride == 0 or drawn == samples):
            obs.event(
                "karp_luby.batch",
                samples=drawn,
                estimate=min(total_weight * accumulator / drawn, 1.0),
                cover_weight=total_weight,
            )

    obs.inc("karp_luby.samples", samples)
    estimate = total_weight * accumulator / samples
    return KarpLubyEstimate(min(estimate, 1.0), samples, total_weight, method)


def _bisect(cumulative: Sequence[float], target: float) -> int:
    low, high = 0, len(cumulative) - 1
    while low < high:
        mid = (low + high) // 2
        if cumulative[mid] <= target:
            low = mid + 1
        else:
            high = mid
    return low


def _first_satisfied(dnf: DNF, assignment: Mapping[Variable, bool]) -> int:
    for index, clause in enumerate(dnf.clauses):
        if clause.satisfied_by(assignment):
            return index
    raise AssertionError("sampled assignment satisfies no clause")


def naive_probability_estimate(
    dnf: DNF,
    probs: Mapping[Variable, ProbLike],
    samples: int,
    rng: RngLike,
    kernel: str = "batched",
    shards: int = 1,
) -> float:
    """Plain Monte Carlo baseline: sample assignments, count hits.

    Gives an *additive* guarantee by Hoeffding; its relative error on
    small-probability formulas blows up — the failure mode Karp–Luby was
    invented to avoid and the contrast measured in experiment E9.
    """
    if kernel not in ("batched", "scalar"):
        raise QueryError(f"unknown sampling kernel {kernel!r}")
    if samples <= 0:
        raise ProbabilityError(f"sample budget must be positive, got {samples}")
    rng = as_rng(rng)
    variables = sorted(dnf.variables, key=repr)
    float_probs = {v: float(probs[v]) for v in variables}
    if kernel == "batched":
        plan = compile_dnf_plan(dnf)
        bits = tuple(dyadic_bits(float_probs[v]) for v in plan.variables)
        return sample_naive_batches(
            plan.clauses, bits, rng, samples, shards=shards
        )
    trace = obs.enabled()
    stride = max(1, samples // TRACE_BATCHES)
    hits = 0
    pending = 0
    for drawn in range(1, samples + 1):
        pending += 1
        if pending >= CHECKPOINT_CHUNK or drawn == samples:
            checkpoint(samples=pending)
            pending = 0
        assignment = {
            variable: rng.random() < float_probs[variable]
            for variable in variables
        }
        if dnf.satisfied_by(assignment):
            hits += 1
        if trace and (drawn % stride == 0 or drawn == samples):
            obs.event("naive_mc.batch", samples=drawn, estimate=hits / drawn)
    obs.inc("naive_mc.samples", samples)
    return hits / samples
