"""The stopping-rule (AA) estimator of Dagum–Karp–Luby–Ross.

Karp–Luby's FPTRAS (Theorem 5.2/5.3 of the paper) fixes its sample count
*a priori* from the clause count ``m``.  The later "optimal Monte Carlo
estimation" algorithm by Dagum, Karp, Luby and Ross adapts the sample
count to the *unknown mean itself*: sample until the running sum of the
``[0, 1]``-valued estimator crosses ``Upsilon = 1 + 4 (e - 2)
ln(2/delta) (1 + epsilon) / epsilon^2``; then ``Upsilon / N`` (``N`` =
samples used) is within relative ``epsilon`` of the mean with
probability ``1 - delta`` — using ``O(Upsilon / mu)`` samples, which is
optimal up to constants and often far below the fixed Karp–Luby budget
when the target probability is large.

Here the underlying ``[0, 1]`` variable is the Karp–Luby coverage sample
``1 / #covered`` (mean ``Pr[dnf] / W``), so the stopping rule composes
with the same importance sampler and inherits its rare-event robustness.
Benchmarked against the fixed-budget scheme in
``bench_e4_fptras_kdnf.py``'s companion test below and compared in the
E4 ablation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Mapping

from repro.propositional.formula import DNF, Variable
from repro.propositional.karp_luby import ProbLike, _clause_weights
from repro.util.errors import ProbabilityError


@dataclass(frozen=True)
class StoppingRuleEstimate:
    """Result of a stopping-rule run."""

    estimate: float
    samples: int
    threshold: float

    def __float__(self) -> float:
        return self.estimate


def stopping_rule_threshold(epsilon: float, delta: float) -> float:
    """``Upsilon = 1 + 4 (e - 2) ln(2/delta) (1 + eps) / eps^2``."""
    if epsilon <= 0 or epsilon >= 1 or delta <= 0 or delta >= 1:
        raise ProbabilityError(
            f"need 0 < epsilon < 1 and 0 < delta < 1, got {epsilon}, {delta}"
        )
    return 1.0 + 4.0 * (math.e - 2.0) * math.log(2.0 / delta) * (
        1.0 + epsilon
    ) / (epsilon**2)


def karp_luby_stopping_rule(
    dnf: DNF,
    probs: Mapping[Variable, ProbLike],
    epsilon: float,
    delta: float,
    rng: random.Random,
    max_samples: int = 50_000_000,
) -> StoppingRuleEstimate:
    """Relative (epsilon, delta) estimate of ``Pr[dnf]``, adaptive budget.

    Draws Karp–Luby coverage samples until their sum crosses the DKLR
    threshold.  Expected sample count is ``Upsilon * W / Pr[dnf] <=
    Upsilon * m`` — never worse than the fixed budget's ``m`` dependence,
    and much better when few clauses overlap.
    """
    if dnf.is_true():
        return StoppingRuleEstimate(1.0, 0, 0.0)
    if dnf.is_false():
        return StoppingRuleEstimate(0.0, 0, 0.0)
    for variable in dnf.variables:
        if variable not in probs:
            raise ProbabilityError(f"no probability given for {variable!r}")
    weights = _clause_weights(dnf, probs)
    total_weight = sum(weights)
    if total_weight <= 0.0:
        return StoppingRuleEstimate(0.0, 0, 0.0)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    variables = sorted(dnf.variables, key=repr)
    float_probs = {v: float(probs[v]) for v in variables}
    threshold = stopping_rule_threshold(epsilon, delta)

    total = 0.0
    samples = 0
    while total < threshold:
        samples += 1
        if samples > max_samples:
            raise ProbabilityError(
                f"stopping rule exceeded {max_samples} samples; "
                "the target probability is too small for this budget"
            )
        target = rng.random() * total_weight
        low, high = 0, len(cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] <= target:
                low = mid + 1
            else:
                high = mid
        clause = dnf.clauses[low]
        assignment = {}
        for variable in variables:
            if variable in clause:
                assignment[variable] = clause.polarity(variable)
            else:
                assignment[variable] = rng.random() < float_probs[variable]
        total += 1.0 / dnf.satisfied_count(assignment)

    mean = threshold / samples
    return StoppingRuleEstimate(
        min(total_weight * mean, 1.0), samples, threshold
    )
