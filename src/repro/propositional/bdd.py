"""Reduced ordered binary decision diagrams (ROBDDs) for DNF compilation.

A second exact engine beside the Shannon-expansion counter: compile the
(grounded) DNF once into a canonical ROBDD, then answer many questions
in time linear in the diagram —

* weighted probability (one bottom-up pass),
* model counting,
* *all* atom influences simultaneously (one upward + one downward pass,
  the classic Birnbaum-importance-on-BDD algorithm), where the
  conditioning-based approach costs two probability computations per
  atom.

This is the knowledge-compilation route modern probabilistic database
systems took after the complexity landscape of Grädel–Gurevich–Hirsch
made clear that per-query exact inference must exploit structure.

The implementation is a classic hash-consed ``ite``-style builder with
an apply-cache; variable order is the sorted order of the variables
(callers may pass their own).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.propositional.formula import DNF, Variable
from repro.util.errors import ProbabilityError, QueryError

# Terminal node ids.
ZERO = 0
ONE = 1


class BDD:
    """A reduced ordered BDD over a fixed variable order.

    Nodes are integers; ``0``/``1`` are the terminals, every other node
    is a triple ``(level, low, high)`` interned in :attr:`_unique`.
    """

    __slots__ = ("order", "_level", "_nodes", "_unique", "_apply_cache", "root")

    def __init__(self, order: Sequence[Variable]):
        if len(set(order)) != len(order):
            raise QueryError("variable order contains duplicates")
        self.order: Tuple[Variable, ...] = tuple(order)
        self._level: Dict[Variable, int] = {
            variable: index for index, variable in enumerate(self.order)
        }
        # node id -> (level, low, high); ids 0/1 reserved for terminals.
        self._nodes: List[Tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self.root = ZERO

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _make(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, variable: Variable) -> int:
        """The BDD of a single positive literal."""
        try:
            level = self._level[variable]
        except KeyError:
            raise QueryError(f"variable {variable!r} not in the order") from None
        return self._make(level, ZERO, ONE)

    def nvar(self, variable: Variable) -> int:
        """The BDD of a single negative literal."""
        level = self._level[variable]
        return self._make(level, ONE, ZERO)

    def _apply(self, op: str, left: int, right: int) -> int:
        if op == "and":
            if left == ZERO or right == ZERO:
                return ZERO
            if left == ONE:
                return right
            if right == ONE:
                return left
        elif op == "or":
            if left == ONE or right == ONE:
                return ONE
            if left == ZERO:
                return right
            if right == ZERO:
                return left
        else:
            raise QueryError(f"unknown BDD operation {op!r}")
        if left > right:
            left, right = right, left
        key = (op, left, right)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        l_level, l_low, l_high = self._nodes[left]
        r_level, r_low, r_high = self._nodes[right]
        if l_level == r_level:
            low = self._apply(op, l_low, r_low)
            high = self._apply(op, l_high, r_high)
            result = self._make(l_level, low, high)
        elif l_level < r_level:
            low = self._apply(op, l_low, right)
            high = self._apply(op, l_high, right)
            result = self._make(l_level, low, high)
        else:
            low = self._apply(op, left, r_low)
            high = self._apply(op, left, r_high)
            result = self._make(r_level, low, high)
        self._apply_cache[key] = result
        return result

    def conj(self, left: int, right: int) -> int:
        return self._apply("and", left, right)

    def disj(self, left: int, right: int) -> int:
        return self._apply("or", left, right)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """Number of internal nodes ever created (diagram size bound)."""
        return len(self._nodes) - 2

    def level_of(self, variable: Variable) -> Optional[int]:
        """The variable's level in the order, or ``None`` if absent.

        The delta engine uses this to bound a re-weighting pass: a
        probability change at level ``a`` can only alter the values of
        nodes at levels ``<= a`` (children sit strictly deeper).
        """
        return self._level.get(variable)

    def node(self, node_id: int) -> Tuple[int, int, int]:
        """The ``(level, low, high)`` triple of an internal node."""
        return self._nodes[node_id]

    def reachable_by_level(self, node: int) -> List[List[int]]:
        """Internal nodes reachable from ``node``, grouped by level.

        Index ``l`` of the result lists the reachable nodes at level
        ``l`` (possibly empty).  Terminals are excluded.  This is the
        delta engine's working set: a bottom-up value table over these
        nodes supports O(levels-above-the-change) re-evaluation.
        """
        levels: List[List[int]] = [[] for _ in self.order]
        seen = {ZERO, ONE}
        pending = [node]
        while pending:
            current = pending.pop()
            if current in seen:
                continue
            seen.add(current)
            level, low, high = self._nodes[current]
            levels[level].append(current)
            pending.append(low)
            pending.append(high)
        return levels

    def evaluate(self, node: int, assignment: Mapping[Variable, bool]) -> bool:
        while node not in (ZERO, ONE):
            level, low, high = self._nodes[node]
            node = high if assignment[self.order[level]] else low
        return node == ONE

    def probability(
        self, node: int, probs: Mapping[Variable, Fraction]
    ) -> Fraction:
        """Weighted probability of the function at ``node`` (exact)."""
        for variable in self.order:
            if variable not in probs:
                raise ProbabilityError(f"no probability for {variable!r}")
        cache: Dict[int, Fraction] = {ZERO: Fraction(0), ONE: Fraction(1)}

        def walk(current: int) -> Fraction:
            cached = cache.get(current)
            if cached is not None:
                return cached
            level, low, high = self._nodes[current]
            p = probs[self.order[level]]
            value = (1 - p) * walk(low) + p * walk(high)
            cache[current] = value
            return value

        return walk(node)

    def count_models(self, node: int) -> int:
        """Number of satisfying assignments over the full variable order."""
        half = Fraction(1, 2)
        probability = self.probability(node, {v: half for v in self.order})
        count = probability * (1 << len(self.order))
        assert count.denominator == 1
        return count.numerator

    def influences(
        self, node: int, probs: Mapping[Variable, Fraction]
    ) -> Dict[Variable, Fraction]:
        """All Birnbaum influences in two passes.

        ``I(x) = Pr[f | x=1] - Pr[f | x=0]``.  Upward pass computes each
        node's probability; downward pass accumulates each node's "path
        probability" (probability of reaching it); then
        ``I(x) = sum over x-nodes of reach(node) * (P(high) - P(low))``.
        """
        up: Dict[int, Fraction] = {ZERO: Fraction(0), ONE: Fraction(1)}

        def walk(current: int) -> Fraction:
            cached = up.get(current)
            if cached is not None:
                return cached
            level, low, high = self._nodes[current]
            p = probs[self.order[level]]
            value = (1 - p) * walk(low) + p * walk(high)
            up[current] = value
            return value

        walk(node)

        reach: Dict[int, Fraction] = {node: Fraction(1)}
        # Topological (by node id is NOT sorted by level; do BFS by level).
        pending = [node]
        ordered: List[int] = []
        seen = set()
        while pending:
            current = pending.pop()
            if current in seen or current in (ZERO, ONE):
                continue
            seen.add(current)
            ordered.append(current)
            _level, low, high = self._nodes[current]
            pending.append(low)
            pending.append(high)
        ordered.sort(key=lambda n: self._nodes[n][0])

        influences: Dict[Variable, Fraction] = {
            variable: Fraction(0) for variable in self.order
        }
        for current in ordered:
            level, low, high = self._nodes[current]
            variable = self.order[level]
            r = reach.get(current, Fraction(0))
            if r == 0:
                continue
            p = probs[variable]
            influences[variable] += r * (up[high] - up[low])
            reach[low] = reach.get(low, Fraction(0)) + r * (1 - p)
            reach[high] = reach.get(high, Fraction(0)) + r * p
        return influences


def compile_dnf(
    dnf: DNF, order: Optional[Sequence[Variable]] = None
) -> Tuple[BDD, int]:
    """Compile a DNF into a ROBDD; returns ``(diagram, root_node)``."""
    variables = (
        tuple(order) if order is not None else tuple(sorted(dnf.variables, key=repr))
    )
    diagram = BDD(variables)
    root = ZERO
    for clause in dnf.clauses:
        node = ONE
        for literal in sorted(clause, key=lambda l: repr(l.variable)):
            leaf = (
                diagram.var(literal.variable)
                if literal.positive
                else diagram.nvar(literal.variable)
            )
            node = diagram.conj(node, leaf)
        root = diagram.disj(root, node)
    diagram.root = root
    return diagram, root


def probability_via_bdd(
    dnf: DNF, probs: Mapping[Variable, Fraction]
) -> Fraction:
    """Exact ``Pr[dnf]`` through BDD compilation (alternative engine)."""
    if dnf.is_true():
        return Fraction(1)
    if dnf.is_false():
        return Fraction(0)
    diagram, root = compile_dnf(dnf)
    return diagram.probability(root, probs)


def influences_via_bdd(
    dnf: DNF, probs: Mapping[Variable, Fraction]
) -> Dict[Variable, Fraction]:
    """All Birnbaum influences of a DNF in one compilation + two passes."""
    if dnf.is_true() or dnf.is_false():
        return {v: Fraction(0) for v in dnf.variables}
    diagram, root = compile_dnf(dnf)
    return diagram.influences(root, probs)
