"""repro — query reliability on unreliable (probabilistic) databases.

A faithful, executable reproduction of *"The Complexity of Query
Reliability"* (Erich Grädel, Yuri Gurevich, Colin Hirsch; PODS 1998).

Quick start::

    import random
    from repro import (
        StructureBuilder, Atom, UnreliableDatabase, FOQuery,
        reliability, reliability_additive,
    )

    builder = StructureBuilder(["a", "b", "c"])
    builder.relation("E", 2).add("E", ("a", "b")).add("E", ("b", "c"))
    structure = builder.build()
    db = UnreliableDatabase(structure, {Atom("E", ("a", "c")): "1/10"})

    query = FOQuery("exists x y. E(x, y)")
    print(reliability(db, query))                       # exact Fraction
    rng = random.Random(0)
    print(reliability_additive(db, query, 0.01, 0.01, rng))  # Cor. 5.5

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduction results of every theorem.
"""

from repro.relational import (
    Atom,
    RelationSymbol,
    Structure,
    StructureBuilder,
    Vocabulary,
)
from repro.logic import (
    ConjunctiveQuery,
    DatalogProgram,
    DatalogQuery,
    FixpointQuery,
    FOQuery,
    Rule,
    parse,
)
from repro.logic.so import SOQuery, SOExists, SOForall
from repro.reliability import (
    UnreliableDatabase,
    analyze,
    answer_probabilities,
    atom_influence,
    estimate_answer_probabilities,
    estimate_reliability_hamming,
    existential_probability,
    expected_error,
    is_absolutely_reliable,
    most_fragile_atoms,
    padded_reliability,
    padded_truth_probability,
    reliability,
    reliability_additive,
    truth_probability,
    uniform_error,
    wrong_probability,
)
from repro.propositional import DNF, Clause, Literal, karp_luby
from repro.metafinite import (
    FunctionalDatabase,
    MetafiniteQuery,
    UnreliableFunctionalDatabase,
    ValueDistribution,
    metafinite_reliability,
)
from repro.util import as_rng, make_rng
from repro.util.errors import (
    BudgetExceeded,
    CostRefused,
    FallbackExhausted,
    ReproError,
)
from repro import obs
from repro import runtime
from repro.runtime import Budget, Deadline, RuntimeResult, run_with_fallback

__version__ = "1.0.0"

__all__ = [
    # relational substrate
    "Atom",
    "RelationSymbol",
    "Structure",
    "StructureBuilder",
    "Vocabulary",
    # query languages
    "ConjunctiveQuery",
    "DatalogProgram",
    "DatalogQuery",
    "FixpointQuery",
    "FOQuery",
    "Rule",
    "SOQuery",
    "SOExists",
    "SOForall",
    "parse",
    # reliability (the paper's core)
    "UnreliableDatabase",
    "uniform_error",
    "reliability",
    "expected_error",
    "wrong_probability",
    "truth_probability",
    "existential_probability",
    "reliability_additive",
    "estimate_reliability_hamming",
    "padded_reliability",
    "padded_truth_probability",
    "is_absolutely_reliable",
    "answer_probabilities",
    "estimate_answer_probabilities",
    "atom_influence",
    "most_fragile_atoms",
    "analyze",
    # propositional machinery
    "DNF",
    "Clause",
    "Literal",
    "karp_luby",
    # metafinite extension
    "FunctionalDatabase",
    "UnreliableFunctionalDatabase",
    "ValueDistribution",
    "MetafiniteQuery",
    "metafinite_reliability",
    # resilient runtime
    "runtime",
    "Budget",
    "Deadline",
    "RuntimeResult",
    "run_with_fallback",
    "ReproError",
    "BudgetExceeded",
    "CostRefused",
    "FallbackExhausted",
    # utilities
    "as_rng",
    "make_rng",
    "obs",
    "__version__",
]
