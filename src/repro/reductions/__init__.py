"""Executable hardness reductions from the paper's lower-bound proofs.

* :mod:`~repro.reductions.monotone2sat` — Proposition 3.2: counting
  satisfying assignments of a monotone 2-CNF reduces to computing the
  expected error of a fixed conjunctive query;
* :mod:`~repro.reductions.fourcolouring` — Lemma 5.9: graph
  4-colourability reduces to the complement of the absolute-reliability
  problem of a fixed existential query.

Each module provides the encoding, the fixed query, and a brute-force
solver for the source problem, so tests can verify the reduction's
correctness end to end on small instances.
"""

from repro.reductions.monotone2sat import (
    Monotone2CNF,
    encode_monotone_2cnf,
    count_satisfying_assignments,
    sat_count_via_expected_error,
)
from repro.reductions.fourcolouring import (
    encode_four_colouring,
    non_four_colouring_query,
    is_four_colourable,
    four_colourable_via_absolute_reliability,
)

__all__ = [
    "Monotone2CNF",
    "encode_monotone_2cnf",
    "count_satisfying_assignments",
    "sat_count_via_expected_error",
    "encode_four_colouring",
    "non_four_colouring_query",
    "is_four_colourable",
    "four_colourable_via_absolute_reliability",
]
