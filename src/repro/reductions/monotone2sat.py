"""Proposition 3.2: #MONOTONE-2SAT reduces to expected-error computation.

A monotone 2-CNF ``AND_i (Y_i | Z_i)`` is modelled as a structure
``(A, L, R, S)``: the universe is the disjoint union of clause names and
variable names; ``L u v`` / ``R u v`` say the left/right variable of
clause ``u`` is ``v``; ``S`` holds the variables assigned *false*.  The
observed database sets every variable false (``S`` = all variables) and
gives exactly the ``S``-atoms over variables error probability 1/2, so
the possible worlds are the uniform distribution over assignments.

With the conjunctive query

    psi = exists x y z. L(x, y) & R(x, z) & S(y) & S(z)

("some clause has both variables false", i.e. the assignment coded by
``S`` falsifies the formula) the observed database satisfies ``psi``, and

    H_psi(D) = Pr[B |= ~psi] = #SAT(phi) / 2 ** m.

So an ``H_psi`` oracle counts satisfying assignments — #P-hardness.
This module builds the reduction and a brute-force #SAT oracle so the
identity can be tested and benchmarked (experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.logic.conjunctive import ConjunctiveQuery, hardness_query
from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.exact import expected_error
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError


@dataclass(frozen=True)
class Monotone2CNF:
    """A 2-CNF without negations: clauses are pairs of variable names."""

    clauses: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if len(clause) != 2:
                raise QueryError(f"clause {clause!r} is not binary")

    @property
    def variables(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for left, right in self.clauses:
            seen.setdefault(left)
            seen.setdefault(right)
        return tuple(sorted(seen))

    def satisfied_by(self, true_variables: Iterable[str]) -> bool:
        truthy = set(true_variables)
        return all(
            left in truthy or right in truthy for left, right in self.clauses
        )

    def __str__(self) -> str:
        return " & ".join(f"({l} | {r})" for l, r in self.clauses)


def count_satisfying_assignments(formula: Monotone2CNF) -> int:
    """Brute-force #MONOTONE-2SAT — the oracle the reduction is checked
    against.  Exponential in the number of variables, as it must be."""
    variables = formula.variables
    count = 0
    for values in product((False, True), repeat=len(variables)):
        truthy = [v for v, value in zip(variables, values) if value]
        if formula.satisfied_by(truthy):
            count += 1
    return count


def encode_monotone_2cnf(formula: Monotone2CNF) -> UnreliableDatabase:
    """The Proposition 3.2 encoding ``(A, L, R, S)`` with its ``mu``.

    Clause elements are named ``("clause", i)`` and variables stay as
    their string names, keeping the two sorts disjoint.  Only the
    ``S``-atoms over variables are unreliable (probability 1/2) — note
    these are *positive* atoms in the observed database, so the instance
    lies inside de Rougemont's restricted model, as the paper remarks.
    """
    variables = formula.variables
    clause_ids = [("clause", index) for index in range(len(formula.clauses))]
    builder = StructureBuilder(list(clause_ids) + list(variables))
    builder.relation("L", 2)
    builder.relation("R", 2)
    builder.relation("S", 1)
    for clause_id, (left, right) in zip(clause_ids, formula.clauses):
        builder.add("L", (clause_id, left))
        builder.add("R", (clause_id, right))
    for variable in variables:
        builder.add("S", (variable,))
    structure = builder.build()
    mu = {Atom("S", (variable,)): Fraction(1, 2) for variable in variables}
    return UnreliableDatabase(structure, mu)


def sat_count_via_expected_error(
    formula: Monotone2CNF, method: str = "auto"
) -> int:
    """#SAT computed through the reliability reduction.

    Runs the exact reliability engine on the encoded database and
    rescales: ``#SAT = (1 - H_psi) ... `` — precisely,
    ``H_psi = Pr[~psi] = #SAT / 2 ** m``, so ``#SAT = H_psi * 2 ** m``.
    """
    db = encode_monotone_2cnf(formula)
    query = hardness_query()
    h = expected_error(db, query.to_fo_query(), method=method)
    count = h * (1 << len(formula.variables))
    if count.denominator != 1:
        raise AssertionError(
            f"reduction identity violated: H * 2^m = {count} is not integral"
        )
    return count.numerator


def reduction_query() -> ConjunctiveQuery:
    """The fixed conjunctive query of Proposition 3.2 (re-exported)."""
    return hardness_query()
