"""Lemma 5.9: 4-colourability reduces to (the complement of) AR_psi.

Vocabulary: edge relation ``E`` plus two unary colour-bit relations
``R1, R2`` — together the four colour codes.  The query

    psi = exists x y. E(x, y) & (R1(x) <-> R1(y)) & (R2(x) <-> R2(y))

says some edge is monochromatic, i.e. ``(R1, R2)`` is *not* a proper
4-colouring.  Encoding a graph with ``R1 = R2 = empty`` (all vertices the
same colour) and error probability 1/2 on every colour atom makes the
possible worlds the uniform distribution over colourings; the observed
database satisfies ``psi`` (the paper's footnote: provided ``E`` is
nonempty), and

    G is 4-colourable  <=>  D not in AR_psi

because a reliability below 1 means some world falsifies ``psi`` — a
proper colouring.  Since 4-colourability restricted to the graphs where
it is NP-hard (e.g. via planarity-free constructions) is NP-complete,
``AR_psi`` is coNP-hard for this fixed existential query.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.logic.evaluator import FOQuery
from repro.logic.parser import parse
from repro.relational.atoms import Atom
from repro.relational.builder import graph_structure
from repro.reliability.absolute import is_absolutely_reliable
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError


def non_four_colouring_query() -> FOQuery:
    """The fixed existential query of Lemma 5.9."""
    return FOQuery(
        parse(
            "exists x y. E(x, y) & (R1(x) <-> R1(y)) & (R2(x) <-> R2(y))"
        )
    )


def encode_four_colouring(
    nodes: Sequence[Any], edges: Iterable[Tuple[Any, Any]]
) -> UnreliableDatabase:
    """The Lemma 5.9 encoding of a graph as an unreliable database.

    Edges are certain (``mu = 0``); each colour atom ``R_i(v)`` has error
    probability 1/2, so worlds are uniform over the ``4 ** n`` colourings.
    """
    edges = list(edges)
    if not edges:
        raise QueryError(
            "the Lemma 5.9 reduction needs at least one edge "
            "(the paper's footnote 2 quietly ignores empty graphs)"
        )
    structure = graph_structure(
        nodes, edges, symmetric=True, extra_unary=("R1", "R2")
    )
    mu: Dict[Atom, Fraction] = {}
    for relation in ("R1", "R2"):
        for node in nodes:
            mu[Atom(relation, (node,))] = Fraction(1, 2)
    return UnreliableDatabase(structure, mu)


def is_four_colourable(
    nodes: Sequence[Any], edges: Iterable[Tuple[Any, Any]], colours: int = 4
) -> bool:
    """Brute-force graph colouring by backtracking (the test oracle)."""
    nodes = list(nodes)
    adjacency: Dict[Any, List[Any]] = {node: [] for node in nodes}
    for u, v in edges:
        if u == v:
            return False
        adjacency[u].append(v)
        adjacency[v].append(u)
    # Order by degree (descending) to fail fast.
    order = sorted(nodes, key=lambda n: -len(adjacency[n]))
    assignment: Dict[Any, int] = {}

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        node = order[index]
        used = {
            assignment[other]
            for other in adjacency[node]
            if other in assignment
        }
        for colour in range(colours):
            if colour in used:
                continue
            assignment[node] = colour
            if backtrack(index + 1):
                return True
            del assignment[node]
        return False

    return backtrack(0)


def four_colourable_via_absolute_reliability(
    nodes: Sequence[Any],
    edges: Iterable[Tuple[Any, Any]],
    method: str = "auto",
) -> bool:
    """Decide 4-colourability through the reliability reduction.

    ``G`` is 4-colourable iff the encoded database is *not* absolutely
    reliable for the non-4-colouring query — the equivalence the lemma's
    proof establishes, and which the tests verify against
    :func:`is_four_colourable`.
    """
    db = encode_four_colouring(nodes, list(edges))
    return not is_absolutely_reliable(db, non_four_colouring_query(), method)
