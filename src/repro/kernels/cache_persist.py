"""The file-backed persistence tier of the compilation cache.

The in-memory LRU (:mod:`repro.kernels.cache`) dies with the process,
so every new CLI invocation — and every ``repro.serve`` worker booted
in a fresh interpreter — recompiles every grounded DNF and bitmask
plan from scratch.  Compiled plans are pure artefacts of the
``(database fingerprint, query, kind)`` triple (the Dalvi–Suciu
lesson: plans are reusable per (query, schema)), so this module stores
them on disk and lets a second process start warm.

Design mirrors the costmodel calibration-file contract
(:mod:`repro.runtime.costmodel`): **a bad file never takes a run
down.**  Every envelope is schema-versioned; corrupt, truncated,
version-mismatched, foreign, or concurrently-half-written files are
counted (``kernels.cache.persist.invalid``) and ignored — the caller
falls back to a cold compile exactly as if the file were absent.

Storage format: one pickle file per entry holding an envelope dict
``{"version": PERSIST_VERSION, "key": key, "value": value}``.  The
file name is a SHA-256 digest of a *stable* rendering of the key
(frozensets are sorted — their iteration order is per-process), but
the digest is only a locator: on load the unpickled key is compared
for **equality** against the requested key, so hash collisions cannot
alias two compilations, the same guarantee the memory tier makes.
Writes go to a unique temp file in the same directory followed by an
atomic ``os.replace``, so readers racing a writer see the old file or
the new file, never a torn one.

Counters (see docs/OBSERVABILITY.md):

* ``kernels.cache.persist.hits`` / ``.misses`` — disk lookups;
* ``kernels.cache.persist.invalid`` — unreadable/stale files skipped;
* ``kernels.cache.persist.stores`` — envelopes written;
* ``kernels.cache.persist.evicted`` — files removed by :meth:`gc`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from fractions import Fraction
from typing import Any, Hashable, List, Optional, Tuple

from repro import obs

__all__ = [
    "PERSIST_VERSION",
    "PERSISTABLE_KINDS",
    "ENV_CACHE_DIR",
    "PersistentCache",
    "configure",
    "deactivate",
    "active",
    "configure_from_env",
]

#: Envelope schema version.  Files with any other version are *stale*
#: and ignored (cold-compile fallback), never reinterpreted.
PERSIST_VERSION = 1

#: Key kinds worth persisting: whole compiled artefacts that are pure
#: functions of the key.  Everything else stays memory-only.
PERSISTABLE_KINDS = frozenset(
    {
        "grounding",
        "relevant_atoms",
        "truth_plan",
        "hamming_plan",
        "dnf_plan",
        "delta_bdd",
    }
)

#: Environment variable naming the default cache directory; the CLI
#: ``--cache-dir`` flag overrides it, an empty value disables it.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

_MISSING = object()


def _stable_token(obj: Any) -> str:
    """A process-independent string rendering of a cache key.

    ``repr`` of frozensets (and anything iterating a hash table)
    depends on the per-process string hash seed, so containers are
    rendered with sorted members.  Structures are rendered from their
    sorted relation rows.  The token only has to be *stable* — key
    equality is re-checked on load, so a collision costs a miss, never
    a wrong answer.
    """
    from repro.relational.structure import Structure

    if isinstance(obj, frozenset):
        return "{" + ",".join(sorted(_stable_token(x) for x in obj)) + "}"
    if isinstance(obj, tuple):
        return "(" + ",".join(_stable_token(x) for x in obj) + ")"
    if isinstance(obj, Structure):
        rows = ";".join(
            f"{name}:" + ",".join(sorted(map(repr, obj.relation(name))))
            for name in sorted(
                symbol.name for symbol in obj.vocabulary
            )
        )
        return f"Structure[{obj.universe!r}|{rows}]"
    if isinstance(obj, Fraction):
        return f"{obj.numerator}/{obj.denominator}"
    return repr(obj)


class PersistentCache:
    """A directory of schema-versioned compilation envelopes."""

    def __init__(self, directory: str):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._counter = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #

    def path_for(self, key: Hashable) -> str:
        kind = key[0] if isinstance(key, tuple) and key else "entry"
        digest = hashlib.sha256(
            _stable_token(key).encode("utf-8", "backslashreplace")
        ).hexdigest()[:40]
        return os.path.join(self.directory, f"{kind}-{digest}.pkl")

    def _temp_path(self, final: str) -> str:
        with self._lock:
            self._counter += 1
            serial = self._counter
        return f"{final}.tmp.{os.getpid()}.{serial}"

    # ------------------------------------------------------------------ #
    # load / store
    # ------------------------------------------------------------------ #

    def load(self, key: Hashable) -> Any:
        """The stored value for ``key``, or the missing sentinel.

        Never raises: unreadable or stale files count
        ``kernels.cache.persist.invalid`` and report a miss, so the
        caller cold-compiles exactly as if the file were absent.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            obs.inc("kernels.cache.persist.misses")
            return _MISSING
        except Exception:
            # Corrupt, truncated, torn, or foreign-class payload.
            obs.inc("kernels.cache.persist.invalid")
            obs.inc("kernels.cache.persist.misses")
            return _MISSING
        if (
            not isinstance(envelope, dict)
            or envelope.get("version") != PERSIST_VERSION
            or "key" not in envelope
            or "value" not in envelope
        ):
            obs.inc("kernels.cache.persist.invalid")
            obs.inc("kernels.cache.persist.misses")
            return _MISSING
        try:
            matches = envelope["key"] == key
        except Exception:
            matches = False
        if not matches:
            # Digest collision: not this compilation's envelope.
            obs.inc("kernels.cache.persist.misses")
            return _MISSING
        obs.inc("kernels.cache.persist.hits")
        return envelope["value"]

    def store(self, key: Hashable, value: Any) -> bool:
        """Write one envelope atomically; best-effort, never raises.

        An unpicklable value or a full disk leaves no file behind and
        reports ``False`` — the memory tier still holds the entry, so
        the current process is unaffected.
        """
        path = self.path_for(key)
        temp = self._temp_path(path)
        try:
            payload = pickle.dumps(
                {"version": PERSIST_VERSION, "key": key, "value": value},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            obs.inc("kernels.cache.persist.invalid")
            return False
        try:
            with open(temp, "wb") as handle:
                handle.write(payload)
            os.replace(temp, path)
        except OSError:
            try:
                os.unlink(temp)
            except OSError:
                pass
            obs.inc("kernels.cache.persist.invalid")
            return False
        obs.inc("kernels.cache.persist.stores")
        return True

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def _entries(self) -> List[Tuple[float, int, str]]:
        """(mtime, bytes, path) for every envelope file, oldest first."""
        entries: List[Tuple[float, int, str]] = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return entries
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.directory, name)
            try:
                info = os.stat(path)
            except OSError:
                continue
            entries.append((info.st_mtime, info.st_size, path))
        entries.sort()
        return entries

    def stats(self) -> dict:
        """Shape of the on-disk tier: file count and total bytes."""
        entries = self._entries()
        return {
            "directory": self.directory,
            "files": len(entries),
            "bytes": sum(size for _mtime, size, _path in entries),
        }

    def gc(
        self,
        max_files: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Evict oldest-first until under both caps; returns evictions."""
        entries = self._entries()
        remaining_files = len(entries)
        remaining_bytes = sum(size for _mtime, size, _path in entries)
        removed = 0
        for _mtime, size, path in entries:
            over_files = max_files is not None and remaining_files > max_files
            over_bytes = max_bytes is not None and remaining_bytes > max_bytes
            if not (over_files or over_bytes):
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            removed += 1
            remaining_files -= 1
            remaining_bytes -= size
        if removed:
            obs.inc("kernels.cache.persist.evicted", removed)
        return removed

    def clear(self) -> int:
        """Remove every envelope (and stray temp file); returns count."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if ".pkl" not in name:
                continue
            try:
                os.unlink(os.path.join(self.directory, name))
            except OSError:
                continue
            removed += 1
        return removed


# ---------------------------------------------------------------------- #
# the active tier
# ---------------------------------------------------------------------- #

_active: Optional[PersistentCache] = None


def configure(directory: Optional[str]) -> Optional[PersistentCache]:
    """Install (or with ``None``, remove) the process-wide disk tier.

    The memory LRU consults the active tier on every miss of a
    persistable kind; see :meth:`repro.kernels.cache.LruCache`.
    """
    global _active
    _active = PersistentCache(directory) if directory else None
    return _active


def deactivate() -> None:
    configure(None)


def active() -> Optional[PersistentCache]:
    return _active


def configure_from_env() -> Optional[PersistentCache]:
    """Activate the tier from ``$REPRO_CACHE_DIR`` when set and nonempty.

    Called by the CLI and the serve scheduler; a library embedder opts
    in explicitly via :func:`configure`.
    """
    directory = os.environ.get(ENV_CACHE_DIR, "").strip()
    if not directory:
        return _active
    return configure(directory)


def persistable(key: Hashable) -> bool:
    """Whether a cache key's kind participates in the disk tier."""
    return (
        isinstance(key, tuple)
        and bool(key)
        and key[0] in PERSISTABLE_KINDS
    )
