"""Batched sample loops over bit columns.

Each driver partitions a sample budget into batches of an adaptive
width (:func:`~repro.kernels.bitops.pick_batch_bits`: at most
:data:`~repro.kernels.bitops.BATCH_BITS` worlds, narrower for wide
plans and tiny budgets), draws every batch as
per-variable Bernoulli columns, and evaluates the compiled clause plan
with big-int AND/OR/popcount — a few hundred interpreter operations
per batch instead of a few thousand per *sample*.

Determinism contract: the caller's ``rng`` contributes exactly one
``getrandbits(64)`` draw, which seeds an independent ``random.Random``
per *batch index*.  Batch results are combined in index order, so the
estimate is a pure function of (plan, seed, budget, trace cadence) —
identical whether batches run sequentially or fanned out over any
number of :mod:`repro.kernels.shard` workers.

Budgets are charged through ``runtime.checkpoint`` at batch
granularity (the documented accuracy of ``BudgetExceeded`` is one
batch); convergence traces keep the same event names and fields as the
scalar loops (``montecarlo.batch``, ``karp_luby.batch``, ...).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.kernels.bitops import (
    bernoulli_column,
    full_mask,
    pick_batch_bits,
    popcount,
)
from repro.kernels.plan import (
    HammingPlan,
    TruthPlan,
    clause_masks,
    satisfied_mask,
)
from repro.runtime.budget import checkpoint

# Convergence traces partition a budget into at most this many batches,
# matching the scalar loops' TRACE_BATCHES cadence.
TRACE_BATCHES = 64

# Positions of the set bits in a byte, for coverage counting.
_BYTE_BITS = tuple(
    tuple(bit for bit in range(8) if value >> bit & 1) for value in range(256)
)


def batch_rng(base: int, index: int) -> random.Random:
    """The deterministic generator of one batch.

    Seeding by *batch index* (not worker id) is what makes sharded runs
    reproducible: any partition of the batches over workers draws the
    same columns.
    """
    return random.Random(f"{base:x}:batch:{index}")


def draw_columns(
    rng: random.Random,
    bits: Sequence[Tuple[int, ...]],
    width: int,
    full: int,
) -> List[int]:
    """One Bernoulli column per variable, in plan variable order."""
    return [bernoulli_column(rng, width, b, full) for b in bits]


def plan_batches(
    budget: int, trace: bool, lanes: int = 1
) -> List[Tuple[int, int]]:
    """Split a sample budget into ``(index, width)`` batches.

    The width is adaptive (:func:`~repro.kernels.bitops.pick_batch_bits`):
    ``lanes`` — the plan's live column count — narrows wide plans for
    locality, and a tiny budget yields one narrow batch instead of a
    full-width column.  With tracing on, batches are additionally
    capped at the trace stride so the convergence curve keeps its
    ~:data:`TRACE_BATCHES` points.
    """
    cap = pick_batch_bits(budget, lanes)
    if trace:
        cap = min(cap, max(1, budget // TRACE_BATCHES))
    batches = []
    start = 0
    index = 0
    while start < budget:
        width = min(cap, budget - start)
        batches.append((index, width))
        start += width
        index += 1
    return batches


def _execute(worker, payloads, shards: int, shared: tuple = ()) -> Iterator:
    """Run batch payloads, fanned out over ``shards`` processes if asked.

    Sequential execution is lazy (a generator), so the driver's
    ``checkpoint`` runs *before* each batch is computed; a sharded run
    computes everything up front and the driver charges the budget as
    it combines results, still in batch order.

    ``shared`` carries the leading worker arguments common to every
    batch (the compiled plan): shipped once per worker process in a
    sharded run instead of pickled into every payload, so workers never
    recompile and the payloads stay ``(base, index, width)`` triples.
    """
    if shards > 1 and len(payloads) > 1:
        from repro.kernels.shard import run_jobs

        results = run_jobs(worker, payloads, shards, shared=shared or None)
        if results is not None:
            return iter(results)
    if shared:
        return (worker(*shared, *payload) for payload in payloads)
    return (worker(*payload) for payload in payloads)


# ---------------------------------------------------------------------- #
# truth probability
# ---------------------------------------------------------------------- #


def truth_batch_hits(plan: TruthPlan, base: int, index: int, width: int) -> int:
    """Satisfying-lane count of one batch (a shard-safe pure function)."""
    rng = batch_rng(base, index)
    full = full_mask(width)
    columns = draw_columns(rng, plan.bits, width, full)
    return popcount(plan.plan.satisfied_mask(columns, full))


def sample_truth_batches(
    plan: TruthPlan,
    rng: random.Random,
    budget: int,
    delta: float,
    shards: int = 1,
) -> float:
    """Batched ``estimate_truth_probability`` inner loop."""
    from repro.reliability.montecarlo import _half_width

    trace = obs.enabled()
    if plan.constant is not None:
        checkpoint(samples=budget)
        if trace:
            obs.event(
                "montecarlo.batch",
                samples=budget,
                estimate=plan.constant,
                half_width=_half_width(budget, delta),
            )
        obs.inc("montecarlo.samples", budget)
        return plan.constant
    base = rng.getrandbits(64)
    batches = plan_batches(budget, trace, lanes=len(plan.bits))
    payloads = [(base, index, width) for index, width in batches]
    results = _execute(truth_batch_hits, payloads, shards, shared=(plan,))
    hits = 0
    drawn = 0
    with obs.span("kernels.batched", kernel="truth", batches=len(batches)):
        for (_, width), batch_hits in zip(batches, results):
            checkpoint(samples=width)
            hits += batch_hits
            drawn += width
            obs.inc("kernels.batches")
            if trace:
                estimate = hits / drawn
                obs.event(
                    "montecarlo.batch",
                    samples=drawn,
                    estimate=1.0 - estimate if plan.negate else estimate,
                    half_width=_half_width(drawn, delta),
                )
    obs.inc("kernels.batch_samples", budget)
    obs.inc("montecarlo.samples", budget)
    estimate = hits / budget
    return 1.0 - estimate if plan.negate else estimate


# ---------------------------------------------------------------------- #
# Hamming reliability
# ---------------------------------------------------------------------- #


def hamming_batch_distance(
    plan: HammingPlan, base: int, index: int, width: int
) -> int:
    """Total Hamming distance over one batch of sampled worlds."""
    rng = batch_rng(base, index)
    full = full_mask(width)
    columns = draw_columns(rng, plan.bits, width, full)
    distance = 0
    for cell in plan.tuples:
        if cell.constant is not None:
            if cell.constant != cell.observed:
                distance += width
            continue
        sat = satisfied_mask(cell.clauses, columns, full)
        if cell.negate:
            sat ^= full
        diff = sat ^ full if cell.observed else sat
        if diff:
            distance += popcount(diff)
    return distance


def hamming_block_moments(
    plan: HammingPlan, base: int, index: int, width: int
) -> Tuple[int, int]:
    """Per-lane Hamming distance first and second moments of one block.

    The adaptive controller needs the empirical variance of the
    per-world distance, which :func:`hamming_batch_distance`'s batch
    total cannot provide — so this worker extracts the per-lane
    distances by byte through the same 256-entry bit-position table the
    coverage estimator uses.  The lane total matches
    ``hamming_batch_distance(plan, base, index, width)`` exactly.
    """
    rng = batch_rng(base, index)
    full = full_mask(width)
    columns = draw_columns(rng, plan.bits, width, full)
    constant = 0
    counts = [0] * width
    nbytes = (width + 7) >> 3
    for cell in plan.tuples:
        if cell.constant is not None:
            if cell.constant != cell.observed:
                constant += 1
            continue
        sat = satisfied_mask(cell.clauses, columns, full)
        if cell.negate:
            sat ^= full
        diff = sat ^ full if cell.observed else sat
        if not diff:
            continue
        for byte_index, byte in enumerate(diff.to_bytes(nbytes, "little")):
            if byte:
                lane = byte_index << 3
                for offset in _BYTE_BITS[byte]:
                    counts[lane + offset] += 1
    total = 0
    total_sq = 0
    for count in counts:
        distance = count + constant
        total += distance
        total_sq += distance * distance
    return total, total_sq


def sample_hamming_batches(
    plan: HammingPlan,
    rng: random.Random,
    budget: int,
    delta: float,
    shards: int = 1,
) -> float:
    """Batched ``estimate_reliability_hamming`` inner loop."""
    from repro.reliability.montecarlo import _half_width

    trace = obs.enabled()
    base = rng.getrandbits(64)
    batches = plan_batches(budget, trace, lanes=len(plan.bits))
    payloads = [(base, index, width) for index, width in batches]
    results = _execute(hamming_batch_distance, payloads, shards, shared=(plan,))
    total = 0.0
    drawn = 0
    cells = plan.cells
    with obs.span("kernels.batched", kernel="hamming", batches=len(batches)):
        for (_, width), distance in zip(batches, results):
            checkpoint(samples=width)
            total += distance / cells
            drawn += width
            obs.inc("kernels.batches")
            if trace:
                obs.event(
                    "montecarlo.hamming_batch",
                    samples=drawn,
                    estimate=1.0 - total / drawn,
                    half_width=_half_width(drawn, delta),
                )
    obs.inc("kernels.batch_samples", budget)
    obs.inc("montecarlo.samples", budget)
    return 1.0 - total / budget


# ---------------------------------------------------------------------- #
# Karp–Luby
# ---------------------------------------------------------------------- #


class KlPlan:
    """The picklable state of a batched Karp–Luby run.

    ``clauses``/``bits`` come from the compiled DNF plan; ``cumulative``
    and ``total_weight`` drive the weighted clause choice; ``method`` is
    ``"coverage"`` or ``"canonical"``.
    """

    __slots__ = ("clauses", "bits", "cumulative", "total_weight", "method")

    def __init__(self, clauses, bits, cumulative, total_weight, method):
        self.clauses = clauses
        self.bits = bits
        self.cumulative = cumulative
        self.total_weight = total_weight
        self.method = method


def kl_batch(plan: KlPlan, base: int, index: int, width: int) -> float:
    """One batch of the Karp–Luby estimator; returns its accumulator sum.

    Clause choice stays per-sample (one ``rng.random()`` each — the
    importance distribution is not dyadic), but conditioning, clause
    evaluation, and the canonical estimator are bit-parallel.  The
    coverage estimator needs per-lane cover counts, extracted by byte
    through a 256-entry bit-position table.
    """
    rng = batch_rng(base, index)
    full = full_mask(width)
    cumulative = plan.cumulative
    total_weight = plan.total_weight
    top = len(cumulative) - 1
    chosen = [0] * len(plan.clauses)
    bit = 1
    for _ in range(width):
        target = rng.random() * total_weight
        chosen[min(bisect_right(cumulative, target), top)] |= bit
        bit <<= 1
    columns = draw_columns(rng, plan.bits, width, full)
    # Condition each lane on its chosen clause being true.
    for clause_index, mask in enumerate(chosen):
        if not mask:
            continue
        clause = plan.clauses[clause_index]
        if clause is None:
            continue
        positive, negative = clause
        for slot in positive:
            columns[slot] |= mask
        for slot in negative:
            columns[slot] &= ~mask
    masks = clause_masks(plan.clauses, columns, full)
    if plan.method == "canonical":
        assigned = 0
        hits = 0
        for clause_index, mask in enumerate(masks):
            first = mask & ~assigned
            assigned |= mask
            if first:
                hits += popcount(first & chosen[clause_index])
        return float(hits)
    counts = [0] * width
    nbytes = (width + 7) >> 3
    for mask in masks:
        if not mask:
            continue
        for byte_index, byte in enumerate(mask.to_bytes(nbytes, "little")):
            if byte:
                lane = byte_index << 3
                for offset in _BYTE_BITS[byte]:
                    counts[lane + offset] += 1
    acc = 0.0
    for count in counts:
        if count:  # forced lanes always cover >= 1 well-formed clause
            acc += 1.0 / count
    return acc


def kl_block_moments(
    plan: KlPlan, base: int, index: int, width: int
) -> Tuple[float, float]:
    """One Karp–Luby block's per-sample sum and sum of squares.

    Draws exactly the same stream as :func:`kl_batch` (same clause
    choices, same world columns, same conditioning), so the first
    moment matches ``kl_batch(plan, base, index, width)`` bit for bit;
    the second moment is what the empirical-Bernstein stopper needs.
    Canonical samples are 0/1, so their sum of squares is the sum.
    """
    rng = batch_rng(base, index)
    full = full_mask(width)
    cumulative = plan.cumulative
    total_weight = plan.total_weight
    top = len(cumulative) - 1
    chosen = [0] * len(plan.clauses)
    bit = 1
    for _ in range(width):
        target = rng.random() * total_weight
        chosen[min(bisect_right(cumulative, target), top)] |= bit
        bit <<= 1
    columns = draw_columns(rng, plan.bits, width, full)
    for clause_index, mask in enumerate(chosen):
        if not mask:
            continue
        clause = plan.clauses[clause_index]
        if clause is None:
            continue
        positive, negative = clause
        for slot in positive:
            columns[slot] |= mask
        for slot in negative:
            columns[slot] &= ~mask
    masks = clause_masks(plan.clauses, columns, full)
    if plan.method == "canonical":
        assigned = 0
        hits = 0
        for clause_index, mask in enumerate(masks):
            first = mask & ~assigned
            assigned |= mask
            if first:
                hits += popcount(first & chosen[clause_index])
        return float(hits), float(hits)
    counts = [0] * width
    nbytes = (width + 7) >> 3
    for mask in masks:
        if not mask:
            continue
        for byte_index, byte in enumerate(mask.to_bytes(nbytes, "little")):
            if byte:
                lane = byte_index << 3
                for offset in _BYTE_BITS[byte]:
                    counts[lane + offset] += 1
    acc = 0.0
    acc_sq = 0.0
    for count in counts:
        if count:  # forced lanes always cover >= 1 well-formed clause
            value = 1.0 / count
            acc += value
            acc_sq += value * value
    return acc, acc_sq


def sample_kl_batches(
    plan: KlPlan,
    rng: random.Random,
    samples: int,
    shards: int = 1,
) -> float:
    """Batched Karp–Luby accumulator over the full sample budget."""
    trace = obs.enabled()
    base = rng.getrandbits(64)
    batches = plan_batches(samples, trace, lanes=len(plan.bits))
    payloads = [(base, index, width) for index, width in batches]
    results = _execute(kl_batch, payloads, shards, shared=(plan,))
    accumulator = 0.0
    drawn = 0
    with obs.span("kernels.batched", kernel="karp_luby", batches=len(batches)):
        for (_, width), batch_acc in zip(batches, results):
            checkpoint(samples=width)
            accumulator += batch_acc
            drawn += width
            obs.inc("kernels.batches")
            if trace:
                obs.event(
                    "karp_luby.batch",
                    samples=drawn,
                    estimate=min(
                        plan.total_weight * accumulator / drawn, 1.0
                    ),
                    cover_weight=plan.total_weight,
                )
    obs.inc("kernels.batch_samples", samples)
    return accumulator


# ---------------------------------------------------------------------- #
# naive DNF Monte Carlo
# ---------------------------------------------------------------------- #


def naive_batch_hits(
    clauses, bits, base: int, index: int, width: int
) -> int:
    """Satisfying-lane count for the naive DNF sampler's batch."""
    rng = batch_rng(base, index)
    full = full_mask(width)
    columns = draw_columns(rng, bits, width, full)
    return popcount(satisfied_mask(clauses, columns, full))


def sample_naive_batches(
    clauses,
    bits,
    rng: random.Random,
    samples: int,
    shards: int = 1,
) -> float:
    """Batched naive Monte-Carlo estimate of ``Pr[dnf]``."""
    trace = obs.enabled()
    base = rng.getrandbits(64)
    batches = plan_batches(samples, trace, lanes=len(bits))
    payloads = [(base, index, width) for index, width in batches]
    results = _execute(naive_batch_hits, payloads, shards, shared=(clauses, bits))
    hits = 0
    drawn = 0
    with obs.span("kernels.batched", kernel="naive_mc", batches=len(batches)):
        for (_, width), batch_hits in zip(batches, results):
            checkpoint(samples=width)
            hits += batch_hits
            drawn += width
            obs.inc("kernels.batches")
            if trace:
                obs.event(
                    "naive_mc.batch", samples=drawn, estimate=hits / drawn
                )
    obs.inc("kernels.batch_samples", samples)
    obs.inc("naive_mc.samples", samples)
    return hits / samples
