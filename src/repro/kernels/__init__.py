"""Bit-parallel world kernels.

The engines in :mod:`repro.reliability` walk possible worlds one at a
time.  This package makes that work *compile-once, evaluate-many*:

* :mod:`repro.kernels.bitops` — S-bit integer columns: one Python
  big-int per propositional variable holds the variable's value in S
  sampled worlds at once, so a clause over k literals costs k AND ops
  for all S worlds together.
* :mod:`repro.kernels.plan` — compilation of grounded DNFs (and the
  per-tuple quantifier-free formulas) into clause bitmask plans.
* :mod:`repro.kernels.cache` — a bounded LRU keyed on a database
  fingerprint plus the query AST, so repeated ``run``/``analyze``/
  benchmark invocations stop re-grounding.
* :mod:`repro.kernels.sampling` — batched Monte-Carlo and Karp–Luby
  sample loops over column batches.
* :mod:`repro.kernels.gray` — Gray-code world enumeration for the
  exact engines: one atom flip and one weight update per world.
* :mod:`repro.kernels.shard` — optional multiprocessing fan-out over
  sample batches with deterministic per-batch seeding.

Everything reports through :mod:`repro.obs` (``kernels.*`` counters)
and respects the active :class:`repro.runtime.Budget` via
``runtime.checkpoint`` at batch granularity.  See docs/PERFORMANCE.md.
"""

from repro.kernels.bitops import BATCH_BITS, popcount
from repro.kernels.cache import clear_caches, compilation_cache
from repro.kernels.gray import (
    gray_dnf_probability,
    gray_enumeration_probability,
    product_enumeration_probability,
)
from repro.kernels.plan import (
    DnfPlan,
    HammingPlan,
    TruthPlan,
    compile_dnf_plan,
    compile_hamming_plan,
    compile_truth_plan,
)
from repro.kernels.sampling import (
    KlPlan,
    sample_hamming_batches,
    sample_kl_batches,
    sample_naive_batches,
    sample_truth_batches,
)

__all__ = [
    "BATCH_BITS",
    "popcount",
    "clear_caches",
    "compilation_cache",
    "gray_dnf_probability",
    "gray_enumeration_probability",
    "product_enumeration_probability",
    "DnfPlan",
    "HammingPlan",
    "KlPlan",
    "TruthPlan",
    "compile_dnf_plan",
    "compile_hamming_plan",
    "compile_truth_plan",
    "sample_hamming_batches",
    "sample_kl_batches",
    "sample_naive_batches",
    "sample_truth_batches",
]
