"""Multiprocessing fan-out over batch payloads.

The batched kernels reduce every estimator to an ordered list of pure
``(plan, base_seed, batch_index, width)`` jobs, which makes process
fan-out trivial: any partition of the jobs over any number of workers
produces the same results, because randomness is derived from the batch
index (see :func:`repro.kernels.sampling.batch_rng`) and the driver
combines results in index order.

Workers never touch the runtime budget — the parent charges
``checkpoint(samples=width)`` per batch as results are combined, so one
global budget fairly accounts for all shards at batch granularity.

The compiled plan is *shared*, not repeated: callers pass it once via
``shared`` and each worker receives it through the pool initializer (one
pickle per worker process), while the per-batch payloads shrink to
``(base_seed, batch_index, width)`` triples.  Workers therefore never
recompile — the parent compiles once through the
:mod:`repro.kernels.cache` LRU and ``kernels.cache.misses`` stays flat
no matter how many shards fan out.

Fan-out is strictly best-effort: any pool failure (no fork support,
pickling trouble, a dying worker) is recorded as a
``kernels.shard.fallbacks`` counter and the caller silently reruns the
batches sequentially.  Plans, being tuples of atoms/ints over
``__slots__`` classes, pickle cheaply.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence

from repro import obs

#: Per-worker shared arguments, installed once by the pool initializer
#: and prepended to every payload by :func:`_shared_call`.
_SHARED: tuple = ()


def _pool_context():
    # fork shares the compiled plan pages with the workers; fall back to
    # the platform default (spawn) where fork does not exist.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _init_shared(shared: tuple) -> None:
    global _SHARED
    _SHARED = shared


def _shared_call(worker, *payload):
    return worker(*_SHARED, *payload)


def run_jobs(
    worker, payloads: Sequence[tuple], shards: int, shared: Optional[tuple] = None
) -> Optional[List]:
    """Run ``worker(*shared, *payload)`` for every payload over a pool.

    Returns results in payload order, or ``None`` when the pool could
    not be used — the caller falls back to sequential execution.
    ``worker`` must be a module-level function (picklable by name).
    ``shared`` holds leading arguments identical across payloads (the
    compiled plan); it is shipped once per worker process instead of
    once per payload.
    """
    processes = max(1, min(shards, len(payloads)))
    if processes == 1:
        return None
    with obs.span("kernels.shard_fanout", shards=processes, jobs=len(payloads)):
        try:
            context = _pool_context()
            if shared:
                jobs = [(worker, *payload) for payload in payloads]
                with context.Pool(
                    processes=processes,
                    initializer=_init_shared,
                    initargs=(shared,),
                ) as pool:
                    results = pool.starmap(_shared_call, jobs, chunksize=1)
            else:
                with context.Pool(processes=processes) as pool:
                    results = pool.starmap(worker, payloads, chunksize=1)
        except Exception:
            obs.inc("kernels.shard.fallbacks")
            return None
    obs.inc("kernels.shard.jobs", len(payloads))
    obs.gauge("kernels.shard.workers", processes)
    return results
