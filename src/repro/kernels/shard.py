"""Multiprocessing fan-out over batch payloads.

The batched kernels reduce every estimator to an ordered list of pure
``(plan, base_seed, batch_index, width)`` jobs, which makes process
fan-out trivial: any partition of the jobs over any number of workers
produces the same results, because randomness is derived from the batch
index (see :func:`repro.kernels.sampling.batch_rng`) and the driver
combines results in index order.

Workers never touch the runtime budget — the parent charges
``checkpoint(samples=width)`` per batch as results are combined, so one
global budget fairly accounts for all shards at batch granularity.

Fan-out is strictly best-effort: any pool failure (no fork support,
pickling trouble, a dying worker) is recorded as a
``kernels.shard.fallbacks`` counter and the caller silently reruns the
batches sequentially.  Plans, being tuples of atoms/ints over
``__slots__`` classes, pickle cheaply.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence

from repro import obs


def _pool_context():
    # fork shares the compiled plan pages with the workers; fall back to
    # the platform default (spawn) where fork does not exist.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_jobs(
    worker, payloads: Sequence[tuple], shards: int
) -> Optional[List]:
    """Run ``worker(*payload)`` for every payload over a process pool.

    Returns results in payload order, or ``None`` when the pool could
    not be used — the caller falls back to sequential execution.
    ``worker`` must be a module-level function (picklable by name).
    """
    processes = max(1, min(shards, len(payloads)))
    if processes == 1:
        return None
    with obs.span("kernels.shard_fanout", shards=processes, jobs=len(payloads)):
        try:
            context = _pool_context()
            with context.Pool(processes=processes) as pool:
                results = pool.starmap(worker, payloads, chunksize=1)
        except Exception:
            obs.inc("kernels.shard.fallbacks")
            return None
    obs.inc("kernels.shard.jobs", len(payloads))
    obs.gauge("kernels.shard.workers", processes)
    return results
