"""Compiling queries into clause bitmask plans.

A plan is the compile-once half of a batched kernel: the grounded DNF
of a query (Theorem 5.4's construction, with deterministic atoms folded
away) re-expressed as per-clause lists of *column indices*, plus the
dyadic bit expansion of each variable's marginal ``nu``.  Evaluating a
batch of S sampled worlds then costs a handful of big-int AND/OR ops
per clause instead of S full query evaluations.

Three plan shapes cover the estimators:

* :class:`DnfPlan` — a bare propositional DNF (Karp–Luby, naive MC);
* :class:`TruthPlan` — a Boolean query against one database
  (``estimate_truth_probability``);
* :class:`HammingPlan` — all ``n ** k`` instantiations of a k-ary
  query sharing one column batch (``estimate_reliability_hamming``).

``compile_*`` functions return ``None`` when the query cannot be
compiled (non-first-order queries, mixed quantifier prefixes, or a
grounding the active budget refuses); callers fall back to the scalar
loops.  Successful compilations are cached in
:mod:`repro.kernels.cache` keyed on the database fingerprint and the
query AST.
"""

from __future__ import annotations

from itertools import product
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.kernels.bitops import dyadic_bits
from repro.kernels.cache import compilation_cache
from repro.logic.classify import is_existential, is_universal
from repro.logic.evaluator import FOQuery
from repro.logic.fo import Formula, neg
from repro.propositional.formula import DNF
from repro.util.errors import CostRefused, QueryError

# A compiled clause: (positive column indices, negative column indices),
# or None for a contradictory clause (mask 0, never satisfiable).
CompiledClause = Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]


def satisfied_mask(
    clauses: Sequence[CompiledClause], columns: Sequence[int], full: int
) -> int:
    """Bitmask of batch lanes whose sampled world satisfies the DNF."""
    satisfied = 0
    for clause in clauses:
        if clause is None:
            continue
        positive, negative = clause
        acc = full & ~satisfied
        for slot in positive:
            acc &= columns[slot]
            if not acc:
                break
        else:
            for slot in negative:
                acc &= ~columns[slot]
                if not acc:
                    break
        satisfied |= acc
        if satisfied == full:
            break
    return satisfied


def clause_masks(
    clauses: Sequence[CompiledClause], columns: Sequence[int], full: int
) -> List[int]:
    """Per-clause satisfaction masks (Karp–Luby weighs each clause)."""
    masks: List[int] = []
    for clause in clauses:
        if clause is None:
            masks.append(0)
            continue
        positive, negative = clause
        acc = full
        for slot in positive:
            acc &= columns[slot]
            if not acc:
                break
        else:
            for slot in negative:
                acc &= ~columns[slot]
                if not acc:
                    break
        masks.append(acc)
    return masks


def _compile_clauses(dnf: DNF, index) -> Tuple[CompiledClause, ...]:
    compiled: List[CompiledClause] = []
    for clause in dnf.clauses:
        if clause.contradictory:
            compiled.append(None)
            continue
        positive = []
        negative = []
        for literal in clause:
            slot = index[literal.variable]
            (positive if literal.positive else negative).append(slot)
        compiled.append((tuple(positive), tuple(negative)))
    return tuple(compiled)


class DnfPlan:
    """A DNF compiled to column-index clause masks.

    ``variables`` is sorted by ``repr`` — the same deterministic order
    every sampler uses when drawing columns.
    """

    __slots__ = ("variables", "clauses")

    def __init__(self, dnf: DNF):
        self.variables = tuple(sorted(dnf.variables, key=repr))
        index = {variable: i for i, variable in enumerate(self.variables)}
        self.clauses = _compile_clauses(dnf, index)

    def satisfied_mask(self, columns: Sequence[int], full: int) -> int:
        return satisfied_mask(self.clauses, columns, full)

    def clause_masks(self, columns: Sequence[int], full: int) -> List[int]:
        return clause_masks(self.clauses, columns, full)


class TruthPlan:
    """A compiled Boolean truth-probability query.

    ``constant`` short-circuits deterministic queries (the grounded DNF
    folded to true/false); otherwise ``plan`` evaluates the grounded
    DNF and ``negate`` flips the result for universal sentences
    (``Pr[forall] = 1 - Pr[exists not]``).  ``bits`` holds the dyadic
    expansion of ``nu`` per variable, in ``plan.variables`` order.
    """

    __slots__ = ("plan", "bits", "negate", "constant")

    def __init__(
        self,
        plan: Optional[DnfPlan],
        bits: Tuple[Tuple[int, ...], ...],
        negate: bool,
        constant: Optional[float],
    ):
        self.plan = plan
        self.bits = bits
        self.negate = negate
        self.constant = constant


class HammingTuple:
    """One answer-table cell of a :class:`HammingPlan`.

    ``constant`` is the tuple's world-independent truth value when its
    grounded DNF folded away entirely; otherwise ``clauses`` index the
    plan's shared column table and ``negate`` flips the satisfaction
    mask.  ``observed`` is membership in the observed answer ``psi^A``.
    """

    __slots__ = ("clauses", "negate", "observed", "constant")

    def __init__(self, clauses, negate, observed, constant):
        self.clauses = clauses
        self.negate = negate
        self.observed = observed
        self.constant = constant


class HammingPlan:
    """All ``n ** k`` tuple instantiations sharing one column batch."""

    __slots__ = ("variables", "bits", "tuples", "cells")

    def __init__(self, variables, bits, tuples, cells):
        self.variables = variables
        self.bits = bits
        self.tuples = tuples
        self.cells = cells


def _grounded(db, formula: Formula):
    """Ground a sentence, negating universal ones; ``None`` if neither."""
    from repro.reliability.grounding import ground_existential_to_dnf

    if is_existential(formula):
        return ground_existential_to_dnf(db, formula).dnf, False
    if is_universal(formula):
        return ground_existential_to_dnf(db, neg(formula)).dnf, True
    return None, False


def _truth_plan_from_formula(db, formula: Formula) -> Optional[TruthPlan]:
    dnf, negate = _grounded(db, formula)
    if dnf is None:
        return None
    if dnf.is_true():
        return TruthPlan(None, (), negate, 0.0 if negate else 1.0)
    if dnf.is_false():
        return TruthPlan(None, (), negate, 1.0 if negate else 0.0)
    plan = DnfPlan(dnf)
    bits = tuple(dyadic_bits(float(db.nu(atom))) for atom in plan.variables)
    return TruthPlan(plan, bits, negate, None)


def compile_truth_plan(db, query, args: Sequence = ()) -> Optional[TruthPlan]:
    """Compile ``Pr[B |= psi(args)]`` into a batched sampling plan.

    Returns ``None`` — telling the caller to use the scalar loop — for
    non-first-order queries, sentences that are neither existential nor
    universal, and groundings the active budget refuses (the scalar
    sampler needs no grounding, so a ``CostRefused`` here must not leak
    out of an estimator that would otherwise succeed).
    """
    if not isinstance(query, FOQuery):
        return None
    args = tuple(args)
    formula = query.instantiated(args) if args else query.formula
    key = ("truth_plan", db.fingerprint(), formula)
    try:
        with obs.span("kernels.compile", kind="truth"):
            return compilation_cache.get_or_create(
                key, lambda: _truth_plan_from_formula(db, formula)
            )
    except (CostRefused, QueryError):
        return None


def compile_dnf_plan(dnf: DNF) -> DnfPlan:
    """Compile a bare DNF (Karp–Luby / naive MC operate on these)."""
    with obs.span("kernels.compile", kind="dnf"):
        return compilation_cache.get_or_create(
            ("dnf_plan", dnf), lambda: DnfPlan(dnf)
        )


def _hamming_plan(db, query: FOQuery) -> Optional[HammingPlan]:
    universe = db.structure.universe
    cells = len(universe) ** query.arity
    observed_answers = query.answers(db.structure)
    variables: List = []
    index = {}
    tuples = []
    for args in product(universe, repeat=query.arity):
        formula = query.instantiated(args) if args else query.formula
        dnf, negate = _grounded(db, formula)
        if dnf is None:
            return None
        observed = args in observed_answers
        if dnf.is_true() or dnf.is_false():
            actual = dnf.is_true() != negate
            tuples.append(HammingTuple(None, False, observed, actual))
            continue
        for variable in sorted(dnf.variables, key=repr):
            if variable not in index:
                index[variable] = len(variables)
                variables.append(variable)
        clauses = _compile_clauses(dnf, index)
        tuples.append(HammingTuple(clauses, negate, observed, None))
    bits = tuple(dyadic_bits(float(db.nu(atom))) for atom in variables)
    return HammingPlan(tuple(variables), bits, tuple(tuples), cells)


def compile_hamming_plan(db, query) -> Optional[HammingPlan]:
    """Compile the whole-table Hamming estimator for a k-ary query.

    Every tuple's instantiated sentence must ground (existential or
    universal after instantiation); one refusal falls the whole call
    back to the scalar loop.
    """
    if not isinstance(query, FOQuery):
        return None
    key = ("hamming_plan", db.fingerprint(), query.formula, query.free_order)
    try:
        with obs.span("kernels.compile", kind="hamming"):
            return compilation_cache.get_or_create(
                key, lambda: _hamming_plan(db, query)
            )
    except (CostRefused, QueryError):
        return None
