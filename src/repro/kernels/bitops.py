"""Big-int bit columns: the data layout of every batched kernel.

A *column* is one Python integer whose bit ``s`` holds a propositional
variable's value in sample ``s``.  A batch of ``S`` worlds over ``V``
variables is then just ``V`` integers of ``S`` bits each, and a DNF
clause is evaluated for all ``S`` worlds with ``len(clause)`` AND ops.

Two primitives live here:

* :func:`popcount` — ``int.bit_count`` where available (3.10+), with a
  ``bin().count`` fallback for 3.9;
* :func:`bernoulli_column` — ``S`` independent Bernoulli(p) bits from
  a ``random.Random``, exact for any float ``p`` via its (finite)
  dyadic expansion: the column is the lane-wise comparison ``U < p``
  of a uniform bit-stream against the bits of ``p``, processed from
  the deepest bit up, which costs one ``getrandbits(S)`` per bit of
  ``p`` (at most 54) instead of ``S`` calls to ``rng.random()``.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Tuple, Union

# Default batch width: worlds evaluated per column batch.  4096 bits is
# 64 machine words per big-int op — wide enough to amortise interpreter
# overhead, small enough that per-batch checkpoint/trace granularity
# stays useful.
BATCH_BITS = 4096

# Floor of the adaptive width: below one machine word per column the
# big-int layout stops paying for itself.
MIN_BATCH_BITS = 64

# Working-set target of one batch, in bits: all per-variable columns of
# a batch should together stay around this size (~256 KiB) so very wide
# Hamming plans narrow their columns for locality instead of streaming
# every column through cache once per clause op.
TARGET_WORKING_BITS = 1 << 21


def pick_batch_bits(budget: int, lanes: int = 1) -> int:
    """Adaptive batch width from the plan size and the sample budget.

    ``lanes`` is the number of live bit columns (plan variables); the
    width is narrowed from :data:`BATCH_BITS` so that ``lanes * width``
    stays near :data:`TARGET_WORKING_BITS` (never below
    :data:`MIN_BATCH_BITS`), and never exceeds the remaining sample
    ``budget`` — a tiny sample count draws one narrow column, not a
    full :data:`BATCH_BITS`-wide one.
    """
    cap = BATCH_BITS
    if lanes > 0:
        cap = max(MIN_BATCH_BITS, min(cap, TARGET_WORKING_BITS // lanes))
    if budget > 0:
        cap = min(cap, budget)
    return max(1, cap)

try:  # Python >= 3.10
    (0).bit_count

    def popcount(value: int) -> int:
        """Number of set bits in a nonnegative integer."""
        return value.bit_count()

except AttributeError:  # pragma: no cover - exercised on 3.9 only

    def popcount(value: int) -> int:
        """Number of set bits in a nonnegative integer."""
        return bin(value).count("1")


def full_mask(width: int) -> int:
    """The all-ones column of the given width."""
    return (1 << width) - 1


def dyadic_bits(probability: Union[float, Fraction]) -> Tuple[int, ...]:
    """The binary expansion of a dyadic probability, most significant first.

    Floats are dyadic rationals, so ``Fraction(float(p))`` is *exact*
    and its denominator is a power of two; the returned tuple ``b`` has
    ``p == sum(b[i] / 2**(i+1))``.  Returns ``()`` for ``p <= 0`` and
    ``p >= 1`` — callers special-case deterministic variables.
    """
    exact = Fraction(float(probability))
    if exact <= 0 or exact >= 1:
        return ()
    length = exact.denominator.bit_length() - 1
    numerator = exact.numerator
    return tuple((numerator >> (length - 1 - i)) & 1 for i in range(length))


def bernoulli_column(
    rng: random.Random, width: int, bits: Tuple[int, ...], full: int
) -> int:
    """``width`` independent Bernoulli bits with P(1) given by ``bits``.

    ``bits`` is the dyadic expansion from :func:`dyadic_bits`; an empty
    expansion means deterministic 0.  Lane ``s`` compares a fresh
    uniform bit-stream against the expansion: starting from the deepest
    bit, ``lt`` tracks "stream suffix < p suffix", and one more
    significant bit updates it to *less* when the p-bit is 1 and the
    stream bit is 0, *greater* in the opposite case, and *carry* on a
    tie.  The result is exactly ``P(lane) = p`` per lane, matching the
    scalar ``rng.random() < p`` distribution.
    """
    if not bits:
        return 0
    less = 0
    for bit in reversed(bits):
        stream = rng.getrandbits(width)
        if bit:
            less = (~stream & full) | (stream & less)
        else:
            less = ~stream & less
    return less & full


def iter_set_bits(mask: int):
    """Yield the positions of the set bits of ``mask``, ascending.

    Chunks the big-int into 64-bit words first so the per-bit work runs
    on machine-word ints instead of repeatedly shifting the full-width
    column.
    """
    base = 0
    while mask:
        word = mask & 0xFFFFFFFFFFFFFFFF
        while word:
            low = word & -word
            yield base + low.bit_length() - 1
            word ^= low
        mask >>= 64
        base += 64
