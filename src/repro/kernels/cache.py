"""The compilation cache: compile once, reuse across calls.

Grounding a query (Theorem 5.4) and compiling the resulting DNF into a
bitmask plan are pure functions of the database and the query, yet
every ``run``/``analyze``/benchmark invocation used to redo them.  This
module provides one process-wide bounded LRU shared by all kernels.

Keys are *equality-checked* structures, never bare hashes: a key is a
tuple of a kind tag, the database fingerprint (the observed
:class:`~repro.relational.structure.Structure`, the explicit ``mu``
table as a frozenset of items, and the default error), and the query
object (formulas and :class:`FOQuery` are immutable and hashable).
Hash collisions therefore cannot alias two different compilations.

Hits, misses, and evictions are visible as ``kernels.cache.hits`` /
``.misses`` / ``.evictions`` counters.  The default capacity is
:data:`DEFAULT_CAPACITY` entries (see docs/PERFORMANCE.md); entries
are whole compiled artefacts, so the bound is on count, not bytes.

When a persistent tier is configured (:mod:`repro.kernels.cache_persist`,
via ``--cache-dir`` or ``$REPRO_CACHE_DIR``), a memory miss on a
persistable kind consults the disk before running the factory; a disk
hit fills the memory entry *without* counting ``kernels.cache.misses``
— that counter means "a compilation actually ran", which is what the
warm-start CI lane asserts stays flat across processes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro import obs

# Bounded LRU size, in entries.  A compiled plan is retained per
# (database fingerprint, query, kind) triple.  Hamming/reliability
# sweeps ground one instantiated formula per tuple — n**k entries, 576
# for a binary query on n=24 — so the bound must comfortably exceed
# that or repeat runs thrash instead of hitting; 1024 covers n <= 32
# while each entry stays a few-clause DNF.
DEFAULT_CAPACITY = 1024

_MISSING = object()


class LruCache:
    """A tiny ordered-dict LRU with observability counters.

    Thread-safe for the racing executor: dictionary operations run
    under a lock, but the ``factory`` itself runs *outside* it — a
    racer parked at a cooperative checkpoint mid-compilation (the
    virtual-clock scheduler's lock-step yield) must not hold the cache
    lock against its siblings.  Counters reflect cache truth, not
    attempts: a miss is counted only when a computed value is actually
    inserted, so a racer cancelled mid-compilation (its factory raises
    ``BudgetExceeded``) leaves no entry *and* no miss, and two racers
    compiling the same key concurrently count one miss and one hit —
    the first insert wins and the duplicate value is discarded.
    """

    __slots__ = ("capacity", "_entries", "_lock")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss.

        ``factory`` failures propagate and cache nothing, so an aborted
        compilation (``BudgetExceeded``, ``CostRefused``) never poisons
        the cache — and never counts a miss.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                obs.inc("kernels.cache.hits")
                return value
        from repro.kernels import cache_persist

        tier = cache_persist.active()
        persist = tier is not None and cache_persist.persistable(key)
        if persist:
            loaded = tier.load(key)
            if loaded is not cache_persist._MISSING:
                with self._lock:
                    cached = self._entries.get(key, _MISSING)
                    if cached is not _MISSING:
                        self._entries.move_to_end(key)
                        return cached
                    # A disk hit is not a compile: no .misses here.
                    self._entries[key] = loaded
                    if len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        obs.inc("kernels.cache.evictions")
                return loaded
        value = factory()
        with self._lock:
            cached = self._entries.get(key, _MISSING)
            if cached is not _MISSING:
                # A concurrent racer compiled the same key first; keep
                # its entry (callers may already hold references to it).
                self._entries.move_to_end(key)
                obs.inc("kernels.cache.hits")
                return cached
            obs.inc("kernels.cache.misses")
            self._entries[key] = value
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                obs.inc("kernels.cache.evictions")
        if persist:
            tier.store(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: The process-wide compilation cache shared by grounding and plans.
compilation_cache = LruCache()


def clear_caches() -> None:
    """Drop every cached compilation (tests call this between cases)."""
    compilation_cache.clear()
