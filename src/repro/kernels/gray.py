"""Gray-code world enumeration for the exact engines.

The Theorem 4.2 enumerator visits all ``2 ** k`` joint values of the
relevant uncertain atoms.  Walking them in reflected-Gray-code order
means consecutive worlds differ in exactly one atom, so each step costs
one :meth:`Structure.flip` and one Fraction multiply instead of a full
``flip_all`` plus a k-factor weight product.  Because world weights are
exact :class:`~fractions.Fraction` values, the incrementally-maintained
weight never drifts and the summed probability is bit-identical to the
``itertools.product`` sweep regardless of visiting order.

Two walkers:

* :func:`gray_enumeration_probability` — generic, calls an opaque
  ``predicate(world)`` per step (any query-protocol object);
* :func:`gray_dnf_probability` — for queries compiled to a grounded
  DNF, maintains per-clause falsified-literal counts so a step costs
  ``O(occurrences of the flipped atom)`` instead of a full evaluation.

:func:`product_enumeration_probability` keeps the original sweep as the
reference implementation (benchmarks, property tests, and the fallback
when a deterministic atom sneaks into the atom list).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import List, Sequence, Tuple

from repro import obs
from repro.propositional.formula import DNF
from repro.runtime.budget import checkpoint


def product_enumeration_probability(db, atoms, predicate) -> Fraction:
    """The original ``itertools.product`` sweep (reference/fallback)."""
    base = db.observed_world()
    total = Fraction(0)
    evaluated = 0
    for pattern in product((False, True), repeat=len(atoms)):
        checkpoint(worlds=1)
        probability = Fraction(1)
        flips = []
        for atom, flipped in zip(atoms, pattern):
            error = db.mu(atom)
            if flipped:
                probability *= error
                flips.append(atom)
            else:
                probability *= 1 - error
        if probability == 0:
            continue
        world = base.flip_all(flips) if flips else base
        evaluated += 1
        if predicate(world):
            total += probability
    obs.inc("exact.worlds_enumerated", evaluated)
    return total


def gray_enumeration_probability(db, atoms, predicate) -> Fraction:
    """``Pr[predicate(B)]`` over the given uncertain atoms, Gray order.

    ``atoms`` must all be uncertain (``0 < mu < 1``) — the contract of
    every caller, which filters through ``uncertain_atoms`` /
    ``relevant_atoms``; a deterministic atom falls the call back to the
    product sweep, whose zero-weight skip handles it.
    """
    atoms = tuple(atoms)
    count = len(atoms)
    base = db.observed_world()
    if count == 0:
        checkpoint(worlds=1)
        obs.inc("exact.worlds_enumerated", 1)
        return Fraction(1) if predicate(base) else Fraction(0)
    errors = [db.mu(atom) for atom in atoms]
    if any(error == 0 or error == 1 for error in errors):
        return product_enumeration_probability(db, atoms, predicate)
    # Flipping atom j multiplies the weight by mu/(1-mu); unflipping by
    # the inverse.  Exact Fractions, so no drift accumulates.
    up = [error / (1 - error) for error in errors]
    down = [(1 - error) / error for error in errors]
    weight = Fraction(1)
    for error in errors:
        weight *= 1 - error
    checkpoint(worlds=1)
    total = Fraction(0)
    world = base
    if predicate(world):
        total = weight
    flipped = 0
    for step in range(1, 1 << count):
        checkpoint(worlds=1)
        slot = (step & -step).bit_length() - 1
        world = world.flip(atoms[slot])
        mask = 1 << slot
        weight *= down[slot] if flipped & mask else up[slot]
        flipped ^= mask
        if predicate(world):
            total += weight
    obs.inc("exact.worlds_enumerated", 1 << count)
    obs.inc("kernels.gray.steps", (1 << count) - 1)
    return total


def _dnf_state(
    dnf: DNF, variables: Sequence
) -> Tuple[List[int], List[List[Tuple[int, bool]]], int]:
    """Initial clause state under the all-false assignment.

    Returns per-clause falsified-literal counts, the occurrence list
    (variable slot → ``(clause, polarity)`` pairs), and the number of
    satisfied clauses.  Contradictory clauses are excluded up front —
    they are never satisfiable.
    """
    index = {variable: i for i, variable in enumerate(variables)}
    counts: List[int] = []
    occurrences: List[List[Tuple[int, bool]]] = [[] for _ in variables]
    satisfied = 0
    clause_number = 0
    for clause in dnf.clauses:
        if clause.contradictory:
            continue
        falsified = 0
        for literal in clause:
            slot = index[literal.variable]
            occurrences[slot].append((clause_number, literal.positive))
            if literal.positive:  # all-false assignment falsifies positives
                falsified += 1
        counts.append(falsified)
        if falsified == 0:
            satisfied += 1
        clause_number += 1
    return counts, occurrences, satisfied


def gray_dnf_probability(db, dnf: DNF) -> Fraction:
    """Exact ``Pr[dnf]`` under ``nu``, with incremental clause state.

    The Gray walk enumerates assignments to the DNF's variables; each
    flip updates only the clauses mentioning the flipped atom, making
    the per-world cost proportional to that atom's occurrence count —
    the "formula state updates incrementally" half of the Gray kernel.
    Used by the quantifier-free engine on formulas that ground cleanly.
    """
    variables = tuple(sorted(dnf.variables, key=repr))
    count = len(variables)
    chances = [db.nu(variable) for variable in variables]
    if any(chance == 0 or chance == 1 for chance in chances):
        # Deterministic variables only reach here through hand-built
        # DNFs; the enumeration oracle handles them exactly.
        from repro.propositional.counting import probability_enumerate

        return probability_enumerate(
            dnf, {variable: db.nu(variable) for variable in variables}
        )
    up = [chance / (1 - chance) for chance in chances]
    down = [(1 - chance) / chance for chance in chances]
    weight = Fraction(1)
    for chance in chances:
        weight *= 1 - chance
    counts, occurrences, satisfied = _dnf_state(dnf, variables)
    checkpoint(worlds=1)
    total = Fraction(0)
    if satisfied:
        total = weight
    assignment = 0
    for step in range(1, 1 << count):
        checkpoint(worlds=1)
        slot = (step & -step).bit_length() - 1
        mask = 1 << slot
        turning_true = not assignment & mask
        weight *= up[slot] if turning_true else down[slot]
        assignment ^= mask
        for clause_number, positive in occurrences[slot]:
            if positive == turning_true:
                counts[clause_number] -= 1
                if counts[clause_number] == 0:
                    satisfied += 1
            else:
                if counts[clause_number] == 0:
                    satisfied -= 1
                counts[clause_number] += 1
        if satisfied:
            total += weight
    obs.inc("exact.worlds_enumerated", 1 << count)
    obs.inc("kernels.gray.steps", (1 << count) - 1)
    return total
