"""Random monotone 2-CNF instances for the Proposition 3.2 experiments."""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.reductions.monotone2sat import Monotone2CNF
from repro.util.errors import QueryError


def random_monotone_2cnf(
    rng: random.Random,
    variables: int,
    clauses: int,
    allow_duplicates: bool = False,
) -> Monotone2CNF:
    """A random monotone 2-CNF over ``x0 .. x{variables-1}``.

    Clauses are unordered pairs of *distinct* variables; with
    ``allow_duplicates=False`` (default) the clause set is duplicate-free
    when enough distinct pairs exist.
    """
    if variables < 2:
        raise QueryError("need at least two variables for binary clauses")
    names = [f"x{i}" for i in range(variables)]
    max_pairs = variables * (variables - 1) // 2
    if not allow_duplicates and clauses > max_pairs:
        raise QueryError(
            f"cannot draw {clauses} distinct clauses from {max_pairs} pairs"
        )
    chosen: List[Tuple[str, str]] = []
    seen = set()
    while len(chosen) < clauses:
        left, right = rng.sample(names, 2)
        key = (min(left, right), max(left, right))
        if not allow_duplicates:
            if key in seen:
                continue
            seen.add(key)
        chosen.append(key)
    return Monotone2CNF(tuple(chosen))
