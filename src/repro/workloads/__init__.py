"""Seeded workload generators for tests, examples and benchmarks.

Everything takes an explicit ``random.Random``; the same seed always
produces the same workload, so every experiment in EXPERIMENTS.md is
reproducible bit for bit.
"""

from repro.workloads.random_db import (
    random_structure,
    random_unreliable_database,
)
from repro.workloads.random_cnf import random_monotone_2cnf
from repro.workloads.graphs import (
    gnp_graph,
    cycle_graph,
    grid_graph,
    random_colourable_graph,
)
from repro.workloads.random_dnf import random_kdnf, random_probabilities
from repro.workloads.scenarios import (
    network_monitoring_scenario,
    dirty_orders_scenario,
    sensor_scenario,
)

__all__ = [
    "random_structure",
    "random_unreliable_database",
    "random_monotone_2cnf",
    "gnp_graph",
    "cycle_graph",
    "grid_graph",
    "random_colourable_graph",
    "random_kdnf",
    "random_probabilities",
    "network_monitoring_scenario",
    "dirty_orders_scenario",
    "sensor_scenario",
]
