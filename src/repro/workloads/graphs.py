"""Graph generators for the Lemma 5.9 and Datalog experiments."""

from __future__ import annotations

import random
from typing import List, Tuple


def gnp_graph(
    rng: random.Random, nodes: int, probability: float
) -> Tuple[List[int], List[Tuple[int, int]]]:
    """An Erdős–Rényi G(n, p) undirected graph (no self loops)."""
    vertex_list = list(range(nodes))
    edges = [
        (u, v)
        for u in vertex_list
        for v in vertex_list
        if u < v and rng.random() < probability
    ]
    return vertex_list, edges


def cycle_graph(nodes: int) -> Tuple[List[int], List[Tuple[int, int]]]:
    """The n-cycle — 2-colourable iff even, handy known ground truth."""
    vertex_list = list(range(nodes))
    edges = [(i, (i + 1) % nodes) for i in range(nodes)]
    return vertex_list, edges


def grid_graph(
    rows: int, columns: int
) -> Tuple[List[Tuple[int, int]], List[Tuple[Tuple[int, int], Tuple[int, int]]]]:
    """A rows x columns grid graph (always 2-colourable)."""
    vertex_list = [(r, c) for r in range(rows) for c in range(columns)]
    edges = []
    for r in range(rows):
        for c in range(columns):
            if r + 1 < rows:
                edges.append(((r, c), (r + 1, c)))
            if c + 1 < columns:
                edges.append(((r, c), (r, c + 1)))
    return vertex_list, edges


def complete_graph(nodes: int) -> Tuple[List[int], List[Tuple[int, int]]]:
    """K_n — 4-colourable iff n <= 4, the sharp ground truth for E6."""
    vertex_list = list(range(nodes))
    edges = [(u, v) for u in vertex_list for v in vertex_list if u < v]
    return vertex_list, edges


def random_colourable_graph(
    rng: random.Random, nodes: int, colours: int, probability: float
) -> Tuple[List[int], List[Tuple[int, int]]]:
    """A random graph guaranteed ``colours``-colourable by construction.

    Vertices are pre-partitioned into colour classes; edges are drawn only
    between classes with probability ``probability``.
    """
    vertex_list = list(range(nodes))
    classes = {v: rng.randrange(colours) for v in vertex_list}
    edges = [
        (u, v)
        for u in vertex_list
        for v in vertex_list
        if u < v and classes[u] != classes[v] and rng.random() < probability
    ]
    return vertex_list, edges


def random_digraph(
    rng: random.Random, nodes: int, probability: float
) -> Tuple[List[int], List[Tuple[int, int]]]:
    """A random directed graph (for reachability workloads)."""
    vertex_list = list(range(nodes))
    edges = [
        (u, v)
        for u in vertex_list
        for v in vertex_list
        if u != v and rng.random() < probability
    ]
    return vertex_list, edges
