"""Random relational structures and unreliable databases."""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.relational.atoms import Atom
from repro.relational.schema import RelationSymbol, Vocabulary
from repro.relational.structure import Structure
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import ProbabilityError
from repro.util.rationals import RationalLike, parse_probability


def random_structure(
    rng: random.Random,
    size: int,
    relations: Mapping[str, int],
    density: float = 0.3,
) -> Structure:
    """A random structure: each possible tuple is present with ``density``.

    ``relations`` maps names to arities; the universe is ``0..size-1``.
    """
    if not 0.0 <= density <= 1.0:
        raise ProbabilityError(f"density {density} outside [0, 1]")
    vocabulary = Vocabulary(
        [RelationSymbol(name, arity) for name, arity in sorted(relations.items())]
    )
    universe = tuple(range(size))
    structure = Structure(vocabulary, universe)
    rows: Dict[str, list] = {}
    for atom in structure.atoms():
        if rng.random() < density:
            rows.setdefault(atom.relation, []).append(atom.args)
    for name, tuples in rows.items():
        structure = structure.with_relation(name, tuples)
    return structure


def random_unreliable_database(
    rng: random.Random,
    size: int,
    relations: Mapping[str, int],
    density: float = 0.3,
    error: RationalLike = Fraction(1, 10),
    uncertain_fraction: float = 1.0,
    error_choices: Optional[Sequence[RationalLike]] = None,
) -> UnreliableDatabase:
    """A random structure with random error probabilities.

    ``uncertain_fraction`` of the atoms get a positive error — drawn from
    ``error_choices`` when given, else the fixed ``error``.  Remaining
    atoms are certain, exercising the constant-folding paths.
    """
    structure = random_structure(rng, size, relations, density)
    mu: Dict[Atom, Fraction] = {}
    choices = (
        [parse_probability(p) for p in error_choices]
        if error_choices is not None
        else [parse_probability(error)]
    )
    for atom in structure.atoms():
        if rng.random() < uncertain_fraction:
            mu[atom] = rng.choice(choices)
    return UnreliableDatabase(structure, mu)
