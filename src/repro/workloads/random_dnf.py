"""Random kDNF formulas with random rational probabilities (E4/E9)."""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, List

from repro.propositional.formula import DNF, Clause, Literal
from repro.util.errors import QueryError


def random_kdnf(
    rng: random.Random,
    variables: int,
    clauses: int,
    width: int,
    negative_fraction: float = 0.5,
) -> DNF:
    """A random DNF: ``clauses`` clauses of exactly ``width`` distinct
    variables each, literals negated with ``negative_fraction``."""
    if width > variables:
        raise QueryError(f"clause width {width} exceeds {variables} variables")
    names = [f"v{i}" for i in range(variables)]
    built: List[Clause] = []
    for _ in range(clauses):
        chosen = rng.sample(names, width)
        built.append(
            Clause(
                Literal(name, rng.random() >= negative_fraction)
                for name in chosen
            )
        )
    return DNF(built)


def random_probabilities(
    rng: random.Random,
    dnf: DNF,
    denominator: int = 16,
) -> Dict[object, Fraction]:
    """Random rational probabilities ``1/d .. (d-1)/d`` for a DNF's
    variables — strictly inside (0, 1) so every clause stays possible."""
    if denominator < 2:
        raise QueryError("denominator must be at least 2")
    return {
        variable: Fraction(rng.randrange(1, denominator), denominator)
        for variable in sorted(dnf.variables, key=repr)
    }
