"""Realistic end-to-end scenarios used by the examples and benchmarks.

Three applications of unreliable databases, chosen to match the settings
the paper's introduction motivates — a user evaluates a query on an
*observed* database and wants to know how much to trust the answer:

* **network monitoring** — link-state tables collected by unreliable
  probes; the query asks about connectivity (Datalog reachability) and
  local redundancy (an existential query);
* **dirty customer/order data** — an integrated sales database where
  provenance determines per-fact error rates; conjunctive join queries;
* **sensor readings** — a metafinite database of numeric measurements
  with aggregate (SQL-style) queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Tuple

from repro.logic.datalog import DatalogQuery, reachability_query
from repro.logic.evaluator import FOQuery
from repro.metafinite.database import (
    FunctionalDatabase,
    UnreliableFunctionalDatabase,
    ValueDistribution,
)
from repro.metafinite.terms import MetafiniteQuery, aggregate, apply_op, func
from repro.relational.atoms import Atom
from repro.relational.builder import StructureBuilder
from repro.reliability.unreliable import UnreliableDatabase


@dataclass(frozen=True)
class RelationalScenario:
    """A ready-made unreliable database with named queries."""

    db: UnreliableDatabase
    queries: Dict[str, object]
    description: str


def network_monitoring_scenario(
    rng: random.Random,
    routers: int = 12,
    link_probability: float = 0.28,
    probe_error: Fraction = Fraction(1, 20),
) -> RelationalScenario:
    """Routers with probed links; link reports are wrong with 5% chance.

    Queries:

    * ``"redundant"`` — existential: some router has two distinct
      neighbours (local redundancy exists);
    * ``"reach"`` — Datalog reachability (binary; the Theorem 5.12 case);
    * ``"isolated"`` — universal: no router is fully cut off.
    """
    names = [f"r{i}" for i in range(routers)]
    builder = StructureBuilder(names)
    builder.relation("Link", 2)
    mu: Dict[Atom, Fraction] = {}
    for i, u in enumerate(names):
        for v in names[i + 1 :]:
            present = rng.random() < link_probability
            if present:
                builder.add("Link", (u, v))
                builder.add("Link", (v, u))
            mu[Atom("Link", (u, v))] = probe_error
            mu[Atom("Link", (v, u))] = probe_error
    structure = builder.build()
    db = UnreliableDatabase(structure, mu)
    queries = {
        "redundant": FOQuery(
            "exists x y z. Link(x, y) & Link(x, z) & y != z"
        ),
        "reach": reachability_query(edge="Link"),
        "isolated": FOQuery("forall x. exists y. Link(x, y)"),
    }
    return RelationalScenario(
        db=db,
        queries=queries,
        description=(
            f"{routers} routers, probed links with error {probe_error}"
        ),
    )


def dirty_orders_scenario(
    rng: random.Random,
    customers: int = 8,
    products: int = 6,
    order_probability: float = 0.3,
    vip_fraction: float = 0.3,
) -> RelationalScenario:
    """An integrated sales database with provenance-dependent error rates.

    ``Ordered(c, p)`` facts come from two source systems: the modern one
    (error 1/50) and a legacy import (error 1/8); ``Vip(c)`` flags come
    from a hand-maintained spreadsheet (error 1/10).

    Queries:

    * ``"vip_order"`` — conjunctive Boolean: some VIP ordered something;
    * ``"who_vip"`` — unary conjunctive: the VIPs with at least one order;
    * ``"pairs"`` — binary quantifier-free: the order table itself
      (Proposition 3.1's fragment, exercised on a realistic schema).
    """
    customer_names = [f"c{i}" for i in range(customers)]
    product_names = [f"p{i}" for i in range(products)]
    builder = StructureBuilder(customer_names + product_names)
    builder.relation("Ordered", 2)
    builder.relation("Vip", 1)
    builder.relation("Customer", 1)
    builder.relation("Product", 1)
    mu: Dict[Atom, Fraction] = {}
    for c in customer_names:
        builder.add("Customer", (c,))
        if rng.random() < vip_fraction:
            builder.add("Vip", (c,))
        mu[Atom("Vip", (c,))] = Fraction(1, 10)
    for p in product_names:
        builder.add("Product", (p,))
    for c in customer_names:
        for p in product_names:
            if rng.random() < order_probability:
                builder.add("Ordered", (c, p))
            legacy = rng.random() < 0.5
            mu[Atom("Ordered", (c, p))] = (
                Fraction(1, 8) if legacy else Fraction(1, 50)
            )
    structure = builder.build()
    db = UnreliableDatabase(structure, mu)
    queries = {
        "vip_order": FOQuery("exists c p. Vip(c) & Ordered(c, p)"),
        "who_vip": FOQuery("exists p. Vip(c) & Ordered(c, p)", ["c"]),
        "pairs": FOQuery("Ordered(c, p)", ["c", "p"]),
    }
    return RelationalScenario(
        db=db,
        queries=queries,
        description=(
            f"{customers} customers x {products} products, "
            "provenance-dependent error rates"
        ),
    )


@dataclass(frozen=True)
class MetafiniteScenario:
    """A ready-made unreliable functional database with named queries."""

    db: UnreliableFunctionalDatabase
    queries: Dict[str, MetafiniteQuery]
    description: str


def sensor_scenario(
    rng: random.Random,
    sensors: int = 6,
    jitter: Fraction = Fraction(1, 10),
) -> MetafiniteScenario:
    """Temperature sensors whose readings may be off by one unit.

    Each sensor reports an integer reading; with probability ``jitter``
    (split evenly) the actual value is one above or below the report.

    Queries:

    * ``"total"`` — ``sum_s reading(s)`` (Boolean arity 0, numeric value);
    * ``"hottest"`` — ``max_s reading(s)``;
    * ``"alarms"`` — ``count_s [reading(s) >= threshold(s)]``;
    * ``"local"`` — aggregate-free unary: reading minus threshold
      (Theorem 6.2(i)'s fragment).
    """
    names = tuple(f"s{i}" for i in range(sensors))
    readings = {(s,): rng.randrange(15, 30) for s in names}
    thresholds = {(s,): 25 for s in names}
    observed = FunctionalDatabase(
        names, {"reading": readings, "threshold": thresholds}
    )
    half = jitter / 2
    distributions = {}
    for s in names:
        value = readings[(s,)]
        distributions[("reading", (s,))] = ValueDistribution(
            {value: 1 - jitter, value - 1: half, value + 1: half}
        )
    db = UnreliableFunctionalDatabase(observed, distributions)
    queries = {
        "total": MetafiniteQuery(aggregate("sum", ["s"], func("reading", "s"))),
        "hottest": MetafiniteQuery(
            aggregate("max", ["s"], func("reading", "s"))
        ),
        "alarms": MetafiniteQuery(
            aggregate(
                "count",
                ["s"],
                apply_op("geq", func("reading", "s"), func("threshold", "s")),
            )
        ),
        "local": MetafiniteQuery(
            apply_op("sub", func("reading", "s"), func("threshold", "s")),
            ["s"],
        ),
    }
    return MetafiniteScenario(
        db=db,
        queries=queries,
        description=f"{sensors} sensors with +/-1 jitter at rate {jitter}",
    )
