"""Command-line interface: query reliability from the shell.

The CLI reads an unreliable database in the canonical text format (see
:mod:`repro.relational.encoding`: ``universe`` / ``relation`` /
``tuple`` / ``error`` lines) and computes or estimates the reliability
of a first-order query.

Examples::

    python -m repro compute db.txt "exists x y. E(x, y) & S(y)"
    python -m repro compute db.txt "E(x, y)" --free x y --method qf
    python -m repro estimate db.txt "exists x. S(x)" --epsilon 0.05 \\
        --delta 0.05 --seed 7
    python -m repro estimate db.txt "forall x. exists y. E(x, y)" \\
        --estimator padding
    python -m repro run db.txt "exists x y. E(x, y)" --deadline 5
    python -m repro run db.txt "exists x y. E(x, y)" --race --stats
    python -m repro calibrate --out calibration.json
    python -m repro run db.txt "exists x y. E(x, y)" \\
        --calibration calibration.json
    python -m repro inspect db.txt

Every subcommand accepts ``--stats`` (print engine-internal counters —
worlds enumerated, clauses grounded, samples drawn — after the result),
``--trace FILE`` (write span/event records as JSON-lines; see
docs/OBSERVABILITY.md for the schema) and ``--profile`` (print the
span-tree profile — per-phase count, total and self time — after the
result).  ``compute``, ``estimate``, ``analyze`` and ``run``
additionally accept ``--deadline SECONDS`` and ``--max-cost N``
resource budgets; ``run`` degrades along an engine chain instead of
failing outright (see docs/ROBUSTNESS.md).

The ``bench`` subcommand family drives the unified benchmark harness
(:mod:`repro.bench`)::

    python -m repro bench list
    python -m repro bench run --all --quick
    python -m repro bench run kernels.mc_truth --out fresh.jsonl --no-append
    python -m repro bench compare --fresh fresh.jsonl
    python -m repro bench report experiments.e1_qf_reliability
    python -m repro bench migrate
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from fractions import Fraction
from typing import List, Optional

from repro import obs
from repro.logic.classify import classify
from repro.logic.evaluator import FOQuery
from repro.relational.encoding import decode_unreliable_database
from repro.reliability.approx import reliability_additive
from repro.reliability.exact import expected_error, reliability
from repro.reliability.montecarlo import estimate_reliability_hamming
from repro.reliability.padding import padded_reliability
from repro.reliability.report import analyze
from repro.runtime import Budget
from repro.runtime import apply as apply_budget
from repro.runtime import costmodel
from repro.runtime.executor import DEFAULT_CHAIN, run_with_fallback
from repro.util.errors import (
    BudgetExceeded,
    CostRefused,
    FallbackExhausted,
    QueryError,
    ReproError,
)

# Distinct exit codes so scripts can branch on *why* a query failed
# without parsing stderr.  2 stays the generic error code.
EXIT_COST_REFUSED = 3
EXIT_BUDGET_EXCEEDED = 4
EXIT_FALLBACK_EXHAUSTED = 5


def _load(path: str):
    with open(path) as handle:
        return decode_unreliable_database(handle.read())


def _query(args: argparse.Namespace) -> FOQuery:
    return FOQuery(args.query, args.free or None)


def _cmd_compute(args: argparse.Namespace) -> int:
    db = _load(args.database)
    query = _query(args)
    value = reliability(db, query, method=args.method)
    print(f"reliability = {value} ({float(value):.6f})")
    if args.expected_error:
        h = expected_error(db, query, method=args.method)
        print(f"expected_error = {h} ({float(h):.6f})")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    db = _load(args.database)
    query = _query(args)
    rng = random.Random(args.seed)
    if args.estimator == "karp-luby":
        estimate = reliability_additive(
            db, query, args.epsilon, args.delta, rng
        )
        print(
            f"reliability ~ {estimate.value:.6f}  "
            f"(+/- {args.epsilon} with prob >= {1 - args.delta}; "
            f"{estimate.samples} samples)"
        )
    elif args.estimator == "padding":
        estimate = padded_reliability(
            db, query, args.epsilon, args.delta, rng, xi=Fraction(1, 4)
        )
        print(
            f"reliability ~ {estimate.value:.6f}  "
            f"(+/- {args.epsilon} with prob >= {1 - args.delta}; "
            f"{estimate.samples} samples)"
        )
    else:
        value = estimate_reliability_hamming(
            db, query, rng, epsilon=args.epsilon, delta=args.delta
        )
        print(
            f"reliability ~ {value:.6f}  "
            f"(+/- {args.epsilon} with prob >= {1 - args.delta})"
        )
    return 0


def _calibration_model(args: argparse.Namespace):
    """The cost model named by ``--calibration``, or ``None``.

    A bad file degrades to the closed-form model inside
    :func:`repro.runtime.costmodel.load_or_fallback` — the command
    still runs (``costmodel.fallback`` counts the degradation).
    """
    path = getattr(args, "calibration", None)
    if path is None:
        return None
    return costmodel.load_or_fallback(path)


def _adaptive_flag(args: argparse.Namespace) -> bool:
    """``--adaptive[=off|on]`` to the executor's boolean (default off)."""
    return getattr(args, "adaptive", None) == "on"


def _cmd_analyze(args: argparse.Namespace) -> int:
    db = _load(args.database)
    query = _query(args)
    rng = random.Random(args.seed) if args.seed is not None else None
    report = analyze(
        db,
        query,
        rng=rng,
        epsilon=args.epsilon,
        delta=args.delta,
        cost_model=_calibration_model(args),
        race=args.race,
        adaptive=_adaptive_flag(args),
    )
    print(report.render())
    if getattr(args, "explain_dichotomy", False):
        print(report.explain_dichotomy())
    return 0


def _activate_cache(args: argparse.Namespace) -> None:
    """Turn on the persistent compilation cache for this invocation.

    ``--cache-dir`` wins; otherwise ``$REPRO_CACHE_DIR`` (when set and
    nonempty) activates the tier.  Without either, compilation stays
    memory-only.
    """
    from repro.kernels import cache_persist

    if getattr(args, "cache_dir", None):
        cache_persist.configure(args.cache_dir)
    else:
        cache_persist.configure_from_env()


def _cache_tier(args: argparse.Namespace):
    """The persistent cache named by ``--cache-dir`` / the environment."""
    from repro.kernels import cache_persist

    if getattr(args, "cache_dir", None):
        return cache_persist.PersistentCache(args.cache_dir)
    import os

    directory = os.environ.get(cache_persist.ENV_CACHE_DIR, "").strip()
    if not directory:
        raise QueryError(
            "no cache directory: pass --cache-dir or set "
            f"${cache_persist.ENV_CACHE_DIR}"
        )
    return cache_persist.PersistentCache(directory)


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    stats = _cache_tier(args).stats()
    print(f"directory  {stats['directory']}")
    print(f"files      {stats['files']}")
    print(f"bytes      {stats['bytes']}")
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    tier = _cache_tier(args)
    removed = tier.clear()
    print(f"removed {removed} cache file(s) from {tier.directory}")
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    tier = _cache_tier(args)
    removed = tier.gc(max_files=args.max_files, max_bytes=args.max_bytes)
    stats = tier.stats()
    print(
        f"evicted {removed} cache file(s); {stats['files']} file(s), "
        f"{stats['bytes']} byte(s) remain in {tier.directory}"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    _activate_cache(args)
    db = _load(args.database)
    query = _query(args)
    chain = tuple(
        name.strip() for name in args.engine_chain.split(",") if name.strip()
    )
    result = run_with_fallback(
        db,
        query,
        chain=chain,
        quantity=args.quantity,
        epsilon=args.epsilon,
        delta=args.delta,
        rng=random.Random(args.seed),
        cost_model=_calibration_model(args),
        race=False if args.race is None else args.race,
        adaptive=_adaptive_flag(args),
    )
    print(result.describe())
    return 0


def _read_request_lines(source: str) -> List[str]:
    if source == "-":
        return sys.stdin.read().splitlines()
    with open(source) as handle:
        return handle.read().splitlines()


def _cmd_serve(args: argparse.Namespace) -> int:
    """Batch serving: drain a JSONL request stream through one Server.

    Every non-blank input line yields exactly one JSON response line on
    stdout — lines that do not even parse into a request are answered
    ``invalid`` immediately (with the ``id`` recovered when possible),
    everything else goes through admission/scheduling.
    """
    from repro.serve import protocol
    from repro.serve.admission import DegradationLadder
    from repro.serve.breaker import CircuitBreaker
    from repro.serve.retry import RetryPolicy
    from repro.serve.scheduler import Server

    _activate_cache(args)
    db = _load(args.database)
    requests = []
    invalid = 0
    for line in _read_request_lines(args.input):
        if not line.strip():
            continue
        try:
            requests.append(protocol.parse_request_line(line))
        except QueryError as exc:
            invalid += 1
            payload = {"id": None, "code": "invalid", "detail": str(exc)}
            try:
                raw = json.loads(line)
                if isinstance(raw, dict) and "id" in raw:
                    payload["id"] = str(raw["id"])
            except json.JSONDecodeError:
                pass
            print(json.dumps(payload, sort_keys=True))
    server = Server(
        db,
        pool_size=args.pool,
        queue_capacity=args.queue,
        ladder=DegradationLadder(
            relative_at=args.relative_at, additive_at=args.additive_at
        ),
        retry=RetryPolicy(max_retries=args.retries),
        breaker=CircuitBreaker(
            threshold=args.breaker_threshold,
            cooldown=args.breaker_cooldown,
        ),
        cost_model=_calibration_model(args),
        adaptive=_adaptive_flag(args),
    )
    responses = server.run(requests)
    for response in responses:
        print(protocol.format_response(response))
    ok = sum(1 for response in responses if response.ok)
    total = len(responses) + invalid
    print(
        f"served {total} request(s): {ok} ok, {total - ok} not ok",
        file=sys.stderr,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Emit one validated request line for `repro serve` to consume."""
    from repro.serve import protocol
    from repro.serve.request import ServeRequest

    chain = None
    if args.engine_chain:
        chain = tuple(
            name.strip()
            for name in args.engine_chain.split(",")
            if name.strip()
        )
    request = ServeRequest(
        id=args.id,
        query=args.query,
        free=tuple(args.free) if args.free else None,
        tenant=args.tenant,
        quantity=args.quantity,
        epsilon=args.epsilon,
        delta=args.delta,
        deadline=args.deadline,
        max_cost=args.max_cost,
        chain=chain,
        seed=args.seed,
        arrival=args.arrival,
    )
    request.validate()
    print(json.dumps(protocol.request_to_payload(request), sort_keys=True))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    model = costmodel.calibrate(
        epsilon=args.epsilon,
        delta=args.delta,
        rng=args.seed,
        repeats=args.repeats,
        seed=args.seed,
    )
    model.save(args.out)
    print(f"calibration written to {args.out}")
    for name in sorted(model.engines):
        calibration = model.engines[name]
        print(
            f"  {name}: {calibration.observations} observations, "
            f"rmse {calibration.rmse:.3f} (log-seconds)"
        )
    if not model.engines:
        print("  (no engine collected enough timings; closed forms apply)")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    db = _load(args.database)
    structure = db.structure
    print(f"universe: {len(structure)} elements")
    for symbol in structure.vocabulary:
        rows = structure.relation(symbol.name)
        print(f"relation {symbol}: {len(rows)} tuples")
    uncertain = db.uncertain_atoms()
    print(f"uncertain atoms: {len(uncertain)}")
    if uncertain:
        rates = sorted({str(db.mu(a)) for a in uncertain})
        print(f"error rates in use: {', '.join(rates)}")
        print(f"possible worlds: 2^{len(uncertain)}")
    if args.query:
        query = FOQuery(args.query, args.free or None)
        print(f"query fragment: {classify(query.formula)}")
        answers = query.answers(structure)
        print(f"observed answer: {len(answers)} tuples")
    return 0


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from repro import bench

    cases = bench.all_cases(group=args.group)
    if not cases:
        print("(no registered benchmarks)")
        return 0
    width = max(len(case.bench_id) for case in cases)
    for case in cases:
        print(
            f"{case.bench_id:<{width}}  repeats={case.effective_repeats()} "
            f"quick_repeats={case.effective_repeats(True)}  "
            f"{case.description}"
        )
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro import bench

    if not args.benchmarks and not args.all and not args.group:
        print(
            "error: name benchmarks, or pass --all / --group",
            file=sys.stderr,
        )
        return 2
    bench_ids = args.benchmarks or None
    results = bench.run_many(
        bench_ids,
        group=args.group,
        quick=args.quick,
        repeats=args.repeats,
        progress=lambda line: print(f"  running {line}"),
    )
    history = bench.History(args.history)
    out_lines = []
    for result in results:
        record = result.to_dict()
        if not args.no_append:
            history.append(record)
        out_lines.append(result.to_json())
        print(
            f"{result.bench:<36} {result.seconds:>10.6f}s  "
            f"key={result.workload_key}"
        )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write("\n".join(out_lines) + "\n")
        print(f"wrote {len(out_lines)} record(s) to {args.out}")
    if not args.no_append:
        print(f"appended {len(results)} record(s) to {history.path}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro import bench

    history = bench.History(args.history)
    if not history.exists():
        print(f"error: no history at {history.path}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.tolerance is not None:
        kwargs["tolerance"] = args.tolerance
    if args.window is not None:
        kwargs["window"] = args.window
    if args.fresh:
        fresh, skipped = bench.History(args.fresh).load()
        if skipped:
            print(f"warning: skipped {skipped} invalid fresh record(s)")
        comparison = bench.compare_against_history(fresh, history, **kwargs)
    else:
        comparison = bench.self_compare(history, **kwargs)
    print(comparison.render())
    return 0 if comparison.ok else 1


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro import bench
    from repro.bench import report as bench_report

    history = bench.History(args.history)
    if not history.exists():
        print(f"error: no history at {history.path}", file=sys.stderr)
        return 2
    if args.benchmark:
        print(bench_report.bench_detail(history, args.benchmark, args.key))
    else:
        print(bench_report.trend_table(history))
    return 0


def _cmd_bench_migrate(args: argparse.Namespace) -> int:
    from repro import bench
    from repro.bench import convert

    records = convert.convert_all(args.root)
    if not records:
        print("no legacy BENCH_*.json files found")
        return 0
    history = bench.History(args.history)
    count = history.append_all(records)
    print(f"converted {count} legacy record(s) into {history.path}")
    return 0


def _print_stats(recorder: obs.StatsRecorder) -> None:
    """Render the recorder's registry as an aligned summary table."""
    snapshot = recorder.summary()
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    print("-- engine stats --")
    if not (counters or gauges or histograms):
        print("(no instrumented engine ran)")
        return
    width = max(
        (len(name) for name in (*counters, *gauges, *histograms)), default=0
    )
    for name, value in counters.items():
        print(f"{name:<{width}}  {value}")
    for name, value in gauges.items():
        print(f"{name:<{width}}  {value}")
    for name, stats in histograms.items():
        mean = stats["mean"]
        print(
            f"{name:<{width}}  count={stats['count']} "
            f"total={stats['total']:.6g} "
            f"mean={0.0 if mean is None else mean:.6g}"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Query reliability on unreliable databases "
            "(Grädel-Gurevich-Hirsch, PODS 1998)"
        ),
    )
    # The flags are accepted both before the subcommand (global) and
    # after it (per-command); distinct dests keep argparse's
    # subparser-defaults-override-namespace behaviour from clobbering a
    # globally-given value.
    parser.add_argument(
        "--stats",
        dest="stats_global",
        action="store_true",
        help="print engine counters/timings after the result",
    )
    parser.add_argument(
        "--trace",
        dest="trace_global",
        metavar="FILE",
        help="write structured span/event trace as JSON-lines to FILE",
    )
    parser.add_argument(
        "--profile",
        dest="profile_global",
        action="store_true",
        help="print the span-tree profile (per-phase self/total time) "
        "after the result",
    )
    observability = argparse.ArgumentParser(add_help=False)
    observability.add_argument(
        "--stats",
        action="store_true",
        help="print engine counters/timings after the result",
    )
    observability.add_argument(
        "--trace",
        metavar="FILE",
        help="write structured span/event trace as JSON-lines to FILE",
    )
    observability.add_argument(
        "--profile",
        action="store_true",
        help="print the span-tree profile (per-phase self/total time) "
        "after the result",
    )
    resources = argparse.ArgumentParser(add_help=False)
    resources.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget; exceeding it aborts with an error "
        "(or degrades engines, under `run`)",
    )
    resources.add_argument(
        "--max-cost",
        type=int,
        metavar="N",
        dest="max_cost",
        help="cap on estimated work: worlds enumerated, clauses "
        "grounded, and samples drawn; hopeless runs are refused "
        "up front",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compute = sub.add_parser(
        "compute",
        help="exact reliability",
        parents=[observability, resources],
    )
    compute.add_argument("database", help="database file (canonical text format)")
    compute.add_argument("query", help="first-order query text")
    compute.add_argument("--free", nargs="*", help="free-variable order")
    compute.add_argument(
        "--method",
        choices=["auto", "qf", "dnf", "worlds"],
        default="auto",
        help="exact engine selection",
    )
    compute.add_argument(
        "--expected-error",
        action="store_true",
        help="also print H_psi",
    )
    compute.set_defaults(handler=_cmd_compute)

    estimate = sub.add_parser(
        "estimate",
        help="randomized reliability",
        parents=[observability, resources],
    )
    estimate.add_argument("database")
    estimate.add_argument("query")
    estimate.add_argument("--free", nargs="*")
    estimate.add_argument("--epsilon", type=float, default=0.05)
    estimate.add_argument("--delta", type=float, default=0.05)
    estimate.add_argument("--seed", type=int, default=0)
    estimate.add_argument(
        "--estimator",
        choices=["karp-luby", "padding", "hamming"],
        default="karp-luby",
        help=(
            "karp-luby: Cor 5.5 (existential/universal); padding: Thm "
            "5.12 (any PTIME query); hamming: whole-table world sampling"
        ),
    )
    estimate.set_defaults(handler=_cmd_estimate)

    analyze_cmd = sub.add_parser(
        "analyze",
        help="classify, dispatch and explain in one call",
        parents=[observability, resources],
    )
    analyze_cmd.add_argument("database")
    analyze_cmd.add_argument("query")
    analyze_cmd.add_argument("--free", nargs="*")
    analyze_cmd.add_argument("--epsilon", type=float, default=0.05)
    analyze_cmd.add_argument("--delta", type=float, default=0.05)
    analyze_cmd.add_argument(
        "--seed",
        type=int,
        default=None,
        help="enable estimators with this seed (omit to force exact)",
    )
    analyze_cmd.add_argument(
        "--calibration",
        metavar="PATH",
        help="cost-model calibration file (from `repro calibrate`) used "
        "for the run recommendation",
    )
    analyze_cmd.add_argument(
        "--race",
        nargs="?",
        const=True,
        type=float,
        default=None,
        metavar="OVERLAP",
        help="simulate the speculative race `run --race` would hold; "
        "the recommendation becomes the predicted race winner "
        "(optional OVERLAP fraction, default 0.5)",
    )
    analyze_cmd.add_argument(
        "--adaptive",
        nargs="?",
        const="on",
        choices=["off", "on"],
        default=None,
        help="price the sequential empirical-Bernstein stopper a "
        "`run --adaptive` would use: sampling-engine forecasts show "
        "expected vs worst-case samples and surrogate-adjusted seconds",
    )
    analyze_cmd.add_argument(
        "--explain-dichotomy",
        action="store_true",
        help="print the static Dalvi-Suciu dichotomy verdict: the "
        "hierarchy tree (the safe plan) for safe queries, the "
        "#P-hardness witness for unsafe ones",
    )
    analyze_cmd.set_defaults(handler=_cmd_analyze)

    run = sub.add_parser(
        "run",
        help="resilient execution: degrade across an engine chain "
        "under a budget",
        parents=[observability, resources],
    )
    run.add_argument("database")
    run.add_argument("query")
    run.add_argument("--free", nargs="*")
    run.add_argument(
        "--engine-chain",
        dest="engine_chain",
        default=",".join(DEFAULT_CHAIN),
        metavar="a,b,c",
        help=f"fallback order (default: {','.join(DEFAULT_CHAIN)})",
    )
    run.add_argument(
        "--quantity",
        choices=["reliability", "probability"],
        default="reliability",
        help="what to compute: R_psi (any arity) or Pr[B |= psi] (Boolean)",
    )
    run.add_argument("--epsilon", type=float, default=0.05)
    run.add_argument("--delta", type=float, default=0.05)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--calibration",
        metavar="PATH",
        help="cost-model calibration file (from `repro calibrate`); "
        "orders the chain by predicted cost within guarantee tiers",
    )
    run.add_argument(
        "--race",
        nargs="?",
        const=True,
        type=float,
        default=None,
        metavar="OVERLAP",
        help="race the chain speculatively: each engine launches once "
        "the previous one has consumed OVERLAP (default 0.5) of its "
        "fair-share slice; the strongest-tier answer wins (see "
        "docs/ROBUSTNESS.md, 'Speculative racing')",
    )
    run.add_argument(
        "--adaptive",
        nargs="?",
        const="on",
        choices=["off", "on"],
        default=None,
        help="stop the sampling engines as soon as empirical-Bernstein "
        "confidence intervals certify the (epsilon, delta) guarantee; "
        "the worst-case sample count becomes a never-exceeded cap "
        "(see docs/PERFORMANCE.md, 'Adaptive stopping')",
    )
    run.add_argument(
        "--cache-dir",
        dest="cache_dir",
        metavar="DIR",
        help="persist compiled plans/groundings under DIR so later "
        "processes warm-start (default: $REPRO_CACHE_DIR when set)",
    )
    run.set_defaults(handler=_cmd_run)

    serve = sub.add_parser(
        "serve",
        help="multi-query scheduler: drain a JSONL request batch over "
        "one shared worker pool with admission control",
        parents=[observability],
    )
    serve.add_argument("database")
    serve.add_argument(
        "--input",
        default="-",
        metavar="FILE",
        help="JSONL request stream (default: stdin; see `repro submit`)",
    )
    serve.add_argument(
        "--pool", type=int, default=4, metavar="N",
        help="worker pool size (queries in flight at once)",
    )
    serve.add_argument(
        "--queue", type=int, default=16, metavar="N",
        help="backlog capacity; admitted work beyond it is shed "
        "with code `overloaded`",
    )
    serve.add_argument(
        "--relative-at", type=int, default=4, metavar="DEPTH",
        help="backlog depth at which admissions degrade to the "
        "relative guarantee tier",
    )
    serve.add_argument(
        "--additive-at", type=int, default=8, metavar="DEPTH",
        help="backlog depth at which admissions degrade to the "
        "additive guarantee tier",
    )
    serve.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="max retries per query on transient engine faults",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive engine failures before its circuit opens",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=1.0, metavar="SECONDS",
        help="open-circuit cooldown before a half-open probe",
    )
    serve.add_argument(
        "--calibration",
        metavar="PATH",
        help="cost-model calibration file used for admission forecasts",
    )
    serve.add_argument(
        "--adaptive",
        nargs="?",
        const="on",
        choices=["off", "on"],
        default=None,
        help="adaptive sampling for every request: runs stop early "
        "once their guarantee is certified, and admission forecasts "
        "use the online surrogate's expected costs, admitting more "
        "under the same deadline as the surrogate warms",
    )
    serve.add_argument(
        "--cache-dir",
        dest="cache_dir",
        metavar="DIR",
        help="persist compiled plans/groundings under DIR; requests "
        "across the batch (and later server processes) warm-start "
        "(default: $REPRO_CACHE_DIR when set)",
    )
    serve.set_defaults(handler=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="format one serve request as a JSONL line",
    )
    submit.add_argument("id", help="request id (echoed in the response)")
    submit.add_argument("query", help="first-order query text")
    submit.add_argument("--free", nargs="*")
    submit.add_argument("--tenant", default="default")
    submit.add_argument(
        "--quantity",
        choices=["reliability", "probability"],
        default="reliability",
    )
    submit.add_argument("--epsilon", type=float, default=0.05)
    submit.add_argument("--delta", type=float, default=0.05)
    submit.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-query wall-clock budget, enforced by the server",
    )
    submit.add_argument(
        "--max-cost", type=int, default=None, dest="max_cost", metavar="N",
    )
    submit.add_argument(
        "--engine-chain", dest="engine_chain", default=None, metavar="a,b,c",
    )
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--arrival", type=float, default=0.0, metavar="SECONDS",
        help="scripted arrival offset (server replays arrivals in order)",
    )
    submit.set_defaults(handler=_cmd_submit)

    calibrate_cmd = sub.add_parser(
        "calibrate",
        help="fit per-engine cost models on a seeded workload and save "
        "a calibration file for `run`/`analyze` --calibration",
        parents=[observability],
    )
    calibrate_cmd.add_argument(
        "--out",
        default="calibration.json",
        metavar="PATH",
        help="calibration file to write (default: calibration.json)",
    )
    calibrate_cmd.add_argument("--epsilon", type=float, default=0.1)
    calibrate_cmd.add_argument("--delta", type=float, default=0.1)
    calibrate_cmd.add_argument("--seed", type=int, default=0)
    calibrate_cmd.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="times each workload case is run per engine (mixes cold- "
        "and warm-cache timings)",
    )
    calibrate_cmd.set_defaults(handler=_cmd_calibrate)

    inspect = sub.add_parser(
        "inspect", help="summarise a database file", parents=[observability]
    )
    inspect.add_argument("database")
    inspect.add_argument("--query", help="optionally classify a query")
    inspect.add_argument("--free", nargs="*")
    inspect.set_defaults(handler=_cmd_inspect)

    from repro.bench.history import DEFAULT_HISTORY

    bench_cmd = sub.add_parser(
        "bench",
        help="run registered benchmarks, track and gate the trajectory",
    )
    bench_sub = bench_cmd.add_subparsers(dest="bench_command", required=True)

    bench_list = bench_sub.add_parser(
        "list", help="list the registered benchmark cases"
    )
    bench_list.add_argument("--group", help="restrict to one group")
    bench_list.set_defaults(handler=_cmd_bench_list)

    bench_run = bench_sub.add_parser(
        "run",
        help="run benchmarks and record schema-versioned results",
    )
    bench_run.add_argument(
        "benchmarks", nargs="*", metavar="BENCH", help="benchmark ids"
    )
    bench_run.add_argument(
        "--all", action="store_true", help="run every registered case"
    )
    bench_run.add_argument("--group", help="run one group")
    bench_run.add_argument(
        "--quick",
        action="store_true",
        help="quick parameter profile (CI-sized workloads; recorded as "
        "a separate trajectory)",
    )
    bench_run.add_argument(
        "--repeats", type=int, default=None, help="override repeat count"
    )
    bench_run.add_argument(
        "--history",
        default=DEFAULT_HISTORY,
        metavar="PATH",
        help=f"trajectory store to append to (default: {DEFAULT_HISTORY})",
    )
    bench_run.add_argument(
        "--no-append",
        dest="no_append",
        action="store_true",
        help="do not append the records to the trajectory store",
    )
    bench_run.add_argument(
        "--out",
        metavar="FILE",
        help="also write the fresh records to FILE (JSON-lines)",
    )
    bench_run.set_defaults(handler=_cmd_bench_run)

    bench_compare = bench_sub.add_parser(
        "compare",
        help="gate fresh results against the recorded trajectory "
        "(robust relative bands; exit 1 on regression)",
    )
    bench_compare.add_argument(
        "--fresh",
        metavar="FILE",
        help="fresh records to gate (from `bench run --out`); omitted, "
        "each trajectory's newest record is gated against its past",
    )
    bench_compare.add_argument(
        "--history", default=DEFAULT_HISTORY, metavar="PATH"
    )
    bench_compare.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative band floor (default 0.75: flag past ~1.75x the "
        "trajectory median)",
    )
    bench_compare.add_argument(
        "--window",
        type=int,
        default=None,
        help="baseline records per trajectory (default 20)",
    )
    bench_compare.set_defaults(handler=_cmd_bench_compare)

    bench_report = bench_sub.add_parser(
        "report", help="trend tables over the recorded trajectory"
    )
    bench_report.add_argument(
        "benchmark", nargs="?", help="detail view of one benchmark"
    )
    bench_report.add_argument(
        "--key", help="restrict the detail view to one workload key"
    )
    bench_report.add_argument(
        "--history", default=DEFAULT_HISTORY, metavar="PATH"
    )
    bench_report.set_defaults(handler=_cmd_bench_report)

    bench_migrate = bench_sub.add_parser(
        "migrate",
        help="convert legacy BENCH_*.json files into the trajectory store",
    )
    bench_migrate.add_argument(
        "--root", default=".", help="directory holding the legacy files"
    )
    bench_migrate.add_argument(
        "--history", default=DEFAULT_HISTORY, metavar="PATH"
    )
    bench_migrate.set_defaults(handler=_cmd_bench_migrate)

    cache_cmd = sub.add_parser(
        "cache",
        help="inspect and maintain the persistent compilation cache",
    )
    cache_dir_opt = argparse.ArgumentParser(add_help=False)
    cache_dir_opt.add_argument(
        "--cache-dir",
        dest="cache_dir",
        metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)

    cache_stats = cache_sub.add_parser(
        "stats",
        help="file count and byte total for the cache directory",
        parents=[cache_dir_opt],
    )
    cache_stats.set_defaults(handler=_cmd_cache_stats)

    cache_clear = cache_sub.add_parser(
        "clear",
        help="delete every cache file",
        parents=[cache_dir_opt],
    )
    cache_clear.set_defaults(handler=_cmd_cache_clear)

    cache_gc = cache_sub.add_parser(
        "gc",
        help="evict oldest cache files beyond the given limits",
        parents=[cache_dir_opt],
    )
    cache_gc.add_argument(
        "--max-files",
        type=int,
        default=None,
        metavar="N",
        dest="max_files",
        help="keep at most N cache files",
    )
    cache_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        dest="max_bytes",
        help="keep at most N bytes of cache files",
    )
    cache_gc.set_defaults(handler=_cmd_cache_gc)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    stats = getattr(args, "stats", False) or args.stats_global
    trace = getattr(args, "trace", None) or args.trace_global
    profile = getattr(args, "profile", False) or args.profile_global
    recorder: Optional[obs.StatsRecorder] = None
    previous = None
    profile_events: Optional[obs.ListSink] = None
    if stats or trace or profile:
        sink = obs.JsonlSink(trace) if trace else None
        if profile:
            # Keep the span stream in memory for the profile; tee when a
            # trace file is also requested.
            profile_events = obs.ListSink()
            sink = (
                obs.TeeSink(sink, profile_events) if sink else profile_events
            )
        recorder = obs.StatsRecorder(sink=sink)
        previous = obs.set_recorder(recorder)
    deadline = getattr(args, "deadline", None)
    max_cost = getattr(args, "max_cost", None)
    try:
        if deadline is not None or max_cost is not None:
            budget = Budget(
                deadline=deadline,
                max_worlds=max_cost,
                max_ground_clauses=max_cost,
                max_samples=max_cost,
            )
            with apply_budget(budget):
                code = args.handler(args)
        else:
            code = args.handler(args)
        if recorder is not None and stats:
            _print_stats(recorder)
        if profile_events is not None:
            print("-- span profile --")
            print(obs.profile_spans(profile_events.events).render())
        return code
    except CostRefused as exc:
        print(f"cost refused: {exc}", file=sys.stderr)
        return EXIT_COST_REFUSED
    except BudgetExceeded as exc:
        print(f"budget exceeded: {exc}", file=sys.stderr)
        return EXIT_BUDGET_EXCEEDED
    except FallbackExhausted as exc:
        print(f"fallback exhausted: {exc}", file=sys.stderr)
        return EXIT_FALLBACK_EXHAUSTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if recorder is not None:
            obs.set_recorder(previous)
            recorder.close()


if __name__ == "__main__":
    raise SystemExit(main())
