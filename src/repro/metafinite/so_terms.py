"""Second-order metafinite terms — the FP^CH fragment of Theorem 6.2(iii).

Section 6 defines second-order metafinite queries by allowing multiset
operations over *relations* rather than tuples: from a term
``F(S, x)`` with a free second-order variable ``S`` one builds
``sum_S F(S, x)``, ranging over all 0/1-valued functions
``S : A^arity -> {0, 1}``.

Evaluation enumerates all ``2 ** (n ** arity)`` interpretations — the
same brute force the relational :mod:`repro.logic.so` uses, which is all
the Theorem 6.2(iii) upper-bound argument needs ("guess one of the
finitely many databases, ... evaluate").  The reliability of such
queries is computed by the generic engine in
:mod:`repro.metafinite.reliability`, since :class:`SOMetafiniteQuery`
implements the same query protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Dict, Mapping, Sequence, Tuple, Union

from repro.logic.terms import Var
from repro.metafinite.database import FunctionalDatabase
from repro.metafinite.evaluator import evaluate_term
from repro.metafinite.terms import MTerm, term_free_variables
from repro.util.errors import QueryError

SO_OPERATIONS = ("sum", "prod", "min", "max")


@dataclass(frozen=True)
class SOAggregate(MTerm):
    """A multiset operation over a second-order function variable.

    ``operation`` ranges over the body's values as ``relation_variable``
    runs through every 0/1 function of the given arity.  The body may
    mention the relation variable as an ordinary database function.
    """

    operation: str
    relation_variable: str
    arity: int
    body: MTerm

    __slots__ = ("operation", "relation_variable", "arity", "body")

    def __post_init__(self) -> None:
        if self.operation not in SO_OPERATIONS:
            raise QueryError(
                f"unknown second-order operation {self.operation!r}"
            )
        if self.arity < 1:
            raise QueryError("second-order variables need arity >= 1")

    def __str__(self) -> str:
        return (
            f"{self.operation}_{{{self.relation_variable}^{self.arity}}}"
            f"({self.body})"
        )


def so_aggregate(
    operation: str, relation_variable: str, arity: int, body: MTerm
) -> SOAggregate:
    """Constructor mirroring :func:`repro.metafinite.terms.aggregate`."""
    return SOAggregate(operation, relation_variable, arity, body)


def _expand_database(
    db: FunctionalDatabase, name: str, arity: int, bits: Sequence[int]
) -> FunctionalDatabase:
    rows = tuple(product(db.universe, repeat=arity))
    functions: Dict[str, Dict[Tuple, Any]] = {
        fname: dict(
            (args, db.value(fname, args))
            for args in product(db.universe, repeat=db.arity(fname))
        )
        for fname in db.function_names()
    }
    if name in functions:
        raise QueryError(f"database already defines {name!r}")
    functions[name] = {row: bit for row, bit in zip(rows, bits)}
    return FunctionalDatabase(db.universe, functions)


def evaluate_so_term(
    db: FunctionalDatabase,
    term: MTerm,
    env: Mapping[Var, Any],
) -> Any:
    """Evaluate a term that may contain :class:`SOAggregate` nodes.

    First-order parts delegate to the standard evaluator; each
    second-order node enumerates all 0/1 functions for its variable.
    """
    if isinstance(term, SOAggregate):
        rows = len(db.universe) ** term.arity
        values = []
        for pattern in product((0, 1), repeat=rows):
            expanded = _expand_database(
                db, term.relation_variable, term.arity, pattern
            )
            values.append(evaluate_so_term(expanded, term.body, env))
        if term.operation == "sum":
            total = values[0]
            for value in values[1:]:
                total = total + value
            return total
        if term.operation == "prod":
            total = values[0]
            for value in values[1:]:
                total = total * value
            return total
        if term.operation == "min":
            return min(values)
        return max(values)
    # No SO nodes below?  Fall back to the fast evaluator.
    if not _contains_so(term):
        return evaluate_term(db, term, env)
    # Mixed node: recurse through the first-order structure.
    from repro.metafinite.terms import Apply, FuncTerm, MultisetOp, NumConst

    if isinstance(term, (NumConst, FuncTerm)):
        return evaluate_term(db, term, env)
    if isinstance(term, Apply):
        from repro.metafinite.terms import OPERATIONS

        values = [evaluate_so_term(db, sub, env) for sub in term.args]
        return OPERATIONS[term.operation](*values)
    if isinstance(term, MultisetOp):
        inner: Dict[Var, Any] = dict(env)
        values = []
        for combo in product(db.universe, repeat=len(term.variables)):
            for variable, value in zip(term.variables, combo):
                inner[variable] = value
            values.append(evaluate_so_term(db, term.body, inner))
        if term.operation == "sum":
            return sum(values)
        if term.operation == "prod":
            result = values[0]
            for value in values[1:]:
                result = result * value
            return result
        if term.operation == "min":
            return min(values)
        if term.operation == "max":
            return max(values)
        if term.operation == "count":
            return sum(1 for v in values if v != 0)
        total = sum(values)
        from fractions import Fraction

        return (
            Fraction(total, len(values)) if isinstance(total, int)
            else total / len(values)
        )
    raise QueryError(f"unknown metafinite term {type(term).__name__}")


def _contains_so(term: MTerm) -> bool:
    from repro.metafinite.terms import Apply, MultisetOp

    if isinstance(term, SOAggregate):
        return True
    if isinstance(term, Apply):
        return any(_contains_so(sub) for sub in term.args)
    if isinstance(term, MultisetOp):
        return _contains_so(term.body)
    return False


class SOMetafiniteQuery:
    """A second-order metafinite query implementing the query protocol."""

    __slots__ = ("term", "free_order")

    def __init__(
        self,
        term: MTerm,
        free_order: Sequence[Union[str, Var]] = (),
    ):
        self.term = term
        order = tuple(Var(v) if isinstance(v, str) else v for v in free_order)
        self.free_order = order

    @property
    def arity(self) -> int:
        return len(self.free_order)

    def evaluate(self, db: FunctionalDatabase, args: Sequence[Any] = ()):
        if len(args) != self.arity:
            raise QueryError(
                f"query has arity {self.arity}, got {len(args)} arguments"
            )
        env = dict(zip(self.free_order, args))
        return evaluate_so_term(db, self.term, env)

    def answers(self, db: FunctionalDatabase) -> Dict[Tuple[Any, ...], Any]:
        result: Dict[Tuple[Any, ...], Any] = {}
        for args in product(db.universe, repeat=self.arity):
            result[args] = self.evaluate(db, args)
        return result

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.free_order)
        return f"SOMetafiniteQuery([{names}] -> {self.term})"
