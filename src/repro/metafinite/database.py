"""Functional databases and their unreliable variant (Definition 6.1)."""

from __future__ import annotations

import random
from fractions import Fraction
from itertools import product
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.util.errors import ProbabilityError, VocabularyError
from repro.util.rationals import RationalLike, as_fraction, parse_probability

Entry = Tuple[str, Tuple[Any, ...]]  # (function name, argument tuple)
Value = Any  # values live in the interpreted structure R (numbers here)


class FunctionalDatabase:
    """A finite set ``A`` with functions ``f : A^k -> R``.

    Functions are total over ``A^k``: every argument tuple must be
    assigned a value.  Values are numbers (int / Fraction / float) —
    the "standard arithmetic" instance of Theorem 6.2.
    """

    __slots__ = ("_universe", "_functions", "_arities", "_hash")

    def __init__(
        self,
        universe: Sequence[Any],
        functions: Mapping[str, Mapping[Tuple[Any, ...], Value]],
    ):
        self._universe: Tuple[Any, ...] = tuple(universe)
        universe_set = frozenset(self._universe)
        if len(universe_set) != len(self._universe):
            raise VocabularyError("universe contains duplicate elements")
        table: Dict[str, Dict[Tuple[Any, ...], Value]] = {}
        arities: Dict[str, int] = {}
        for name, mapping in functions.items():
            entries = {tuple(args): value for args, value in mapping.items()}
            if entries:
                arity = len(next(iter(entries)))
            else:
                arity = 0
            expected = len(self._universe) ** arity
            if len(entries) != expected:
                raise VocabularyError(
                    f"function {name!r} is partial: {len(entries)} entries, "
                    f"expected {expected} for arity {arity}"
                )
            for args in entries:
                if len(args) != arity:
                    raise VocabularyError(
                        f"function {name!r} has mixed arities"
                    )
                for element in args:
                    if element not in universe_set:
                        raise VocabularyError(
                            f"{name}{args} mentions {element!r}, "
                            "not in the universe"
                        )
            table[name] = entries
            arities[name] = arity
        self._functions = table
        self._arities = arities
        self._hash: Optional[int] = None

    @property
    def universe(self) -> Tuple[Any, ...]:
        return self._universe

    def __len__(self) -> int:
        return len(self._universe)

    def function_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._functions))

    def arity(self, name: str) -> int:
        try:
            return self._arities[name]
        except KeyError:
            raise VocabularyError(f"unknown function {name!r}") from None

    def value(self, name: str, args: Tuple[Any, ...]) -> Value:
        """``f(args)`` in this database."""
        try:
            mapping = self._functions[name]
        except KeyError:
            raise VocabularyError(f"unknown function {name!r}") from None
        try:
            return mapping[args]
        except KeyError:
            raise VocabularyError(f"{name}{args!r} is outside A^k") from None

    def entries(self) -> Iterator[Tuple[Entry, Value]]:
        """All ``((f, args), value)`` pairs, deterministic order."""
        for name in self.function_names():
            for args in sorted(self._functions[name], key=repr):
                yield (name, args), self._functions[name][args]

    def with_entry(self, name: str, args: Tuple[Any, ...], value: Value):
        """A copy with one entry changed."""
        self.value(name, args)  # validates
        functions = {
            fname: dict(mapping) for fname, mapping in self._functions.items()
        }
        functions[name][tuple(args)] = value
        return FunctionalDatabase(self._universe, functions)

    def with_entries(self, updates: Mapping[Entry, Value]):
        """A copy with several entries changed at once."""
        functions = {
            fname: dict(mapping) for fname, mapping in self._functions.items()
        }
        for (name, args), value in updates.items():
            self.value(name, tuple(args))  # validates
            functions[name][tuple(args)] = value
        return FunctionalDatabase(self._universe, functions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FunctionalDatabase):
            return NotImplemented
        return (
            self._universe == other._universe
            and self._functions == other._functions
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self._universe,
                    tuple(
                        (name, tuple(sorted(mapping.items(), key=repr)))
                        for name, mapping in sorted(self._functions.items())
                    ),
                )
            )
        return self._hash

    def __repr__(self) -> str:
        functions = ", ".join(
            f"{name}/{self._arities[name]}" for name in self.function_names()
        )
        return f"FunctionalDatabase(|A|={len(self)}, {functions})"


class ValueDistribution:
    """A finite-support distribution over values of one entry ``f(a)``.

    Definition 6.1 requires finite support and total mass one; both are
    validated.  Probabilities are exact fractions.
    """

    __slots__ = ("_support",)

    def __init__(self, support: Mapping[Value, RationalLike]):
        table: Dict[Value, Fraction] = {}
        for value, probability in support.items():
            p = parse_probability(probability)
            if p > 0:
                table[value] = table.get(value, Fraction(0)) + p
        total = sum(table.values(), Fraction(0))
        if total != 1:
            raise ProbabilityError(
                f"value distribution sums to {total}, expected 1"
            )
        self._support = table

    def items(self) -> Iterator[Tuple[Value, Fraction]]:
        return iter(sorted(self._support.items(), key=lambda kv: repr(kv[0])))

    def probability(self, value: Value) -> Fraction:
        return self._support.get(value, Fraction(0))

    def support(self) -> Tuple[Value, ...]:
        return tuple(value for value, _p in self.items())

    def is_deterministic(self) -> bool:
        return len(self._support) == 1

    def sample(self, rng: random.Random) -> Value:
        roll = rng.random()
        cumulative = 0.0
        last = None
        for value, probability in self.items():
            cumulative += float(probability)
            last = value
            if roll < cumulative:
                return value
        return last

    def __len__(self) -> int:
        return len(self._support)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v!r}: {p}" for v, p in self.items())
        return f"ValueDistribution({{{inner}}})"


class UnreliableFunctionalDatabase:
    """Definition 6.1: an observed functional database plus per-entry
    value distributions.

    Entries without an explicit distribution are certain (their observed
    value has probability one).  Distributions are independent across
    entries.
    """

    __slots__ = ("_observed", "_distributions", "_uncertain")

    def __init__(
        self,
        observed: FunctionalDatabase,
        distributions: Optional[Mapping[Entry, ValueDistribution]] = None,
    ):
        self._observed = observed
        table: Dict[Entry, ValueDistribution] = {}
        if distributions:
            for (name, args), dist in distributions.items():
                observed.value(name, tuple(args))  # validates the entry
                if not isinstance(dist, ValueDistribution):
                    dist = ValueDistribution(dist)
                table[(name, tuple(args))] = dist
        self._distributions = table
        self._uncertain: Tuple[Entry, ...] = tuple(
            sorted(
                (e for e, d in table.items() if not d.is_deterministic()),
                key=repr,
            )
        )

    @property
    def observed(self) -> FunctionalDatabase:
        return self._observed

    @property
    def universe_size(self) -> int:
        return len(self._observed)

    def distribution(self, name: str, args: Tuple[Any, ...]) -> ValueDistribution:
        entry = (name, tuple(args))
        dist = self._distributions.get(entry)
        if dist is None:
            return ValueDistribution({self._observed.value(name, args): 1})
        return dist

    def uncertain_entries(self) -> Tuple[Entry, ...]:
        """Entries whose value is genuinely random, fixed order."""
        return self._uncertain

    def support_size(self) -> int:
        """Number of worlds with positive probability."""
        size = 1
        for name, args in self._uncertain:
            size *= len(self._distributions[(name, args)])
        return size

    def worlds(self) -> Iterator[Tuple[FunctionalDatabase, Fraction]]:
        """Enumerate ``(B, nu(B))`` — exponential; oracle and Thm 6.2 path.

        The paper's observation that the support is bounded by
        ``2 ** p(n)`` and each ``nu(B)`` is efficiently computable is
        visible here: the product structure gives both.
        """
        choices = []
        for entry in self._uncertain:
            dist = self._distributions[entry]
            choices.append([(entry, v, p) for v, p in dist.items()])
        # Deterministic distributions that disagree with the observed value
        # must be applied to every world.
        fixed_updates: Dict[Entry, Value] = {}
        for entry, dist in self._distributions.items():
            if dist.is_deterministic():
                value = dist.support()[0]
                if value != self._observed.value(entry[0], entry[1]):
                    fixed_updates[entry] = value
        base = (
            self._observed.with_entries(fixed_updates)
            if fixed_updates
            else self._observed
        )
        for combo in product(*choices):
            probability = Fraction(1)
            updates: Dict[Entry, Value] = {}
            for entry, value, p in combo:
                probability *= p
                if value != base.value(entry[0], entry[1]):
                    updates[entry] = value
            world = base.with_entries(updates) if updates else base
            yield world, probability

    def sample(self, rng: random.Random) -> FunctionalDatabase:
        """Draw one possible world."""
        updates: Dict[Entry, Value] = {}
        for entry, dist in self._distributions.items():
            value = dist.sample(rng)
            if value != self._observed.value(entry[0], entry[1]):
                updates[entry] = value
        return (
            self._observed.with_entries(updates) if updates else self._observed
        )

    def __repr__(self) -> str:
        return (
            f"UnreliableFunctionalDatabase({self._observed!r}, "
            f"{len(self._uncertain)} uncertain entries)"
        )
