"""Evaluation of metafinite terms on functional databases."""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Any, Dict, Mapping

from repro.logic.terms import Const, Var
from repro.metafinite.database import FunctionalDatabase
from repro.metafinite.terms import (
    OPERATIONS,
    Apply,
    FuncTerm,
    MTerm,
    MultisetOp,
    NumConst,
)
from repro.util.errors import EvaluationError, QueryError


def evaluate_term(
    db: FunctionalDatabase,
    term: MTerm,
    env: Mapping[Var, Any],
) -> Any:
    """The value of ``term`` on ``db`` under the variable assignment.

    Cost: polynomial in ``n`` for a fixed term — each multiset operation
    multiplies the work by ``n ** #bound_variables``.
    """
    if isinstance(term, NumConst):
        return term.value
    if isinstance(term, FuncTerm):
        args = []
        for sub in term.args:
            if isinstance(sub, Const):
                args.append(sub.value)
            else:
                try:
                    args.append(env[sub])
                except KeyError:
                    raise EvaluationError(
                        f"unbound variable {sub.name!r} in {term}"
                    ) from None
        return db.value(term.name, tuple(args))
    if isinstance(term, Apply):
        operation = OPERATIONS.get(term.operation)
        if operation is None:
            raise QueryError(f"unknown operation {term.operation!r}")
        values = [evaluate_term(db, sub, env) for sub in term.args]
        return operation(*values)
    if isinstance(term, MultisetOp):
        return _evaluate_multiset(db, term, env)
    raise QueryError(f"unknown metafinite term {type(term).__name__}")


def _evaluate_multiset(
    db: FunctionalDatabase,
    term: MultisetOp,
    env: Mapping[Var, Any],
) -> Any:
    values = []
    inner: Dict[Var, Any] = dict(env)
    for combo in product(db.universe, repeat=len(term.variables)):
        for variable, value in zip(term.variables, combo):
            inner[variable] = value
        values.append(evaluate_term(db, term.body, inner))
    if not values:
        # Empty universe: neutral elements where they exist.
        if term.operation == "sum":
            return 0
        if term.operation == "prod":
            return 1
        if term.operation == "count":
            return 0
        raise EvaluationError(
            f"{term.operation} over an empty multiset is undefined"
        )
    if term.operation == "sum":
        total = values[0]
        for value in values[1:]:
            total = total + value
        return total
    if term.operation == "prod":
        total = values[0]
        for value in values[1:]:
            total = total * value
        return total
    if term.operation == "min":
        return min(values)
    if term.operation == "max":
        return max(values)
    if term.operation == "count":
        return sum(1 for value in values if value != 0)
    if term.operation == "avg":
        total = values[0]
        for value in values[1:]:
            total = total + value
        if isinstance(total, int):
            return Fraction(total, len(values))
        return total / len(values)
    raise QueryError(f"unknown multiset operation {term.operation!r}")
