"""The term language for metafinite queries.

Terms (Section 6):

* :class:`FuncTerm` — a database function applied to first-order terms;
* :class:`NumConst` — a constant of the interpreted structure ``R``;
* :class:`Apply` — an interpreted operation of ``R`` applied to terms
  (arithmetic, comparisons and Boolean operations coded as 0/1, matching
  the paper's stipulation that ``R`` contains 0, 1 and the Boolean
  functions);
* :class:`MultisetOp` — a multiset operation binding first-order
  variables: ``sum_y F(x, y)`` etc.  ``max``/``min`` of 0/1 terms are the
  metafinite forms of exists/forall, as the paper points out.

Variables range over the finite set ``A`` only — never over ``R`` — which
is the restriction metafinite model theory uses to stay effective.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Any, Callable, Dict, FrozenSet, Mapping, Sequence, Tuple, Union

from repro.logic.terms import Const, Term, Var
from repro.util.errors import EvaluationError, QueryError

NumberLike = Union[int, float, Fraction]


class MTerm:
    """Base class for metafinite terms."""

    __slots__ = ()


@dataclass(frozen=True)
class NumConst(MTerm):
    """A constant of the interpreted numerical structure."""

    value: NumberLike

    __slots__ = ("value",)

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class FuncTerm(MTerm):
    """A database function applied to first-order terms: ``f(x, y)``."""

    name: str
    args: Tuple[Term, ...]

    __slots__ = ("name", "args")

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class Apply(MTerm):
    """An interpreted operation applied to sub-terms: ``add(t1, t2)``."""

    operation: str
    args: Tuple[MTerm, ...]

    __slots__ = ("operation", "args")

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.args)
        return f"{self.operation}({inner})"


@dataclass(frozen=True)
class MultisetOp(MTerm):
    """A multiset operation binding variables: ``sum_{y in A} body``."""

    operation: str  # "sum" | "prod" | "min" | "max" | "count" | "avg"
    variables: Tuple[Var, ...]
    body: MTerm

    __slots__ = ("operation", "variables", "body")

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"{self.operation}_{{{names}}}({self.body})"


def _as_bool(value: NumberLike) -> bool:
    return value != 0


def _from_bool(value: bool) -> int:
    return 1 if value else 0


def _safe_div(a: NumberLike, b: NumberLike) -> NumberLike:
    if b == 0:
        raise EvaluationError("division by zero in metafinite term")
    if isinstance(a, int) and isinstance(b, int):
        return Fraction(a, b)
    return a / b


# The interpreted operations of R.  All are efficiently computable, as
# Section 6 requires.  Comparisons and Boolean connectives return 0/1.
OPERATIONS: Dict[str, Callable[..., NumberLike]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _safe_div,
    "neg": lambda a: -a,
    "abs": lambda a: abs(a),
    "min2": lambda a, b: min(a, b),
    "max2": lambda a, b: max(a, b),
    "eq": lambda a, b: _from_bool(a == b),
    "neq": lambda a, b: _from_bool(a != b),
    "lt": lambda a, b: _from_bool(a < b),
    "leq": lambda a, b: _from_bool(a <= b),
    "gt": lambda a, b: _from_bool(a > b),
    "geq": lambda a, b: _from_bool(a >= b),
    "not": lambda a: _from_bool(not _as_bool(a)),
    "and": lambda *xs: _from_bool(all(_as_bool(x) for x in xs)),
    "or": lambda *xs: _from_bool(any(_as_bool(x) for x in xs)),
    "ite": lambda c, t, e: t if _as_bool(c) else e,
}

MULTISET_OPERATIONS = ("sum", "prod", "min", "max", "count", "avg")


# ---------------------------------------------------------------------- #
# constructors
# ---------------------------------------------------------------------- #


def num(value: NumberLike) -> NumConst:
    """A numeric constant term."""
    return NumConst(value)


def func(name: str, *args: Union[str, Term, Any]) -> FuncTerm:
    """A database-function term; bare strings become variables."""
    terms = []
    for arg in args:
        if isinstance(arg, (Var, Const)):
            terms.append(arg)
        elif isinstance(arg, str):
            terms.append(Var(arg))
        else:
            terms.append(Const(arg))
    return FuncTerm(name, tuple(terms))


def apply_op(operation: str, *args: Union[MTerm, NumberLike]) -> Apply:
    """An interpreted-operation term; bare numbers become constants."""
    if operation not in OPERATIONS:
        raise QueryError(f"unknown interpreted operation {operation!r}")
    terms = tuple(
        arg if isinstance(arg, MTerm) else NumConst(arg) for arg in args
    )
    return Apply(operation, terms)


def aggregate(
    operation: str, variables: Sequence[Union[str, Var]], body: MTerm
) -> MultisetOp:
    """A multiset-operation term: ``aggregate("sum", ["y"], body)``."""
    if operation not in MULTISET_OPERATIONS:
        raise QueryError(f"unknown multiset operation {operation!r}")
    block = tuple(Var(v) if isinstance(v, str) else v for v in variables)
    if not block:
        raise QueryError("a multiset operation must bind at least one variable")
    return MultisetOp(operation, block, body)


# ---------------------------------------------------------------------- #
# structural queries
# ---------------------------------------------------------------------- #


def term_free_variables(term: MTerm) -> FrozenSet[Var]:
    """Free first-order variables of a metafinite term."""
    if isinstance(term, NumConst):
        return frozenset()
    if isinstance(term, FuncTerm):
        return frozenset(t for t in term.args if isinstance(t, Var))
    if isinstance(term, Apply):
        result: FrozenSet[Var] = frozenset()
        for sub in term.args:
            result |= term_free_variables(sub)
        return result
    if isinstance(term, MultisetOp):
        return term_free_variables(term.body) - frozenset(term.variables)
    raise QueryError(f"unknown metafinite term {type(term).__name__}")


def is_aggregate_free(term: MTerm) -> bool:
    """True for quantifier-free terms (Theorem 6.2(i)'s fragment)."""
    if isinstance(term, (NumConst, FuncTerm)):
        return True
    if isinstance(term, Apply):
        return all(is_aggregate_free(sub) for sub in term.args)
    if isinstance(term, MultisetOp):
        return False
    raise QueryError(f"unknown metafinite term {type(term).__name__}")


def functions_used(term: MTerm) -> FrozenSet[str]:
    """Database-function names occurring in a term."""
    if isinstance(term, NumConst):
        return frozenset()
    if isinstance(term, FuncTerm):
        return frozenset({term.name})
    if isinstance(term, Apply):
        result: FrozenSet[str] = frozenset()
        for sub in term.args:
            result |= functions_used(sub)
        return result
    if isinstance(term, MultisetOp):
        return functions_used(term.body)
    raise QueryError(f"unknown metafinite term {type(term).__name__}")


class MetafiniteQuery:
    """A metafinite query: a term plus an explicit free-variable order.

    Associates with a functional database ``A`` the function
    ``F^A : A^k -> R`` (for ``k = 0``, a single numeric value).
    """

    __slots__ = ("term", "free_order")

    def __init__(
        self,
        term: MTerm,
        free_order: Sequence[Union[str, Var]] = (),
    ):
        self.term = term
        order = tuple(Var(v) if isinstance(v, str) else v for v in free_order)
        free = term_free_variables(term)
        if not order:
            order = tuple(sorted(free))
        if set(order) != set(free):
            raise QueryError(
                f"free_order {[v.name for v in order]} does not match free "
                f"variables {sorted(v.name for v in free)}"
            )
        self.free_order = order

    @property
    def arity(self) -> int:
        return len(self.free_order)

    def evaluate(self, db, args: Sequence[Any] = ()):
        """``F^A(args)`` — the term value on one argument tuple."""
        from repro.metafinite.evaluator import evaluate_term

        if len(args) != self.arity:
            raise QueryError(
                f"query has arity {self.arity}, got {len(args)} arguments"
            )
        env = dict(zip(self.free_order, args))
        return evaluate_term(db, self.term, env)

    def answers(self, db) -> Dict[Tuple[Any, ...], Any]:
        """The full function ``F^A`` as a dict (query-protocol analogue)."""
        result: Dict[Tuple[Any, ...], Any] = {}
        for args in product(db.universe, repeat=self.arity):
            result[args] = self.evaluate(db, args)
        return result

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.free_order)
        return f"MetafiniteQuery([{names}] -> {self.term})"
