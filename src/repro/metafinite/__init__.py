"""Metafinite (functional) databases with aggregates — Section 6.

A functional database over an interpreted numerical structure ``R`` is a
finite set ``A`` with functions ``f : A^k -> R``; queries are terms built
from the database functions, the interpreted operations of ``R`` and
multiset operations (sum, prod, min, max, count, avg) that play the role
SQL aggregates play — and that generalise quantifiers (max/min of 0-1
terms are exists/forall).

Unreliability (Definition 6.1): each entry ``f(a)`` carries a
finite-support probability distribution over values, independent across
entries, summing to one.  Theorem 6.2's algorithmic content is
implemented: exact polynomial-time reliability for quantifier-free terms,
exact FP^#P-style world enumeration for first-order (aggregate) terms,
and the Monte-Carlo estimators carried over from the relational case.
"""

from repro.metafinite.database import (
    FunctionalDatabase,
    UnreliableFunctionalDatabase,
    ValueDistribution,
)
from repro.metafinite.terms import (
    FuncTerm,
    NumConst,
    Apply,
    MultisetOp,
    MetafiniteQuery,
    func,
    num,
    apply_op,
    aggregate,
    OPERATIONS,
)
from repro.metafinite.evaluator import evaluate_term
from repro.metafinite.reliability import (
    metafinite_expected_error,
    metafinite_reliability,
    metafinite_reliability_qf,
    estimate_metafinite_reliability,
)

__all__ = [
    "FunctionalDatabase",
    "UnreliableFunctionalDatabase",
    "ValueDistribution",
    "FuncTerm",
    "NumConst",
    "Apply",
    "MultisetOp",
    "MetafiniteQuery",
    "func",
    "num",
    "apply_op",
    "aggregate",
    "OPERATIONS",
    "evaluate_term",
    "metafinite_expected_error",
    "metafinite_reliability",
    "metafinite_reliability_qf",
    "estimate_metafinite_reliability",
]
