"""Reliability of metafinite queries — Theorem 6.2 made executable.

For a k-ary metafinite query ``F`` the Hamming distance between ``F^A``
and ``F^B`` counts the tuples where the two functions *differ* (values in
``R`` are compared for equality), generalising the relational symmetric
difference; expected error and reliability are defined exactly as in
Definition 2.2.

Engines:

* :func:`metafinite_reliability_qf` — Theorem 6.2(i): for
  aggregate-free terms, the per-tuple error depends on the constantly
  many entries the instantiated term reads, so enumerating their joint
  distributions is polynomial;
* :func:`metafinite_expected_error` / :func:`metafinite_reliability` —
  the general exact engine: the Theorem 4.2-style world walk (Theorem
  6.2(ii)/(iii)'s algorithm, "guess one of the finitely many databases,
  split by its probability, evaluate");
* :func:`estimate_metafinite_reliability` — Monte Carlo over worlds, the
  Section 5 estimators carried to the metafinite setting.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from itertools import product
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.logic.terms import Const, Var
from repro.metafinite.database import (
    Entry,
    FunctionalDatabase,
    UnreliableFunctionalDatabase,
)
from repro.metafinite.terms import (
    Apply,
    FuncTerm,
    MetafiniteQuery,
    MTerm,
    MultisetOp,
    NumConst,
    functions_used,
    is_aggregate_free,
)
from repro.util.errors import ProbabilityError, QueryError


def _entries_read(term: MTerm, env: Mapping[Var, Any]) -> List[Entry]:
    """Entries ``(f, args)`` an aggregate-free term reads under ``env``."""
    if isinstance(term, NumConst):
        return []
    if isinstance(term, FuncTerm):
        args = []
        for sub in term.args:
            if isinstance(sub, Const):
                args.append(sub.value)
            else:
                args.append(env[sub])
        return [(term.name, tuple(args))]
    if isinstance(term, Apply):
        found: List[Entry] = []
        for sub in term.args:
            found.extend(_entries_read(sub, env))
        return found
    if isinstance(term, MultisetOp):
        raise QueryError("quantifier-free path got an aggregate term")
    raise QueryError(f"unknown metafinite term {type(term).__name__}")


def metafinite_reliability_qf(
    db: UnreliableFunctionalDatabase, query: MetafiniteQuery
) -> Fraction:
    """Theorem 6.2(i): exact reliability of an aggregate-free query in
    polynomial time.

    For each tuple, enumerate the joint value distributions of just the
    entries the instantiated term reads — constantly many for a fixed
    query — and sum the probability that the recomputed value differs
    from the observed one.
    """
    if not is_aggregate_free(query.term):
        raise QueryError("query contains aggregates; use the general engine")
    n = db.universe_size
    cells = n**query.arity
    if cells == 0:
        raise QueryError("reliability undefined on an empty universe")
    total_error = Fraction(0)
    for args in product(db.observed.universe, repeat=query.arity):
        env = dict(zip(query.free_order, args))
        entries = sorted(set(_entries_read(query.term, env)), key=repr)
        observed_value = query.evaluate(db.observed, args)
        distributions = [db.distribution(name, eargs) for name, eargs in entries]
        for combo in product(*(d.items() for d in distributions)):
            probability = Fraction(1)
            updates: Dict[Entry, Any] = {}
            for (name, eargs), (value, p) in zip(entries, combo):
                probability *= p
                updates[(name, eargs)] = value
            if probability == 0:
                continue
            world = (
                db.observed.with_entries(updates) if updates else db.observed
            )
            if query.evaluate(world, args) != observed_value:
                total_error += probability
    return 1 - total_error / cells


def metafinite_expected_error(
    db: UnreliableFunctionalDatabase, query: MetafiniteQuery
) -> Fraction:
    """Exact ``H_F`` by full world enumeration (Theorem 6.2(ii)'s walk)."""
    observed_answers = query.answers(db.observed)
    total = Fraction(0)
    for world, probability in db.worlds():
        if probability == 0:
            continue
        actual_answers = query.answers(world)
        distance = sum(
            1
            for args, value in observed_answers.items()
            if actual_answers[args] != value
        )
        total += probability * distance
    return total


def metafinite_reliability(
    db: UnreliableFunctionalDatabase, query: MetafiniteQuery
) -> Fraction:
    """Exact ``R_F = 1 - H_F / n**k``."""
    n = db.universe_size
    cells = n**query.arity
    if cells == 0:
        raise QueryError("reliability undefined on an empty universe")
    return 1 - metafinite_expected_error(db, query) / cells


def estimate_metafinite_reliability(
    db: UnreliableFunctionalDatabase,
    query: MetafiniteQuery,
    rng: random.Random,
    epsilon: float = 0.05,
    delta: float = 0.05,
    samples: int = 0,
) -> float:
    """Monte-Carlo ``R_F`` with an additive Hoeffding guarantee.

    The normalised Hamming distance is in ``[0, 1]``, so
    ``t = ln(2/delta) / (2 eps^2)`` samples suffice for
    ``Pr[|est - R_F| > eps] < delta``.
    """
    if samples <= 0:
        if epsilon <= 0 or delta <= 0 or delta >= 1:
            raise ProbabilityError(
                f"need epsilon > 0 and 0 < delta < 1, got {epsilon}, {delta}"
            )
        samples = max(1, math.ceil(math.log(2.0 / delta) / (2.0 * epsilon**2)))
    n = db.universe_size
    cells = n**query.arity
    if cells == 0:
        raise QueryError("reliability undefined on an empty universe")
    observed_answers = query.answers(db.observed)
    total = 0.0
    for _ in range(samples):
        world = db.sample(rng)
        actual_answers = query.answers(world)
        distance = sum(
            1
            for args, value in observed_answers.items()
            if actual_answers[args] != value
        )
        total += distance / cells
    return 1.0 - total / samples
