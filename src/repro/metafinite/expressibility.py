"""Reliability as a metafinite query — the expressibility result of
Section 6.

The paper closes with an observation from Grädel–Gurevich (Metafinite
Model Theory): once error probabilities live *inside* the database (as
numeric functions of a metafinite structure), the reliability of every
quantifier-free relational query is itself *first-order definable with
aggregates* — reliability is not just computable, it is a query.

This module makes that executable:

* :func:`metafinite_encoding` translates an unreliable relational
  database ``(A, mu)`` into a functional database carrying, for each
  relation ``R``, a 0/1 truth function ``truth_R`` and a rational error
  function ``err_R``;
* :func:`reliability_term` compiles a quantifier-free relational query
  ``psi`` into a metafinite term (sums, products, ``ite`` — all
  first-order-with-aggregates material) whose value on the encoding *is*
  ``R_psi(D)`` exactly.

The compilation mirrors the proof shape of Proposition 3.1: for each
tuple, sum over the (constantly many) joint truth assignments of the
atoms occurring in ``psi``, weighting by products of ``err`` /
``1 - err`` and testing whether the recomputed truth value differs from
the observed one.  Tests assert term value == the relational engine's
exact reliability on random databases.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Sequence, Tuple

from repro.logic.classify import is_quantifier_free
from repro.logic.evaluator import FOQuery
from repro.logic.fo import (
    And,
    AtomF,
    Bottom,
    Eq,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
)
from repro.logic.terms import Const, Var
from repro.metafinite.database import FunctionalDatabase
from repro.metafinite.terms import (
    Apply,
    MetafiniteQuery,
    MTerm,
    aggregate,
    apply_op,
    func,
    num,
)
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError

TRUTH_PREFIX = "truth_"
ERROR_PREFIX = "err_"


def metafinite_encoding(db: UnreliableDatabase) -> FunctionalDatabase:
    """Encode ``(A, mu)`` as a functional database.

    For every relation ``R`` of arity ``k``, two functions over ``A^k``:
    ``truth_R`` (0/1, the observed truth value) and ``err_R`` (the
    rational error probability).  This is the paper's move of treating
    the error probabilities "as part of the database".
    """
    functions: Dict[str, Dict[Tuple, object]] = {}
    structure = db.structure
    for symbol in structure.vocabulary:
        truth: Dict[Tuple, object] = {}
        error: Dict[Tuple, object] = {}
        for args in product(structure.universe, repeat=symbol.arity):
            from repro.relational.atoms import Atom

            atom = Atom(symbol.name, args)
            truth[args] = 1 if structure.holds(atom) else 0
            error[args] = db.mu(atom)
        functions[TRUTH_PREFIX + symbol.name] = truth
        functions[ERROR_PREFIX + symbol.name] = error
    functions[ID_FUNCTION] = {
        (element,): index for index, element in enumerate(structure.universe)
    }
    return FunctionalDatabase(structure.universe, functions)


def _collect_atoms(formula: Formula, found: List[AtomF]) -> None:
    if isinstance(formula, AtomF):
        if formula not in found:
            found.append(formula)
    elif isinstance(formula, (Top, Bottom, Eq)):
        pass
    elif isinstance(formula, Not):
        _collect_atoms(formula.sub, found)
    elif isinstance(formula, (And, Or)):
        for sub in formula.subs:
            _collect_atoms(sub, found)
    elif isinstance(formula, (Implies, Iff)):
        _collect_atoms(formula.left, found)
        _collect_atoms(formula.right, found)
    else:
        raise QueryError(
            f"reliability_term needs a quantifier-free query, got "
            f"{type(formula).__name__}"
        )


def _truth_term(
    formula: Formula, atom_values: Dict[AtomF, MTerm]
) -> MTerm:
    """A 0/1 term computing the formula under given 0/1 atom terms."""
    if isinstance(formula, Top):
        return num(1)
    if isinstance(formula, Bottom):
        return num(0)
    if isinstance(formula, AtomF):
        return atom_values[formula]
    if isinstance(formula, Eq):
        left = formula.left
        right = formula.right
        lhs = _eq_operand(left)
        rhs = _eq_operand(right)
        return apply_op("eq", lhs, rhs)
    if isinstance(formula, Not):
        return apply_op("not", _truth_term(formula.sub, atom_values))
    if isinstance(formula, And):
        return apply_op(
            "and", *(_truth_term(s, atom_values) for s in formula.subs)
        )
    if isinstance(formula, Or):
        return apply_op(
            "or", *(_truth_term(s, atom_values) for s in formula.subs)
        )
    if isinstance(formula, Implies):
        return apply_op(
            "or",
            apply_op("not", _truth_term(formula.left, atom_values)),
            _truth_term(formula.right, atom_values),
        )
    if isinstance(formula, Iff):
        return apply_op(
            "eq",
            _truth_term(formula.left, atom_values),
            _truth_term(formula.right, atom_values),
        )
    raise QueryError(f"unknown formula node {type(formula).__name__}")


ID_FUNCTION = "id_"


def _eq_operand(term) -> MTerm:
    # Universe elements are not values of the interpreted structure; the
    # standard metafinite trick is an injective id : A -> N function
    # (added by metafinite_encoding), so element equality becomes number
    # equality.
    return func(ID_FUNCTION, term)


def _atom_functions(atom: AtomF) -> Tuple[str, str, Tuple]:
    args = []
    for term in atom.args:
        args.append(term)
    return TRUTH_PREFIX + atom.relation, ERROR_PREFIX + atom.relation, tuple(args)


def reliability_term(query: FOQuery) -> MetafiniteQuery:
    """Compile a quantifier-free relational query into a reliability term.

    Returns a Boolean (0-ary) metafinite query ``T`` such that for every
    unreliable database ``D = (A, mu)``:

        ``T(metafinite_encoding(D)) == R_psi(D)``  (exactly).

    Structure of the compiled term::

        1 - avg_{x1..xk} sum_{assignments b of psi's atoms}
              [psi^b(x) != psi^obs(x)] * prod_i weight_i(b_i)

    where ``weight_i`` is ``err`` or ``1 - err`` of the i-th atom
    depending on whether ``b`` flips it.  The assignment sum is a
    constant-size unrolling (2^t for t atoms in psi), so the term is a
    fixed first-order-with-aggregates query — the expressibility claim.
    """
    formula = query.formula
    if not is_quantifier_free(formula):
        raise QueryError("reliability_term requires a quantifier-free query")
    atoms: List[AtomF] = []
    _collect_atoms(formula, atoms)

    observed_values: Dict[AtomF, MTerm] = {
        atom: func(TRUTH_PREFIX + atom.relation, *atom.args) for atom in atoms
    }
    observed_truth = _truth_term(formula, observed_values)

    # Sum over all 2^t joint actual-truth assignments.
    summands: List[MTerm] = []
    for pattern in product((0, 1), repeat=len(atoms)):
        actual_values: Dict[AtomF, MTerm] = {
            atom: num(bit) for atom, bit in zip(atoms, pattern)
        }
        actual_truth = _truth_term(formula, actual_values)
        differs = apply_op("neq", actual_truth, observed_truth)

        weight: MTerm = num(1)
        for atom, bit in zip(atoms, pattern):
            truth_f = func(TRUTH_PREFIX + atom.relation, *atom.args)
            err_f = func(ERROR_PREFIX + atom.relation, *atom.args)
            # P[actual = bit] = err if bit != observed else 1 - err:
            #   ite(truth == bit, 1 - err, err)
            factor = apply_op(
                "ite",
                apply_op("eq", truth_f, num(bit)),
                apply_op("sub", num(1), err_f),
                err_f,
            )
            weight = apply_op("mul", weight, factor)
        summands.append(apply_op("mul", differs, weight))

    per_tuple_error: MTerm = num(0)
    for summand in summands:
        per_tuple_error = apply_op("add", per_tuple_error, summand)

    if query.arity == 0:
        total = per_tuple_error
    else:
        # avg over all k-tuples == H / n^k.
        total = aggregate(
            "avg", [v.name for v in query.free_order], per_tuple_error
        )
    return MetafiniteQuery(apply_op("sub", num(1), total))
