"""Query reliability on unreliable databases — the paper's core.

An unreliable database (Definition 2.1) is a finite relational structure
``A`` together with per-atom error probabilities ``mu``; it induces a
product distribution ``nu`` over possible worlds ``B`` of the same format.
For a k-ary query ``psi``, the expected error ``H_psi`` is the expected
Hamming distance between ``psi^A`` and ``psi^B``, and the reliability is
``R_psi = 1 - H_psi / n^k`` (Definition 2.2).

Algorithms provided, each mapped to its result in the paper:

====================================================  ====================
:func:`~repro.reliability.exact.reliability`           exact engine; QF
                                                        fast path is
                                                        Proposition 3.1,
                                                        generic paths are
                                                        the FP^#P upper
                                                        bound of Thm 4.2
:func:`~repro.reliability.approx.existential_probability`  Theorem 5.4
                                                        FPTRAS
:func:`~repro.reliability.approx.reliability_additive`  Corollary 5.5
:func:`~repro.reliability.padding.padded_reliability`   Theorem 5.12
:func:`~repro.reliability.absolute.is_absolutely_reliable`  Lemmas 5.7-5.9
====================================================  ====================
"""

from repro.reliability.unreliable import UnreliableDatabase, uniform_error
from repro.reliability.space import (
    worlds,
    world_probability,
    support_size,
    world_granularity,
)
from repro.reliability.grounding import (
    ground_existential_to_dnf,
    relevant_atoms,
    GroundingResult,
)
from repro.reliability.exact import (
    reliability,
    expected_error,
    wrong_probability,
    truth_probability,
    qf_tuple_wrong_probability,
)
from repro.reliability.approx import (
    existential_probability,
    reliability_additive,
    AdditiveEstimate,
)
from repro.reliability.montecarlo import (
    hoeffding_samples,
    estimate_truth_probability,
    estimate_reliability_hamming,
)
from repro.reliability.padding import (
    pad_database,
    padded_truth_probability,
    padded_reliability,
    padding_sample_count,
)
from repro.reliability.absolute import is_absolutely_reliable
from repro.reliability.answers import (
    answer_probabilities,
    estimate_answer_probabilities,
    reliability_from_answers,
)
from repro.reliability.influence import (
    atom_influence,
    most_fragile_atoms,
    wrong_probability_sensitivity,
)
from repro.reliability.lifted import (
    UnsafeQueryError,
    is_hierarchical,
    is_safe,
    lifted_probability,
    lifted_reliability,
)
from repro.reliability.report import ReliabilityReport, analyze
from repro.reliability.calibration import (
    AuditRecord,
    RelationCalibration,
    calibrate_error_rates,
    calibrated_database,
)
from repro.reliability.repair import (
    expected_post_verification_wrong,
    greedy_verification_plan,
    verification_gain,
    verify_and_correct,
)

__all__ = [
    "answer_probabilities",
    "estimate_answer_probabilities",
    "reliability_from_answers",
    "atom_influence",
    "most_fragile_atoms",
    "wrong_probability_sensitivity",
    "UnsafeQueryError",
    "is_hierarchical",
    "is_safe",
    "lifted_probability",
    "lifted_reliability",
    "ReliabilityReport",
    "analyze",
    "verify_and_correct",
    "verification_gain",
    "expected_post_verification_wrong",
    "greedy_verification_plan",
    "AuditRecord",
    "RelationCalibration",
    "calibrate_error_rates",
    "calibrated_database",
    "UnreliableDatabase",
    "uniform_error",
    "worlds",
    "world_probability",
    "support_size",
    "world_granularity",
    "ground_existential_to_dnf",
    "relevant_atoms",
    "GroundingResult",
    "reliability",
    "expected_error",
    "wrong_probability",
    "truth_probability",
    "qf_tuple_wrong_probability",
    "existential_probability",
    "reliability_additive",
    "AdditiveEstimate",
    "hoeffding_samples",
    "estimate_truth_probability",
    "estimate_reliability_hamming",
    "pad_database",
    "padded_truth_probability",
    "padded_reliability",
    "padding_sample_count",
    "is_absolutely_reliable",
]
