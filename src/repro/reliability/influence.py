"""Atom influence: which facts make a query answer fragile?

Classical reliability theory (Birnbaum importance) carried to the
paper's model: the influence of an uncertain atom ``a`` on a Boolean
query ``psi`` is

    I(a) = Pr[B |= psi | a holds] - Pr[B |= psi | a fails],

the derivative of the truth probability with respect to ``nu(a)``.  For
a monotone query all influences are nonnegative; atoms with the largest
``|I(a)| * variance-ish`` weight are the facts worth re-checking first —
the actionable output a user of an unreliable database wants next to the
reliability number.

Computation rides the Theorem 5.4 grounding: condition the grounded DNF
on each atom and evaluate both branches exactly (or via Karp–Luby when
asked).  :func:`wrong_probability_sensitivity` converts influence into
the derivative of the *expected error*, flipping sign when the observed
database satisfies the query.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Any, Dict, Optional, Union

from repro import obs
from repro.logic.classify import is_existential, is_universal
from repro.logic.evaluator import FOQuery
from repro.logic.fo import Formula, neg
from repro.propositional.counting import probability_exact
from repro.propositional.karp_luby import karp_luby
from repro.relational.atoms import Atom
from repro.reliability.exact import as_query
from repro.reliability.grounding import (
    ground_existential_to_dnf,
    grounding_probabilities,
)
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError


def atom_influence(
    db: UnreliableDatabase,
    sentence: Union[str, Formula, FOQuery],
    epsilon: Optional[float] = None,
    delta: Optional[float] = None,
    rng: Optional[random.Random] = None,
    engine: str = "conditioning",
) -> Dict[Atom, Fraction]:
    """Influence ``I(a)`` of every relevant uncertain atom on a sentence.

    Exact by default (grounded DNF + Shannon expansion per branch); pass
    ``epsilon``/``delta``/``rng`` to estimate each branch with Karp–Luby
    instead.  The sentence must be existential or universal (universal
    sentences are negated, flipping the sign of every influence back at
    the end — conditioning commutes with complement).
    """
    query = as_query(sentence)
    if not isinstance(query, FOQuery) or query.arity != 0:
        raise QueryError("atom_influence expects a Boolean first-order sentence")
    formula = query.formula
    sign = 1
    if is_universal(formula) and not is_existential(formula):
        formula = neg(formula)
        sign = -1
    elif not is_existential(formula):
        raise QueryError(
            "atom_influence supports existential or universal sentences"
        )
    if engine not in ("conditioning", "bdd"):
        raise QueryError(f"unknown influence engine {engine!r}")
    grounding = ground_existential_to_dnf(db, formula)
    dnf = grounding.dnf
    if dnf.is_true() or dnf.is_false():
        return {}
    probs = grounding_probabilities(db, dnf)

    if engine == "bdd":
        if epsilon is not None:
            raise QueryError("the bdd engine is exact; drop epsilon/delta")
        from repro.propositional.bdd import influences_via_bdd

        raw = influences_via_bdd(dnf, probs)
        return {atom: sign * value for atom, value in sorted(
            raw.items(), key=lambda kv: repr(kv[0])
        )}

    def branch_probability(conditioned) -> Fraction:
        if epsilon is None:
            return probability_exact(conditioned, probs)
        if delta is None or rng is None:
            raise QueryError(
                "sampled influence needs epsilon, delta and rng together"
            )
        run = karp_luby(conditioned, probs, epsilon, delta, rng)
        return Fraction(run.estimate).limit_denominator(10**9)

    influences: Dict[Atom, Fraction] = {}
    with obs.span("influence.conditioning", atoms=len(dnf.variables)):
        for atom in sorted(dnf.variables, key=repr):
            high = branch_probability(dnf.restrict(atom, True))
            low = branch_probability(dnf.restrict(atom, False))
            influences[atom] = sign * (high - low)
            obs.inc("influence.atoms_evaluated")
            obs.inc("influence.branch_evaluations", 2)
    return influences


def wrong_probability_sensitivity(
    db: UnreliableDatabase,
    sentence: Union[str, Formula, FOQuery],
) -> Dict[Atom, Fraction]:
    """``d Pr[Wrong(psi)] / d nu(a)`` for every relevant uncertain atom.

    Equal to ``-I(a)`` when the observed database satisfies ``psi`` and
    ``+I(a)`` otherwise.  The atoms with the largest absolute
    sensitivity are the observations whose correction would improve (or
    whose corruption would hurt) the answer's reliability the most.
    """
    query = as_query(sentence)
    observed = query.evaluate(db.structure, ())
    influences = atom_influence(db, sentence)
    if not observed:
        return influences
    return {atom: -value for atom, value in influences.items()}


def most_fragile_atoms(
    db: UnreliableDatabase,
    sentence: Union[str, Formula, FOQuery],
    limit: int = 5,
):
    """The atoms whose uncertainty contributes most to the expected error.

    Ranks by ``|I(a)| * nu(a) * (1 - nu(a))`` — influence weighted by the
    atom's own variance, i.e. each atom's share of the answer's variance
    under independence.  Returns ``(atom, score)`` pairs, largest first.
    """
    influences = atom_influence(db, sentence)
    scored = []
    for atom, influence in influences.items():
        nu = db.nu(atom)
        scored.append((atom, abs(influence) * nu * (1 - nu)))
    scored.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return scored[:limit]
