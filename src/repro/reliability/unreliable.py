"""Unreliable databases: Definition 2.1 of the paper.

An :class:`UnreliableDatabase` is an observed structure ``A`` plus an
error-probability function ``mu`` on ground atoms.  ``mu(R a)`` is the
probability that the truth value of ``R a`` in ``A`` is *wrong*; error
events are independent across atoms.  From ``mu`` we derive ``nu``:

    nu(R a) = 1 - mu(R a)   if A |= R a
    nu(R a) = mu(R a)       otherwise

the probability that ``R a`` holds in the *actual* database.
"""

from __future__ import annotations

import random
from bisect import insort
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.relational.atoms import Atom
from repro.relational.structure import Structure
from repro.util.errors import ProbabilityError, VocabularyError
from repro.util.rationals import RationalLike, parse_probability


class UnreliableDatabase:
    """A pair ``(A, mu)`` — the paper's unreliable database.

    ``mu`` maps atoms to error probabilities; atoms not mentioned get
    ``default_error`` (zero unless stated).  Probabilities are stored as
    exact :class:`~fractions.Fraction` values.

    Terminology used throughout the library:

    * *uncertain* atom — ``0 < mu < 1``: its actual truth value is random;
    * *deterministic* atom — ``mu`` is 0 (observed value certain) or 1
      (observed value certainly wrong, so the actual value is its flip).
    """

    __slots__ = ("_structure", "_mu", "_default", "_uncertain", "_fingerprint")

    def __init__(
        self,
        structure: Structure,
        mu: Optional[Mapping[Atom, RationalLike]] = None,
        default_error: RationalLike = 0,
    ):
        self._structure = structure
        self._default = parse_probability(default_error)
        table: Dict[Atom, Fraction] = {}
        if mu:
            for atom, value in mu.items():
                symbol = structure.vocabulary.symbol(atom.relation)
                if symbol.arity != atom.arity:
                    raise VocabularyError(
                        f"atom {atom} has arity {atom.arity}, relation has "
                        f"{symbol.arity}"
                    )
                for element in atom.args:
                    if element not in structure.universe:
                        raise VocabularyError(
                            f"atom {atom} mentions {element!r}, not in universe"
                        )
                table[atom] = parse_probability(value)
        self._mu = table
        uncertain = []
        if 0 < self._default < 1:
            for atom in structure.atoms():
                probability = table.get(atom, self._default)
                if 0 < probability < 1:
                    uncertain.append(atom)
        else:
            for atom, probability in table.items():
                if 0 < probability < 1:
                    uncertain.append(atom)
        self._uncertain: Tuple[Atom, ...] = tuple(sorted(uncertain, key=repr))
        self._fingerprint: Optional[Tuple] = None

    # ------------------------------------------------------------------ #

    @property
    def structure(self) -> Structure:
        """The observed database ``A``."""
        return self._structure

    @property
    def universe_size(self) -> int:
        """``n``, the cardinality of the universe."""
        return len(self._structure)

    def mu(self, atom: Atom) -> Fraction:
        """Error probability of one atom."""
        return self._mu.get(atom, self._default)

    def nu(self, atom: Atom) -> Fraction:
        """Probability that ``atom`` holds in the actual database."""
        error = self.mu(atom)
        return 1 - error if self._structure.holds(atom) else error

    def uncertain_atoms(self) -> Tuple[Atom, ...]:
        """Atoms with ``0 < mu < 1``, in a fixed sorted order."""
        return self._uncertain

    def fingerprint(self) -> Tuple:
        """A hashable, equality-checked identity for compilation caching.

        Two databases with equal fingerprints assign the same ``nu`` to
        every atom, so any compiled artefact (grounded DNF, bitmask
        plan, relevant-atom set) is interchangeable between them.  Used
        as a :mod:`repro.kernels.cache` key component; computed lazily
        and memoised because the structure hash walks every relation.
        """
        if self._fingerprint is None:
            self._fingerprint = (
                self._structure,
                frozenset(self._mu.items()),
                self._default,
            )
        return self._fingerprint

    def certain_flips(self) -> Tuple[Atom, ...]:
        """Atoms with ``mu == 1`` — deterministically wrong observations."""
        flips = [atom for atom, p in self._mu.items() if p == 1]
        if self._default == 1:
            raise ProbabilityError(
                "default_error == 1 flips every atom; enumerate explicitly"
            )
        return tuple(sorted(flips, key=repr))

    def is_positive_only(self) -> bool:
        """True in de Rougemont's restricted model: errors only on facts.

        De Rougemont [9] only allows ``mu(R a) > 0`` when ``A |= R a``.
        The paper notes its hardness results survive this restriction;
        tests use this predicate to verify the reduction of Prop 3.2 does.
        """
        if self._default > 0:
            return False
        return all(
            self._structure.holds(atom)
            for atom, p in self._mu.items()
            if p > 0
        )

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #

    def sample(self, rng: random.Random) -> Structure:
        """Draw one possible world ``B ~ nu``."""
        flips = [
            atom
            for atom in self._uncertain
            if rng.random() < float(self._mu.get(atom, self._default))
        ]
        flips.extend(self.certain_flips())
        return self._structure.flip_all(flips) if flips else self._structure

    def observed_world(self) -> Structure:
        """The world with every error event false (certain flips applied)."""
        flips = self.certain_flips()
        return self._structure.flip_all(flips) if flips else self._structure

    # ------------------------------------------------------------------ #
    # derived databases
    # ------------------------------------------------------------------ #

    def with_structure(self, structure: Structure) -> "UnreliableDatabase":
        """Same error function, different observed structure."""
        return UnreliableDatabase(structure, self._mu, self._default)

    def with_errors(
        self, extra: Mapping[Atom, RationalLike]
    ) -> "UnreliableDatabase":
        """A copy with additional/overridden error probabilities.

        Only the *changed* entries are validated and parsed; the stored
        table is already trusted, and the sorted uncertain-atom index
        is patched in place of a full ``O(k log k)`` re-sort.  This is
        the hot path of :mod:`repro.delta` — a single-atom update must
        cost the delta, not a rebuild of the whole error function.
        """
        if 0 < self._default < 1:
            # Uncertainty-by-default: the index covers structure.atoms(),
            # not just the table — take the full constructor path.
            merged: Dict[Atom, RationalLike] = dict(self._mu)
            merged.update(extra)
            return UnreliableDatabase(self._structure, merged, self._default)
        structure = self._structure
        table = dict(self._mu)
        removed = set()
        added = []
        for atom, value in extra.items():
            symbol = structure.vocabulary.symbol(atom.relation)
            if symbol.arity != atom.arity:
                raise VocabularyError(
                    f"atom {atom} has arity {atom.arity}, relation has "
                    f"{symbol.arity}"
                )
            for element in atom.args:
                if element not in structure.universe:
                    raise VocabularyError(
                        f"atom {atom} mentions {element!r}, not in universe"
                    )
            probability = parse_probability(value)
            was = 0 < table.get(atom, self._default) < 1
            table[atom] = probability
            now = 0 < probability < 1
            if was and not now:
                removed.add(atom)
            elif now and not was:
                added.append(atom)
        clone = UnreliableDatabase.__new__(UnreliableDatabase)
        clone._structure = structure
        clone._default = self._default
        clone._mu = table
        if removed or added:
            uncertain = [a for a in self._uncertain if a not in removed]
            for atom in added:
                insort(uncertain, atom, key=repr)
            clone._uncertain = tuple(uncertain)
        else:
            clone._uncertain = self._uncertain
        clone._fingerprint = None
        return clone

    def given(self, evidence: Mapping[Atom, bool]) -> "UnreliableDatabase":
        """Condition on evidence about the *actual* database.

        Learning the actual truth value of an atom collapses its error
        distribution: ``mu`` becomes 0 when the observed value matches
        the evidence and 1 when it contradicts it.  Because atoms are
        independent, conditioning the product distribution is exactly
        this per-atom update — no renormalisation across atoms needed.

        Raises :class:`ProbabilityError` when the evidence contradicts a
        deterministic atom (a zero-probability event).
        """
        updates: Dict[Atom, Fraction] = {}
        for atom, value in evidence.items():
            current = self.mu(atom)
            observed = self._structure.holds(atom)
            matches = observed == bool(value)
            if (matches and current == 1) or (not matches and current == 0):
                raise ProbabilityError(
                    f"evidence {atom}={bool(value)} has probability zero"
                )
            updates[atom] = Fraction(0) if matches else Fraction(1)
        return self.with_errors(updates)

    def error_table(self) -> Dict[Atom, Fraction]:
        """The explicit part of ``mu`` (a copy)."""
        return dict(self._mu)

    @property
    def default_error(self) -> Fraction:
        return self._default

    def __repr__(self) -> str:
        return (
            f"UnreliableDatabase({self._structure!r}, "
            f"{len(self._uncertain)} uncertain atoms)"
        )


def uniform_error(
    structure: Structure,
    probability: RationalLike,
    relations: Optional[Iterable[str]] = None,
    positive_only: bool = False,
) -> UnreliableDatabase:
    """An unreliable database with one error rate across chosen relations.

    ``relations=None`` covers every relation.  ``positive_only=True``
    builds a database in de Rougemont's restricted model: only atoms that
    hold in the observed structure can be wrong.
    """
    probability = parse_probability(probability)
    names = (
        tuple(relations)
        if relations is not None
        else structure.vocabulary.names()
    )
    for name in names:
        structure.vocabulary.symbol(name)  # validates
    table: Dict[Atom, Fraction] = {}
    chosen = set(names)
    for atom in structure.atoms():
        if atom.relation not in chosen:
            continue
        if positive_only and not structure.holds(atom):
            continue
        table[atom] = probability
    return UnreliableDatabase(structure, table)
