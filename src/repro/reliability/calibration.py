"""Calibrating the error model from audited ground truth.

The paper takes ``mu`` as given; in practice it must come from data.
The standard source is an *audit sample*: facts whose actual value was
established by hand.  Under the model, each audited atom of relation
``R`` is an independent Bernoulli draw with unknown error rate
``mu_R`` (one rate per relation is the usual coarseness; refine by
splitting relations upstream if needed).

:func:`calibrate_error_rates` estimates per-relation rates from audit
records, either by maximum likelihood or with a Beta(1, 1) (Laplace)
prior — the smoothed posterior mean ``(wrong + 1) / (audited + 2)``
never returns the degenerate 0/1 rates a small sample would, which
matters because downstream engines treat ``mu = 0`` atoms as certain.
:func:`calibrated_database` applies the estimated rates to every
unaudited atom and pins the audited atoms themselves to their verified
values (they are now known).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.relational.atoms import Atom
from repro.relational.structure import Structure
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import ProbabilityError, VocabularyError


@dataclass(frozen=True)
class AuditRecord:
    """One audited fact: the atom and its verified actual value."""

    atom: Atom
    actual: bool


@dataclass(frozen=True)
class RelationCalibration:
    """Estimated error rate for one relation."""

    relation: str
    audited: int
    wrong: int
    rate: Fraction

    def __str__(self) -> str:
        return (
            f"{self.relation}: {self.wrong}/{self.audited} wrong, "
            f"mu = {self.rate}"
        )


def calibrate_error_rates(
    structure: Structure,
    audits: Iterable[AuditRecord],
    smoothing: bool = True,
) -> Dict[str, RelationCalibration]:
    """Per-relation error-rate estimates from audit records.

    ``smoothing=True`` (default) uses the Beta(1, 1) posterior mean
    ``(wrong + 1) / (n + 2)``; ``False`` gives the raw MLE ``wrong / n``.
    Relations without any audit are absent from the result — the caller
    decides a default.
    """
    audited: Dict[str, int] = {}
    wrong: Dict[str, int] = {}
    seen = set()
    for record in audits:
        atom = record.atom
        structure.vocabulary.symbol(atom.relation)  # validates
        if atom in seen:
            raise ProbabilityError(f"atom {atom} audited twice")
        seen.add(atom)
        audited[atom.relation] = audited.get(atom.relation, 0) + 1
        if structure.holds(atom) != bool(record.actual):
            wrong[atom.relation] = wrong.get(atom.relation, 0) + 1
    result: Dict[str, RelationCalibration] = {}
    for relation, count in audited.items():
        bad = wrong.get(relation, 0)
        if smoothing:
            rate = Fraction(bad + 1, count + 2)
        else:
            rate = Fraction(bad, count)
        result[relation] = RelationCalibration(relation, count, bad, rate)
    return result


def calibrated_database(
    structure: Structure,
    audits: Iterable[AuditRecord],
    smoothing: bool = True,
    default_rate: Optional[Fraction] = None,
    relations: Optional[Iterable[str]] = None,
) -> UnreliableDatabase:
    """Build an unreliable database whose ``mu`` comes from an audit.

    * every *unaudited* atom of an audited relation gets that relation's
      estimated rate;
    * relations never audited get ``default_rate`` (required if any such
      relation is in scope; restrict scope with ``relations``);
    * every *audited* atom is corrected to its verified value and pinned
      (``mu = 0``) — the audit told us the truth, keep it.
    """
    audits = list(audits)
    calibrations = calibrate_error_rates(structure, audits, smoothing)
    scope = (
        tuple(relations)
        if relations is not None
        else structure.vocabulary.names()
    )
    for name in scope:
        structure.vocabulary.symbol(name)
    audited_atoms = {record.atom: bool(record.actual) for record in audits}

    corrected = structure
    for atom, actual in audited_atoms.items():
        corrected = corrected.with_atom(atom, actual)

    mu: Dict[Atom, Fraction] = {}
    for atom in corrected.atoms():
        if atom.relation not in scope:
            continue
        if atom in audited_atoms:
            mu[atom] = Fraction(0)
            continue
        calibration = calibrations.get(atom.relation)
        if calibration is not None:
            mu[atom] = calibration.rate
        elif default_rate is not None:
            mu[atom] = default_rate
        else:
            raise ProbabilityError(
                f"relation {atom.relation!r} has no audits and no "
                "default_rate was given"
            )
    return UnreliableDatabase(corrected, mu)
