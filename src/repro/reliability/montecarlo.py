"""Plain Monte-Carlo estimators over the possible-world space.

These are the baselines the paper's refined estimators are measured
against:

* :func:`estimate_truth_probability` — sample worlds, evaluate the query,
  average; Hoeffding gives an additive (epsilon, delta) bound.
* :func:`estimate_reliability_hamming` — estimate ``H_psi`` directly by
  sampling worlds and measuring the Hamming distance ``|psi^A Δ psi^B|``;
  one world sample prices *all* ``n ** k`` tuples at once, which makes it
  the practical work-horse for k-ary queries (and a baseline for E7).

Both require only that the query is polynomial-time evaluable, like
Theorem 5.12 — but unlike Theorem 5.12 they offer no lower bound on the
estimated quantity, which is what the xi-padding construction adds.
"""

from __future__ import annotations

import math
import random
from typing import Any, Sequence, Union

from repro import obs
from repro.kernels.plan import compile_hamming_plan, compile_truth_plan
from repro.kernels.sampling import (
    sample_hamming_batches,
    sample_truth_batches,
)
from repro.logic.evaluator import FOQuery
from repro.logic.fo import Formula
from repro.reliability.exact import as_query
from repro.reliability.unreliable import UnreliableDatabase
from repro.runtime.budget import checkpoint
from repro.runtime.preflight import preflight_samples
from repro.util.errors import ProbabilityError, QueryError
from repro.util.rng import Seed, as_rng

QueryLike = Union[str, Formula, FOQuery, Any]
RngLike = Union[random.Random, Seed]

# Convergence traces partition the sample budget into at most this many
# running-estimate events (see docs/OBSERVABILITY.md).
TRACE_BATCHES = 64

# The scalar fallback loops charge the runtime budget in chunks of this
# many samples; BudgetExceeded is accurate to within one chunk.
CHECKPOINT_CHUNK = 64

_KERNELS = ("auto", "batched", "scalar")


def _kernel_choice(kernel: str) -> str:
    if kernel not in _KERNELS:
        raise QueryError(f"unknown sampling kernel {kernel!r}")
    return kernel


def _half_width(count: int, delta: float) -> float:
    """Hoeffding half-width of a [0,1]-mean after ``count`` samples."""
    return math.sqrt(math.log(2.0 / delta) / (2.0 * count))


def _sample_budget(samples: int, epsilon: float, delta: float) -> int:
    """An explicit positive budget, or the Hoeffding count when 0.

    A *negative* ``samples`` is rejected rather than silently treated
    as "use Hoeffding": a caller computing a budget that underflows
    should hear about it, not get a surprise default.
    """
    if samples < 0:
        raise ProbabilityError(
            f"sample budget must be >= 0, got {samples} "
            "(0 means: derive from epsilon/delta)"
        )
    budget = samples if samples > 0 else hoeffding_samples(epsilon, delta)
    # Refuse up front when the active budget cannot fit the run.
    return preflight_samples(budget)


def hoeffding_samples(epsilon: float, delta: float) -> int:
    """Samples for an additive (epsilon, delta) bound on a [0,1] mean.

    ``t >= ln(2/delta) / (2 epsilon^2)`` by Hoeffding's inequality.
    """
    if epsilon <= 0 or delta <= 0 or delta >= 1:
        raise ProbabilityError(
            f"need epsilon > 0 and 0 < delta < 1, got {epsilon}, {delta}"
        )
    return max(1, math.ceil(math.log(2.0 / delta) / (2.0 * epsilon**2)))


def estimate_truth_probability(
    db: UnreliableDatabase,
    query: QueryLike,
    rng: RngLike,
    epsilon: float = 0.05,
    delta: float = 0.05,
    samples: int = 0,
    args: Sequence[Any] = (),
    kernel: str = "auto",
    shards: int = 1,
    adaptive: bool = False,
) -> float:
    """Estimate ``Pr[B |= psi(args)]`` by direct world sampling.

    ``samples`` overrides the Hoeffding count when positive (benchmark
    sweeps fix budgets explicitly).  ``rng`` may be a ``random.Random``
    or a bare seed.

    ``kernel`` selects the sampling loop: ``"auto"`` compiles
    first-order queries to a bit-parallel batched kernel (see
    docs/PERFORMANCE.md) and falls back to the scalar per-world loop
    for everything else; ``"scalar"`` forces the fallback;
    ``"batched"`` raises if the query does not compile.  ``shards``
    fans batched sample batches out over worker processes
    (deterministic for a fixed seed regardless of shard count).

    ``adaptive`` switches the batched kernel to the sequential
    empirical-Bernstein stopper (:mod:`repro.runtime.adaptive`): same
    additive (epsilon, delta) contract, but the run stops — and stops
    charging the budget — as soon as the empirical variance certifies
    it.  Adaptive draws follow their own fixed block schedule, so the
    value differs from (while agreeing within guarantee with) the
    fixed-budget value of the same seed.
    """
    kernel = _kernel_choice(kernel)
    query = as_query(query)
    args = tuple(args)
    if len(args) != query.arity:
        raise QueryError(
            f"query has arity {query.arity}, got {len(args)} arguments"
        )
    rng = as_rng(rng)
    budget = _sample_budget(samples, epsilon, delta)
    trace = obs.enabled()
    stride = max(1, budget // TRACE_BATCHES)
    with obs.span("montecarlo.truth_probability", budget=budget):
        if kernel != "scalar":
            plan = compile_truth_plan(db, query, args)
            if plan is not None:
                if adaptive and plan.constant is None:
                    from repro.runtime.adaptive import (
                        adaptive_truth_estimate,
                    )

                    return adaptive_truth_estimate(
                        plan, rng, budget, epsilon, delta
                    )
                return sample_truth_batches(
                    plan, rng, budget, delta, shards=shards
                )
            if kernel == "batched":
                raise QueryError(
                    "query does not compile to a batched sampling kernel"
                )
        hits = 0
        pending = 0
        for drawn in range(1, budget + 1):
            pending += 1
            if pending >= CHECKPOINT_CHUNK or drawn == budget:
                checkpoint(samples=pending)
                pending = 0
            world = db.sample(rng)
            if query.evaluate(world, args):
                hits += 1
            if trace and (drawn % stride == 0 or drawn == budget):
                obs.event(
                    "montecarlo.batch",
                    samples=drawn,
                    estimate=hits / drawn,
                    half_width=_half_width(drawn, delta),
                )
        obs.inc("montecarlo.samples", budget)
    return hits / budget


def estimate_reliability_hamming(
    db: UnreliableDatabase,
    query: QueryLike,
    rng: RngLike,
    epsilon: float = 0.05,
    delta: float = 0.05,
    samples: int = 0,
    kernel: str = "auto",
    shards: int = 1,
    adaptive: bool = False,
) -> float:
    """Estimate ``R_psi`` by sampling worlds and averaging Hamming distance.

    The normalised distance ``|psi^A Δ psi^B| / n**k`` lies in ``[0, 1]``,
    so Hoeffding's bound applies to the mean and the returned value is
    within ``epsilon`` of ``R_psi`` with probability at least
    ``1 - delta``.  ``rng`` may be a ``random.Random`` or a bare seed.
    ``kernel`` and ``shards`` select the batched bit-parallel loop as in
    :func:`estimate_truth_probability` (all ``n ** k`` per-tuple plans
    share each sampled column batch); ``adaptive`` selects the
    sequential empirical-Bernstein stopper on the batched path, as in
    :func:`estimate_truth_probability`.
    """
    kernel = _kernel_choice(kernel)
    query = as_query(query)
    n = db.universe_size
    cells = n**query.arity
    if cells == 0:
        raise QueryError("reliability undefined on an empty universe")
    rng = as_rng(rng)
    budget = _sample_budget(samples, epsilon, delta)
    trace = obs.enabled()
    stride = max(1, budget // TRACE_BATCHES)
    with obs.span("montecarlo.hamming", budget=budget, cells=cells):
        if kernel != "scalar":
            plan = compile_hamming_plan(db, query)
            if plan is not None:
                if adaptive:
                    from repro.runtime.adaptive import (
                        adaptive_hamming_estimate,
                    )

                    return adaptive_hamming_estimate(
                        plan, rng, budget, epsilon, delta
                    )
                return sample_hamming_batches(
                    plan, rng, budget, delta, shards=shards
                )
            if kernel == "batched":
                raise QueryError(
                    "query does not compile to a batched sampling kernel"
                )
        observed_answers = query.answers(db.structure)
        total = 0.0
        pending = 0
        for drawn in range(1, budget + 1):
            pending += 1
            if pending >= CHECKPOINT_CHUNK or drawn == budget:
                checkpoint(samples=pending)
                pending = 0
            world = db.sample(rng)
            actual_answers = query.answers(world)
            distance = len(observed_answers.symmetric_difference(actual_answers))
            total += distance / cells
            if trace and (drawn % stride == 0 or drawn == budget):
                obs.event(
                    "montecarlo.hamming_batch",
                    samples=drawn,
                    estimate=1.0 - total / drawn,
                    half_width=_half_width(drawn, delta),
                )
        obs.inc("montecarlo.samples", budget)
    return 1.0 - total / budget
