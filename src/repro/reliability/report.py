"""One-call reliability analysis: dispatch, compute, explain.

:func:`analyze` is the library's concierge: given an unreliable database
and a query, it classifies the query, picks the strongest applicable
engine (exact where feasible, the right estimator otherwise), computes
the reliability, decides absolute reliability when cheap, and surfaces
the most fragile atoms — returning a structured
:class:`ReliabilityReport` that renders as a readable summary.

The dispatch mirrors the paper's complexity landscape:

=====================  ==========================================
query fragment          engine
=====================  ==========================================
quantifier-free         Proposition 3.1 exact (polynomial)
safe conjunctive        lifted safe-plan exact (polynomial)
existential/universal   grounded-DNF exact if small, else
                        Corollary 5.5 additive estimator
other (PTIME)           world enumeration if small, else
                        Theorem 5.12 xi-padding estimator
=====================  ==========================================
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, List, Optional, Tuple, Union

from repro.logic.classify import classify, is_existential, is_universal
from repro.logic.evaluator import FOQuery
from repro.reliability.absolute import is_absolutely_reliable
from repro.reliability.approx import reliability_additive
from repro.reliability.exact import as_query, reliability
from repro.reliability.grounding import relevant_atoms
from repro.reliability.influence import most_fragile_atoms
from repro.reliability.lifted import is_safe
from repro.reliability.padding import padded_reliability
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError

logger = logging.getLogger(__name__)

# Above this many relevant uncertain atoms, exact world enumeration is
# off the table and we switch to estimators.
EXACT_WORLD_LIMIT = 18
# Above this many relevant uncertain atoms, grounded Shannon expansion
# is considered risky for interactive use.
EXACT_DNF_LIMIT = 48


@dataclass
class ReliabilityReport:
    """Structured result of :func:`analyze`.

    ``recommended_engine``/``recommended_chain`` come from the
    budget-aware executor dry-run (:func:`repro.runtime.costmodel.plan_chain`)
    under the same budget and cost model ``repro run`` would use, so the
    recommendation names the engine a ``run`` of the same request would
    actually answer with (``None`` when the whole chain would be
    refused).  ``plan`` is the full :class:`~repro.runtime.costmodel.ChainPlan`
    with per-engine forecasts and predicted seconds.
    """

    fragment: str
    engine: str
    value: float
    exact: Optional[Fraction]
    epsilon: Optional[float]
    delta: Optional[float]
    samples: int
    absolutely_reliable: Optional[bool]
    fragile_atoms: List[Tuple[Any, float]] = field(default_factory=list)
    recommended_engine: Optional[str] = None
    recommended_chain: Tuple[str, ...] = ()
    plan: Optional[Any] = None
    #: The static Dalvi-Suciu dichotomy verdict
    #: (:class:`~repro.logic.safety.SafeVerdict` with the hierarchy
    #: plan, or :class:`~repro.logic.safety.UnsafeVerdict` carrying the
    #: #P-hardness witness) — the same object the executor's router
    #: consulted, forwarded from ``plan.dichotomy``.
    dichotomy: Optional[Any] = None

    @property
    def is_exact(self) -> bool:
        return self.exact is not None

    def explain_dichotomy(self) -> str:
        """Multi-line rendering of the static dichotomy verdict."""
        if self.dichotomy is None:
            return "dichotomy: (not classified)"
        return self.dichotomy.explain()

    def render(self) -> str:
        lines = [
            f"fragment:  {self.fragment}",
            f"engine:    {self.engine}",
        ]
        if self.is_exact:
            lines.append(f"reliability = {self.exact} ({self.value:.6f}) [exact]")
        else:
            lines.append(
                f"reliability ~ {self.value:.6f} "
                f"(+/- {self.epsilon} with prob >= {1 - self.delta}; "
                f"{self.samples} samples)"
            )
        if self.absolutely_reliable is not None:
            lines.append(f"absolutely reliable: {self.absolutely_reliable}")
        if self.fragile_atoms:
            lines.append("most fragile atoms:")
            for atom, score in self.fragile_atoms:
                lines.append(f"  {atom}  (score {score:.4f})")
        if self.recommended_chain:
            recommended = self.recommended_engine or "(chain exhausted)"
            lines.append(
                f"run would select: {recommended} "
                f"(chain: {' > '.join(self.recommended_chain)})"
            )
            if self.plan is not None:
                lines.append(self.plan.describe())
        return "\n".join(lines)


def analyze(
    db: UnreliableDatabase,
    query: Any,
    rng: Optional[random.Random] = None,
    epsilon: float = 0.05,
    delta: float = 0.05,
    fragile_limit: int = 3,
    chain: Optional[Any] = None,
    budget: Optional[Any] = None,
    cost_model: Optional[Any] = None,
    race: Optional[Any] = None,
    adaptive: Optional[Any] = None,
) -> ReliabilityReport:
    """Classify, dispatch, compute — the one-call entry point.

    ``rng`` is only needed when an estimator ends up being used; omitting
    it forces exact computation and raises :class:`QueryError` when no
    exact engine is feasible within the interactive limits.

    The report additionally carries a budget-aware *recommendation*:
    the engine :func:`repro.runtime.run_with_fallback` would select for
    the same request, simulated under ``budget`` (the active budget by
    default), ``chain`` (the default chain by default) and
    ``cost_model`` (a :class:`~repro.runtime.costmodel.CostModel`, a
    calibration-file path, or the active model) — so advice and
    execution cannot drift apart.  ``race`` (``True`` or an overlap
    fraction) makes the recommendation simulate the speculative race
    a ``run --race`` of the same request would hold: the recommended
    engine is then the predicted race *winner* and ``report.plan.race``
    carries the full :class:`~repro.runtime.costmodel.RaceForecast`.
    ``adaptive`` makes the recommendation price the sequential
    empirical-Bernstein stopper a ``run --adaptive`` would use: the
    plan's sampling-engine forecasts then show expected versus
    worst-case sample counts and surrogate-adjusted seconds.
    """
    query = as_query(query)
    formula = query.formula if isinstance(query, FOQuery) else None
    relevant = relevant_atoms(db, query)
    fragment = classify(formula) if formula is not None else "opaque (PTIME)"

    engine: str
    exact_value: Optional[Fraction] = None
    epsilon_out: Optional[float] = None
    delta_out: Optional[float] = None
    samples = 0

    if formula is not None and fragment == "quantifier-free":
        engine = "exact/qf (Prop 3.1)"
        exact_value = reliability(db, query, method="qf")
    elif (
        formula is not None
        and fragment == "conjunctive"
        and query.arity == 0
        and is_safe(formula)
    ):
        engine = "exact/lifted (safe plan)"
        exact_value = reliability(db, query)
    elif formula is not None and (
        is_existential(formula) or is_universal(formula)
    ):
        if len(relevant) <= EXACT_DNF_LIMIT:
            engine = "exact/grounded-DNF (Thm 5.4 grounding)"
            exact_value = reliability(db, query)
        else:
            if rng is None:
                raise QueryError(
                    f"{len(relevant)} relevant uncertain atoms: exact "
                    "grounding is risky; pass an rng to allow estimation"
                )
            engine = "estimate/Karp-Luby (Cor 5.5)"
            estimate = reliability_additive(db, query, epsilon, delta, rng)
            value = estimate.value
            epsilon_out, delta_out = epsilon, delta
            samples = estimate.samples
    else:
        if len(relevant) <= EXACT_WORLD_LIMIT:
            engine = "exact/world-enumeration (Thm 4.2)"
            exact_value = reliability(db, query, method="worlds")
        else:
            if rng is None:
                raise QueryError(
                    f"{len(relevant)} relevant uncertain atoms: world "
                    "enumeration infeasible; pass an rng to allow estimation"
                )
            engine = "estimate/xi-padding (Thm 5.12)"
            estimate = padded_reliability(db, query, epsilon, delta, rng)
            value = estimate.value
            epsilon_out, delta_out = epsilon, delta
            samples = estimate.samples

    if exact_value is not None:
        value = float(exact_value)

    absolute: Optional[bool] = None
    if exact_value is not None:
        absolute = exact_value == 1

    fragile: List[Tuple[Any, float]] = []
    if (
        formula is not None
        and query.arity == 0
        and (is_existential(formula) or is_universal(formula))
        and len(relevant) <= EXACT_DNF_LIMIT
    ):
        try:
            fragile = [
                (atom, float(score))
                for atom, score in most_fragile_atoms(
                    db, formula, limit=fragile_limit
                )
            ]
        except QueryError as exc:
            # Fragile-atom ranking is best-effort decoration; keep the
            # report but leave an attributable record of the failure.
            logger.warning("fragile-atom analysis skipped: %s", exc)
            fragile = []

    from repro.runtime.costmodel import plan_chain

    plan = plan_chain(
        db,
        query,
        chain=chain,
        budget=budget,
        quantity="reliability",
        epsilon=epsilon,
        delta=delta,
        cost_model=cost_model,
        race=race,
        adaptive=adaptive,
    )

    return ReliabilityReport(
        fragment=fragment,
        engine=engine,
        value=value,
        exact=exact_value,
        epsilon=epsilon_out,
        delta=delta_out,
        samples=samples,
        absolutely_reliable=absolute,
        fragile_atoms=fragile,
        recommended_engine=plan.selected,
        recommended_chain=plan.chain,
        plan=plan,
        dichotomy=plan.dichotomy,
    )
