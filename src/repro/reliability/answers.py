"""Probabilistic answer relations: per-tuple truth probabilities.

The related-work systems the paper cites (Zimányi; Lakshmanan &
Subrahmanian's ProbView) return *probabilistic relations*: each answer
tuple annotated with the probability that it belongs to the actual
answer.  The reliability number of Definition 2.2 is one aggregate of
that table; this module exposes the table itself, computed with the same
engines:

* :func:`answer_probabilities` — exact per-tuple ``nu(psi(a))`` using
  the fragment-dispatched exact engine;
* :func:`estimate_answer_probabilities` — one world-sampling pass that
  prices every tuple simultaneously (each sample yields the whole answer
  relation), with a per-tuple Hoeffding guarantee.

``reliability`` is recoverable from the table, which the tests assert.
"""

from __future__ import annotations

import random
from fractions import Fraction
from itertools import product
from typing import Any, Dict, Tuple, Union

from repro.reliability.exact import as_query, truth_probability, _instantiated
from repro.reliability.montecarlo import hoeffding_samples
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError

TupleOf = Tuple[Any, ...]


def answer_probabilities(
    db: UnreliableDatabase, query: Any, method: str = "auto"
) -> Dict[TupleOf, Fraction]:
    """Exact probabilistic answer relation ``{a: Pr[B |= psi(a)]}``.

    Covers all ``n ** k`` candidate tuples (tuples absent from the table
    in spirit have probability 0 and do appear with their exact value —
    callers filter as they wish).
    """
    query = as_query(query)
    table: Dict[TupleOf, Fraction] = {}
    for args in product(db.structure.universe, repeat=query.arity):
        boolean = _instantiated(query, args)
        table[args] = truth_probability(db, boolean, method=method)
    return table


def estimate_answer_probabilities(
    db: UnreliableDatabase,
    query: Any,
    rng: random.Random,
    epsilon: float = 0.05,
    delta: float = 0.05,
    samples: int = 0,
) -> Dict[TupleOf, float]:
    """Monte-Carlo probabilistic answer relation.

    One pass of world sampling estimates every tuple's probability at
    once; with ``t = hoeffding_samples(epsilon, delta / n**k)`` samples
    each entry is within ``epsilon`` with probability ``1 - delta``
    overall (union bound).
    """
    query = as_query(query)
    cells = len(db.structure) ** query.arity
    if cells == 0:
        raise QueryError("no candidate tuples over an empty universe")
    budget = samples if samples > 0 else hoeffding_samples(
        epsilon, delta / cells
    )
    counts: Dict[TupleOf, int] = {
        args: 0 for args in product(db.structure.universe, repeat=query.arity)
    }
    for _ in range(budget):
        world = db.sample(rng)
        for args in query.answers(world):
            counts[args] += 1
    return {args: hits / budget for args, hits in counts.items()}


def most_questionable_answers(
    db: UnreliableDatabase,
    query: Any,
    limit: int = 10,
    method: str = "auto",
):
    """Answer tuples ranked by how likely their classification is wrong.

    For each candidate tuple, the "doubt" is its per-tuple wrong
    probability — ``1 - p`` for observed answers, ``p`` for observed
    non-answers.  Returns up to ``limit`` triples
    ``(args, doubt, in_observed_answer)`` with the largest doubt first:
    the rows of the answer a careful user should double-check.
    """
    query = as_query(query)
    observed = query.answers(db.structure)
    table = answer_probabilities(db, query, method=method)
    ranked = []
    for args, probability in table.items():
        in_answer = args in observed
        doubt = 1 - probability if in_answer else probability
        if doubt > 0:
            ranked.append((args, doubt, in_answer))
    ranked.sort(key=lambda row: (-row[1], repr(row[0])))
    return ranked[:limit]


def reliability_from_answers(
    db: UnreliableDatabase,
    query: Any,
    table: Dict[TupleOf, Union[Fraction, float]],
):
    """Fold a probabilistic answer relation back into ``R_psi``.

    ``H = sum over tuples of (1 - p)`` for observed answers and ``p`` for
    non-answers; kept exact when the table is exact.
    """
    query = as_query(query)
    observed = query.answers(db.structure)
    cells = len(db.structure) ** query.arity
    if cells == 0:
        raise QueryError("reliability undefined on an empty universe")
    total = Fraction(0) if all(
        isinstance(p, Fraction) for p in table.values()
    ) else 0.0
    for args, probability in table.items():
        wrong = 1 - probability if args in observed else probability
        total = total + wrong
    if isinstance(total, Fraction):
        return 1 - total / cells
    return 1.0 - total / cells
