"""The possible-world space ``Omega(D)`` and the granularity ``g``.

``Omega(D)`` is the probability space of databases of the same format as
the observed one, with ``nu(B)`` the product of per-literal probabilities
(Section 2).  Enumeration is exponential in the number of uncertain atoms
— it is the test oracle and the literal implementation of Theorem 4.2's
computation tree, not a production path.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Iterator, Tuple

from repro.relational.structure import Structure
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import VocabularyError
from repro.util.rationals import granularity


def support_size(db: UnreliableDatabase) -> int:
    """Number of worlds with positive probability: ``2 ** #uncertain``."""
    return 1 << len(db.uncertain_atoms())


def worlds(db: UnreliableDatabase) -> Iterator[Tuple[Structure, Fraction]]:
    """Enumerate ``(B, nu(B))`` over the support of ``Omega(D)``.

    Every atom outside the uncertain set keeps its deterministic actual
    value (observed, or flipped when ``mu == 1``).  Probabilities are
    exact and sum to one — a property the tests assert.
    """
    base = db.observed_world()
    uncertain = db.uncertain_atoms()
    for pattern in product((False, True), repeat=len(uncertain)):
        probability = Fraction(1)
        flips = []
        for atom, flipped in zip(uncertain, pattern):
            error = db.mu(atom)
            if flipped:
                probability *= error
                flips.append(atom)
            else:
                probability *= 1 - error
        world = base.flip_all(flips) if flips else base
        yield world, probability


def world_probability(db: UnreliableDatabase, world: Structure) -> Fraction:
    """``nu(B)`` for a specific world ``B`` — the Section 2 product formula.

    Computable in polynomial time given ``(A, mu)`` and ``B``, as the
    paper remarks.  Worlds that contradict a deterministic atom get
    probability zero.
    """
    if not db.structure.same_format(world):
        raise VocabularyError("world has a different format than the database")
    probability = Fraction(1)
    for atom in db.structure.atoms():
        nu = db.nu(atom)
        probability *= nu if world.holds(atom) else 1 - nu
        if probability == 0:
            return probability
    return probability


def world_granularity(db: UnreliableDatabase) -> int:
    """An integer ``g`` with ``nu(B) * g`` integral for every world ``B``.

    Theorem 4.2's proof computes "the least natural number g such that
    nu(B) * g in N for all B" with a gcd loop over the probability
    denominators — i.e. their lcm.  Reproduction note: the lcm is the
    right granularity for *single* probabilities, but ``nu(B)`` is a
    product over atoms, so the minimal valid ``g`` generally needs the
    *product* of denominators (e.g. two atoms at 1/2 give worlds at 1/4;
    lcm 2 does not clear the denominator).  We therefore return the
    product of the per-atom denominators after reducing each ``nu`` —
    always valid, and the tests verify ``nu(B) * g`` is integral on the
    whole space.  :func:`paper_granularity` exposes the paper's literal
    lcm subroutine for comparison.
    """
    g = 1
    for atom in db.uncertain_atoms():
        g *= db.nu(atom).denominator
    return g


def paper_granularity(db: UnreliableDatabase) -> int:
    """The paper's literal gcd-loop (the lcm of the ``nu`` denominators)."""
    return granularity(db.nu(atom) for atom in db.uncertain_atoms())


def scaled_world_counts(db: UnreliableDatabase) -> Iterator[Tuple[Structure, int]]:
    """Worlds with integer multiplicities ``nu(B) * g`` — Theorem 4.2's tree.

    This is the computation-tree view of the FP^#P algorithm: each leaf
    (world) is split into ``nu(B) * g`` accepting branches, so that
    counting accepting paths of the machine computes ``g * Pr[B |= psi]``.
    """
    g = world_granularity(db)
    for world, probability in worlds(db):
        multiplicity = probability * g
        assert multiplicity.denominator == 1
        yield world, multiplicity.numerator
