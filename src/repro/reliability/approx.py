"""Randomized approximation of query probability and reliability.

* :func:`existential_probability` — Theorem 5.4: an FPTRAS for
  ``nu(psi)``, the probability that an existential Boolean query holds in
  the actual database.  Ground to kDNF (Theorem 5.4's construction), then
  run the Karp–Luby FPTRAS (Theorem 5.3 via Theorem 5.2).
* :func:`reliability_additive` — Corollary 5.5: additive (epsilon, delta)
  approximation of the *reliability* of any existential or universal
  query, Boolean or k-ary.  For k-ary queries, each of the ``n ** k``
  per-tuple errors is approximated to ``epsilon / n**k`` with failure
  budget ``delta / n**k``, exactly as the corollary's proof prescribes.

The FPTRAS gives *relative* error on probabilities; since probabilities
are at most one, the same run also gives absolute error — which is why
Corollary 5.5's guarantee is additive.  The converse strengthening is
impossible unless NP ⊆ BPP (Lemma 5.10), demonstrated in experiment E6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import Any, Optional, Sequence, Union

from repro.logic.classify import is_existential, is_universal
from repro.logic.evaluator import FOQuery
from repro.logic.fo import Formula, neg
from repro.propositional.karp_luby import karp_luby
from repro.reliability.exact import as_query
from repro.reliability.grounding import (
    ground_existential_to_dnf,
    grounding_probabilities,
)
from repro.reliability.unreliable import UnreliableDatabase
from repro.runtime.budget import checkpoint
from repro.util.errors import ProbabilityError, QueryError

QueryLike = Union[str, Formula, FOQuery]


@dataclass(frozen=True)
class AdditiveEstimate:
    """An additive (epsilon, delta) estimate with its parameters."""

    value: float
    epsilon: float
    delta: float
    samples: int

    def __float__(self) -> float:
        return self.value


def existential_probability(
    db: UnreliableDatabase,
    sentence: QueryLike,
    epsilon: float,
    delta: float,
    rng: random.Random,
    method: str = "coverage",
    adaptive: bool = False,
) -> AdditiveEstimate:
    """FPTRAS for ``nu(psi)`` of an existential Boolean query (Thm 5.4).

    Relative (epsilon, delta) guarantee:
    ``Pr[|est - nu(psi)| > epsilon * nu(psi)] < delta``.
    ``adaptive`` forwards to :func:`repro.propositional.karp_luby.
    karp_luby`: same guarantee, sequential empirical-Bernstein stopping.
    """
    query = as_query(sentence)
    if not isinstance(query, FOQuery) or query.arity != 0:
        raise QueryError(
            "existential_probability expects a Boolean first-order sentence"
        )
    if not is_existential(query.formula):
        raise QueryError("sentence is not existential")
    grounding = ground_existential_to_dnf(db, query.formula)
    if grounding.dnf.is_true():
        return AdditiveEstimate(1.0, epsilon, delta, 0)
    if grounding.dnf.is_false():
        return AdditiveEstimate(0.0, epsilon, delta, 0)
    probs = grounding_probabilities(db, grounding.dnf)
    run = karp_luby(
        grounding.dnf, probs, epsilon, delta, rng, method, adaptive=adaptive
    )
    return AdditiveEstimate(run.estimate, epsilon, delta, run.samples)


def _boolean_wrong_estimate(
    db: UnreliableDatabase,
    formula: Formula,
    epsilon: float,
    delta: float,
    rng: random.Random,
    method: str,
    adaptive: bool = False,
) -> AdditiveEstimate:
    """Additive estimate of ``Pr[Wrong(psi)]`` for existential/universal psi.

    A universal sentence is handled through its existential negation:
    ``Wrong(psi) = Wrong(~psi)`` (the truth values differ on exactly the
    same worlds).
    """
    if is_existential(formula):
        target: Formula = formula
    elif is_universal(formula):
        target = neg(formula)
    else:
        raise QueryError(
            "Corollary 5.5 applies to existential or universal queries only"
        )
    observed = FOQuery(target).evaluate(db.structure, ())
    probability = existential_probability(
        db, target, epsilon, delta, rng, method, adaptive=adaptive
    )
    wrong = 1.0 - probability.value if observed else probability.value
    return AdditiveEstimate(wrong, epsilon, delta, probability.samples)


def reliability_additive(
    db: UnreliableDatabase,
    query: QueryLike,
    epsilon: float,
    delta: float,
    rng: random.Random,
    method: str = "coverage",
    adaptive: bool = False,
) -> AdditiveEstimate:
    """Corollary 5.5: ``Pr[|M(D) - R_psi(D)| > epsilon] < delta``.

    ``psi`` may be existential or universal, of any arity.  The k-ary case
    sums per-tuple estimates at accuracy ``epsilon / n**k`` and failure
    probability ``delta / n**k`` (union bound), then converts the error
    sum to a reliability.
    """
    if epsilon <= 0 or delta <= 0 or delta >= 1:
        raise ProbabilityError(
            f"need epsilon > 0 and 0 < delta < 1, got {epsilon}, {delta}"
        )
    fo_query = as_query(query)
    if not isinstance(fo_query, FOQuery):
        raise QueryError(
            "reliability_additive expects a first-order query; use "
            "padded_reliability for general polynomial-time queries"
        )
    n = db.universe_size
    k = fo_query.arity
    if k == 0:
        estimate = _boolean_wrong_estimate(
            db, fo_query.formula, epsilon, delta, rng, method, adaptive
        )
        return AdditiveEstimate(
            1.0 - estimate.value, epsilon, delta, estimate.samples
        )
    cells = n**k
    if cells == 0:
        raise QueryError("reliability undefined on an empty universe")
    per_epsilon = epsilon  # relative eps per cell; see note below
    per_delta = delta / cells
    total_wrong = 0.0
    total_samples = 0
    for args in product(db.structure.universe, repeat=k):
        checkpoint()
        instantiated = fo_query.instantiated(args)
        estimate = _boolean_wrong_estimate(
            db, instantiated, per_epsilon, per_delta, rng, method, adaptive
        )
        total_wrong += estimate.value
        total_samples += estimate.samples
    # Each per-tuple estimate is within epsilon (relative, hence absolute
    # since wrong-probabilities are <= 1) of its target with probability
    # 1 - delta / n^k; summing and dividing by n^k keeps the absolute
    # error at epsilon with probability 1 - delta.
    return AdditiveEstimate(
        1.0 - total_wrong / cells, epsilon, delta, total_samples
    )
