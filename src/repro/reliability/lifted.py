"""Lifted (safe-plan) inference for hierarchical conjunctive queries.

Proposition 3.2 shows that conjunctive-query reliability is #P-hard *in
general*; the line of work this paper opened (Dalvi–Suciu's dichotomy)
later isolated exactly which conjunctive queries stay tractable: Boolean
CQs **without self-joins** whose variable structure is *hierarchical* —
for any two variables, the sets of atoms containing them are nested or
disjoint.  For those, the probability factorises and is computable in
polynomial time over tuple-independent databases — which is exactly what
an unreliable database's ``nu`` is.

This module implements that extension:

* :func:`is_hierarchical` / :func:`is_safe` — syntactic safety test;
* :func:`lifted_probability` — exact ``Pr[B |= q]`` by the safe-plan
  recursion (independent-component product, independent-project over a
  root variable, ground-atom factoring);
* :func:`lifted_reliability` — the reliability of a safe Boolean CQ.

Unsafe queries raise :class:`UnsafeQueryError`; callers fall back to the
grounded-DNF engine (whose worst case is the Proposition 3.2 hardness).
Tests assert agreement with the exact engine on random databases, and
benchmark E11 measures the polynomial-vs-exponential gap.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple, Union

from repro import obs
from repro.logic.conjunctive import ConjunctiveQuery
from repro.logic.fo import AtomF, Eq, Formula
from repro.logic.terms import Const, Term, Var
from repro.relational.atoms import Atom
from repro.reliability.unreliable import UnreliableDatabase
from repro.runtime.budget import checkpoint
from repro.util.errors import QueryError


class UnsafeQueryError(QueryError):
    """The query is outside the lifted-inference fragment.

    Raised for self-joins and non-hierarchical variable structures; the
    caller should fall back to grounded exact inference or an estimator.
    ``verdict`` carries the static classifier's
    :class:`~repro.logic.safety.UnsafeVerdict` (the #P-hardness witness)
    when the refusal came from the dichotomy test.
    """

    def __init__(self, message: str, verdict=None):
        super().__init__(message)
        self.verdict = verdict


QueryLike = Union[ConjunctiveQuery, Formula, str]


def _as_boolean_cq(query: QueryLike) -> ConjunctiveQuery:
    if isinstance(query, str):
        query = ConjunctiveQuery.from_text(query)
    elif isinstance(query, Formula):
        query = ConjunctiveQuery.from_formula(query)
    if not isinstance(query, ConjunctiveQuery):
        raise QueryError(
            f"lifted inference expects a conjunctive query, got "
            f"{type(query).__name__}"
        )
    if query.arity != 0:
        raise QueryError("lifted inference works on Boolean queries; "
                         "instantiate free variables first")
    return query


def _atom_parts(query: ConjunctiveQuery) -> List[AtomF]:
    atoms: List[AtomF] = []
    for part in query.body:
        if isinstance(part, Eq):
            raise UnsafeQueryError(
                "equality atoms are not supported by the lifted engine; "
                "substitute them away first"
            )
        atoms.append(part)
    return atoms


def _variables_of(atom: AtomF) -> FrozenSet[Var]:
    return frozenset(t for t in atom.args if isinstance(t, Var))


def is_hierarchical(query: QueryLike) -> bool:
    """Hierarchy test: variable atom-sets pairwise nested or disjoint."""
    cq = _as_boolean_cq(query)
    atoms = _atom_parts(cq)
    occurrences: Dict[Var, Set[int]] = {}
    for index, atom in enumerate(atoms):
        for variable in _variables_of(atom):
            occurrences.setdefault(variable, set()).add(index)
    variables = list(occurrences)
    for i, x in enumerate(variables):
        for y in variables[i + 1 :]:
            sx, sy = occurrences[x], occurrences[y]
            if not (sx <= sy or sy <= sx or not (sx & sy)):
                return False
    return True


def has_self_join(query: QueryLike) -> bool:
    """True when some relation name occurs in two different atoms."""
    cq = _as_boolean_cq(query)
    atoms = _atom_parts(cq)
    names = [a.relation for a in set(atoms)]
    return len(names) != len(set(names))


def is_safe(query: QueryLike) -> bool:
    """Safe = Boolean CQ, no self-joins, hierarchical.

    Delegates to the static dichotomy classifier
    (:func:`repro.logic.safety.classify_dichotomy`); the differential
    suite pins its agreement with :func:`is_hierarchical` /
    :func:`has_self_join`, which keep their independent implementations
    as oracles.
    """
    from repro.logic.safety import classify_dichotomy

    try:
        cq = _as_boolean_cq(query)
    except QueryError:
        return False
    return classify_dichotomy(cq).safe


def lifted_probability(
    db: UnreliableDatabase, query: QueryLike
) -> Fraction:
    """Exact ``Pr[B |= q]`` for a safe Boolean conjunctive query.

    Polynomial time: the recursion instantiates one root variable per
    level (``n`` branches each), multiplies independent components and
    ``nu``-values of ground atoms.  Raises :class:`UnsafeQueryError` if
    the recursion gets stuck, which for self-join-free CQs happens
    exactly on the non-hierarchical ones.
    """
    from repro.logic.safety import classify_dichotomy

    cq = _as_boolean_cq(query)
    atoms = _atom_parts(cq)
    verdict = classify_dichotomy(cq)
    if not verdict.safe:
        raise UnsafeQueryError(verdict.summary(), verdict=verdict)
    with obs.span("lifted.probability", atoms=len(atoms)):
        unique = list(dict.fromkeys(atoms))
        if is_uniform_half(db):
            obs.inc("lifted.uniform_fast_path")
            return _uniform_probability(unique, db.universe_size)
        return _probability(db, unique)


def _probability(db: UnreliableDatabase, atoms: List[AtomF]) -> Fraction:
    obs.inc("lifted.recursive_calls")
    checkpoint()
    if not atoms:
        return Fraction(1)

    # 1. Factor out ground atoms: independent of everything else because
    #    their relations occur nowhere else (no self-joins).
    ground: List[AtomF] = []
    open_atoms: List[AtomF] = []
    for atom in atoms:
        (ground if not _variables_of(atom) else open_atoms).append(atom)
    probability = Fraction(1)
    for atom in ground:
        args = tuple(t.value for t in atom.args)  # all Consts
        probability *= db.nu(Atom(atom.relation, args))
        if probability == 0:
            return Fraction(0)
    if not open_atoms:
        return probability

    # 2. Split into variable-connected components: touch disjoint
    #    relations, hence independent events.
    components = _components(open_atoms)
    if len(components) > 1:
        for component in components:
            probability *= _probability(db, component)
        return probability

    # 3. Independent project on a root variable.
    component = components[0]
    root = _root_variable(component)
    if root is None:
        raise UnsafeQueryError(
            "no root variable: the query is not hierarchical "
            f"(stuck on {[str(a) for a in component]})"
        )
    obs.inc("lifted.projections")
    miss = Fraction(1)
    for element in db.structure.universe:
        instantiated = [
            _substitute_atom(atom, root, element) for atom in component
        ]
        miss *= 1 - _probability(db, instantiated)
        if miss == 0:
            break
    return probability * (1 - miss)


def _components(atoms: List[AtomF]) -> List[List[AtomF]]:
    remaining = list(atoms)
    components: List[List[AtomF]] = []
    while remaining:
        seed = remaining.pop()
        component = [seed]
        variables = set(_variables_of(seed))
        changed = True
        while changed:
            changed = False
            still = []
            for atom in remaining:
                if _variables_of(atom) & variables:
                    component.append(atom)
                    variables |= _variables_of(atom)
                    changed = True
                else:
                    still.append(atom)
            remaining = still
        components.append(component)
    return components


def _root_variable(atoms: List[AtomF]):
    candidates = set(_variables_of(atoms[0]))
    for atom in atoms[1:]:
        candidates &= _variables_of(atom)
        if not candidates:
            return None
    return sorted(candidates)[0]


def _substitute_atom(atom: AtomF, variable: Var, value) -> AtomF:
    return AtomF(
        atom.relation,
        tuple(
            Const(value) if term == variable else term for term in atom.args
        ),
    )


#: Marker constant used when the uniform recursion instantiates a root
#: variable: with every ``nu`` equal to 1/2 the branches of an
#: independent project are *symmetric*, so one symbolic branch stands
#: in for all ``n`` of them.
_UNIFORM_MARKER = "★"


def is_uniform_half(db: UnreliableDatabase) -> bool:
    """True when every atom's error probability ``mu`` equals 1/2.

    This is the *uniform reliability* regime of Amarilli–Kimelfeld
    ("Uniform Reliability of Self-Join-Free Conjunctive Queries"):
    ``nu(A) = 1 - mu(A)`` if ``A`` holds and ``mu(A)`` otherwise, so
    with ``mu == 1/2`` everywhere every atom is present in the random
    world with probability exactly 1/2 *regardless of the observed
    structure* — the answer depends only on the query and the domain
    size.
    """
    half = Fraction(1, 2)
    table = db.error_table()
    if any(value != half for value in table.values()):
        return False
    if db.default_error == half:
        return True
    # The default is only reachable through atoms absent from the
    # table; a table covering the whole atom space is still uniform.
    return all(atom in table for atom in db.structure.atoms())


def _uniform_probability(atoms: List[AtomF], n: int) -> Fraction:
    """``Pr[B |= q]`` on an all-1/2 database, by structural recursion.

    The safe-plan recursion collapses: every ground atom contributes a
    factor 1/2 (its ``nu`` is 1/2 whether or not it is observed), and
    an independent project's ``n`` branches are identical up to the
    constant chosen, so the per-element miss probability is computed
    once and raised to the ``n``-th power.  The recursion therefore
    runs in time polynomial in the *query* size (plus big-integer
    exponentiation) — no factor of ``n`` branches at all, the
    Amarilli–Kimelfeld speedup over the general lifted plan.
    """
    obs.inc("lifted.recursive_calls")
    checkpoint()
    if not atoms:
        return Fraction(1)
    ground = [a for a in atoms if not _variables_of(a)]
    open_atoms = [a for a in atoms if _variables_of(a)]
    probability = Fraction(1, 2 ** len(ground))
    if not open_atoms:
        return probability
    components = _components(open_atoms)
    if len(components) > 1:
        for component in components:
            probability *= _uniform_probability(component, n)
        return probability
    component = components[0]
    root = _root_variable(component)
    if root is None:
        raise UnsafeQueryError(
            "no root variable: the query is not hierarchical "
            f"(stuck on {[str(a) for a in component]})"
        )
    obs.inc("lifted.projections")
    branch = _uniform_probability(
        [_substitute_atom(atom, root, _UNIFORM_MARKER) for atom in component],
        n,
    )
    return probability * (1 - (1 - branch) ** n)


def uniform_reliability(db: UnreliableDatabase, query: QueryLike) -> Fraction:
    """``Pr[B |= q]`` of a safe CQ on an all-1/2 database, directly.

    A convenience entry point for the Amarilli–Kimelfeld fast path
    (:func:`lifted_probability` dispatches to it automatically whenever
    :func:`is_uniform_half` holds); raises :class:`UnsafeQueryError`
    outside the safe fragment and :class:`QueryError` when the database
    is not uniform.
    """
    if not is_uniform_half(db):
        raise QueryError(
            "uniform_reliability requires an all-1/2 database; "
            "use lifted_probability for general error tables"
        )
    return lifted_probability(db, query)


def lifted_wrong_probability(
    db: UnreliableDatabase, query: QueryLike
) -> Fraction:
    """``Pr[Wrong(q)]`` through the lifted engine."""
    cq = _as_boolean_cq(query)
    observed = cq.evaluate(db.structure, ())
    p = lifted_probability(db, cq)
    return 1 - p if observed else p


def lifted_reliability(db: UnreliableDatabase, query: QueryLike) -> Fraction:
    """``R_q`` of a safe Boolean conjunctive query, in polynomial time."""
    return 1 - lifted_wrong_probability(db, query)
