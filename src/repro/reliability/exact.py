"""Exact reliability computation.

Three exact engines, dispatched by query shape:

* **Quantifier-free fast path** (Proposition 3.1): for each answer tuple,
  the instantiated formula mentions at most ``n(psi)`` atoms — a constant
  of the query — so enumerating their ``2 ** n(psi)`` joint values costs
  polynomial time overall.
* **Grounded-DNF path** (existential/universal sentences): ground via
  Theorem 5.4's construction and evaluate the exact weighted probability
  with Shannon expansion.  Worst-case exponential — the problem is
  #P-hard by Proposition 3.2 — but exact and often fast.
* **World-enumeration path** (any query implementing the query protocol):
  the literal FP^#P algorithm of Theorem 4.2, enumerating the worlds that
  differ on *relevant* atoms.

All results are exact :class:`~fractions.Fraction` values.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.kernels.gray import (
    gray_dnf_probability,
    gray_enumeration_probability,
)
from repro.logic.classify import is_existential, is_quantifier_free, is_universal
from repro.logic.evaluator import FOQuery, evaluate
from repro.logic.fo import Formula, instantiate, neg
from repro.logic.parser import parse
from repro.propositional.counting import probability_exact
from repro.relational.atoms import Atom
from repro.reliability.grounding import (
    ground_existential_to_dnf,
    grounding_probabilities,
    relevant_atoms,
)
from repro.reliability.unreliable import UnreliableDatabase
from repro.runtime.budget import checkpoint
from repro.runtime.preflight import preflight_worlds
from repro.util.errors import QueryError

QueryLike = Union[str, Formula, FOQuery, Any]

_METHODS = ("auto", "qf", "dnf", "worlds")


def as_query(query: QueryLike) -> Any:
    """Normalise the accepted query spellings to a query-protocol object.

    Strings are parsed as first-order formulas; formulas are wrapped in
    :class:`FOQuery`; anything already exposing ``arity`` / ``evaluate`` /
    ``answers`` passes through (Datalog, fixpoint, second-order, ...).
    """
    if isinstance(query, str):
        return FOQuery(parse(query))
    if isinstance(query, Formula):
        return FOQuery(query)
    if hasattr(query, "arity") and hasattr(query, "evaluate"):
        return query
    raise QueryError(f"cannot interpret {type(query).__name__} as a query")


# ---------------------------------------------------------------------- #
# Boolean building blocks
# ---------------------------------------------------------------------- #


def truth_probability(
    db: UnreliableDatabase, sentence: QueryLike, method: str = "auto"
) -> Fraction:
    """Exact ``Pr[B |= psi]`` for a Boolean query over ``Omega(D)``."""
    query = as_query(sentence)
    if getattr(query, "arity", 0) != 0:
        raise QueryError("truth_probability expects a Boolean (0-ary) query")
    return _boolean_truth_probability(db, query, method)


def _boolean_truth_probability(
    db: UnreliableDatabase, query: Any, method: str
) -> Fraction:
    if method not in _METHODS:
        raise QueryError(f"unknown exact method {method!r}")
    formula = query.formula if isinstance(query, FOQuery) else None

    if formula is not None:
        if method == "qf" or (method == "auto" and is_quantifier_free(formula)):
            obs.inc("exact.dispatch.qf")
            return _qf_truth_probability(db, formula)
        if method == "auto":
            lifted = _try_lifted(db, formula)
            if lifted is not None:
                obs.inc("exact.dispatch.lifted")
                return lifted
        if method == "dnf" or (method == "auto" and is_existential(formula)):
            obs.inc("exact.dispatch.dnf")
            return _dnf_truth_probability(db, formula)
        if method == "auto" and is_universal(formula):
            obs.inc("exact.dispatch.dnf")
            return 1 - _dnf_truth_probability(db, neg(formula))
        if method == "dnf":
            raise QueryError(
                "dnf method requires an existential or universal sentence"
            )
    elif method in ("qf", "dnf"):
        raise QueryError(f"method {method!r} requires a first-order formula")
    obs.inc("exact.dispatch.worlds")
    return _worlds_truth_probability(db, query)


def _try_lifted(db: UnreliableDatabase, formula: Formula):
    """Fast path: safe conjunctive queries go through the lifted engine.

    Returns ``None`` when the formula is not a safe Boolean CQ, in which
    case the caller falls through to grounding (the #P-hard route that
    Proposition 3.2 makes unavoidable in general).
    """
    from repro.logic.classify import is_conjunctive

    if not is_conjunctive(formula):
        return None
    from repro.logic.conjunctive import ConjunctiveQuery
    from repro.reliability.lifted import UnsafeQueryError, lifted_probability

    try:
        query = ConjunctiveQuery.from_formula(formula)
        if query.arity != 0:
            return None
        return lifted_probability(db, query)
    except UnsafeQueryError:
        return None


def _qf_truth_probability(db: UnreliableDatabase, formula: Formula) -> Fraction:
    """Proposition 3.1's engine for one quantifier-free sentence.

    Only the (constantly many) atoms occurring in the sentence matter;
    enumerate their joint values, weight by ``nu``, and evaluate.  A
    ground quantifier-free sentence is vacuously existential, so it
    grounds to a (cached) DNF whose marginal probability equals the
    enumeration sum exactly — letting the Gray-code walk update clause
    state incrementally instead of re-evaluating the formula per world.
    Formulas whose grounding is refused fall back to the generic walk.
    """
    from repro.util.errors import CostRefused

    atoms = _formula_atoms(db, formula)
    with obs.span("exact.qf", atoms=len(atoms)):
        obs.observe("exact.relevant_atoms", len(atoms))
        try:
            dnf = ground_existential_to_dnf(db, formula).dnf
        except (CostRefused, QueryError):
            return _atom_enumeration_probability(
                db, atoms, lambda world: evaluate(world, formula)
            )
        if dnf.is_true():
            return Fraction(1)
        if dnf.is_false():
            return Fraction(0)
        return gray_dnf_probability(db, dnf)


def _formula_atoms(db: UnreliableDatabase, formula: Formula) -> Tuple[Atom, ...]:
    """Uncertain ground atoms syntactically occurring in a ground formula."""
    from repro.logic.fo import (
        And,
        AtomF,
        Bottom,
        Eq,
        Exists,
        Forall,
        Iff,
        Implies,
        Not,
        Or,
        Top,
    )
    from repro.logic.terms import Const

    found: List[Atom] = []

    def walk(node: Formula) -> None:
        if isinstance(node, AtomF):
            args = []
            for term in node.args:
                if not isinstance(term, Const):
                    raise QueryError(
                        "quantifier-free path needs a ground (instantiated) "
                        f"formula; found variable {term}"
                    )
                args.append(term.value)
            atom = Atom(node.relation, tuple(args))
            if 0 < db.mu(atom) < 1:
                found.append(atom)
        elif isinstance(node, (Top, Bottom, Eq)):
            pass
        elif isinstance(node, Not):
            walk(node.sub)
        elif isinstance(node, (And, Or)):
            for sub in node.subs:
                walk(sub)
        elif isinstance(node, (Implies, Iff)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (Exists, Forall)):
            raise QueryError("quantifier-free path got a quantified formula")
        else:
            raise QueryError(f"unknown formula node {type(node).__name__}")

    walk(formula)
    unique = sorted(set(found), key=repr)
    return tuple(unique)


def _atom_enumeration_probability(
    db: UnreliableDatabase, atoms: Sequence[Atom], predicate
) -> Fraction:
    """``Pr[predicate(B)]`` enumerating only the given uncertain atoms.

    Every other atom keeps its deterministic actual value.  Cost:
    ``2 ** len(atoms)`` world evaluations, walked in Gray-code order —
    one atom flip and one exact weight update per world (see
    :mod:`repro.kernels.gray`).
    """
    return gray_enumeration_probability(db, atoms, predicate)


def _dnf_truth_probability(db: UnreliableDatabase, formula: Formula) -> Fraction:
    with obs.span("exact.dnf"):
        grounding = ground_existential_to_dnf(db, formula)
        dnf = grounding.dnf
        obs.gauge(
            "exact.grounded_formula_size",
            sum(len(clause) for clause in dnf.clauses),
        )
        probs = grounding_probabilities(db, dnf)
        return probability_exact(dnf, probs)


def _worlds_truth_probability(db: UnreliableDatabase, query: Any) -> Fraction:
    atoms = relevant_atoms(db, query)
    # Fail fast on hopeless enumerations: 2 ** len(atoms) worlds against
    # the active budget's world limit (2 ** 20 by default) — see
    # docs/ROBUSTNESS.md.  Budget(max_atoms=None) disables the guard.
    preflight_worlds(len(atoms))
    with obs.span("exact.worlds", atoms=len(atoms)):
        obs.observe("exact.relevant_atoms", len(atoms))
        return _atom_enumeration_probability(
            db, atoms, lambda world: query.evaluate(world, ())
        )


# ---------------------------------------------------------------------- #
# wrong-probability, expected error, reliability
# ---------------------------------------------------------------------- #


def wrong_probability(
    db: UnreliableDatabase,
    query: QueryLike,
    args: Sequence[Any] = (),
    method: str = "auto",
) -> Fraction:
    """``Pr[Wrong(psi(args))]`` — the per-tuple expected error.

    Equals ``1 - p`` when the observed database satisfies ``psi(args)``
    and ``p`` otherwise, where ``p = Pr[B |= psi(args)]``.
    """
    query = as_query(query)
    boolean = _instantiated(query, args)
    observed = boolean.evaluate(db.structure, ())
    p = _boolean_truth_probability(db, boolean, method)
    return 1 - p if observed else p


class _InstantiatedQuery:
    """A k-ary query-protocol object curried with a fixed argument tuple."""

    __slots__ = ("inner", "args")

    def __init__(self, inner: Any, args: Tuple[Any, ...]):
        self.inner = inner
        self.args = args

    arity = 0

    def evaluate(self, structure, args=()) -> bool:
        return self.inner.evaluate(structure, self.args)

    def answers(self, structure):
        return {()} if self.evaluate(structure) else set()


def _instantiated(query: Any, args: Sequence[Any]) -> Any:
    args = tuple(args)
    if len(args) != query.arity:
        raise QueryError(
            f"query has arity {query.arity}, got {len(args)} arguments"
        )
    if isinstance(query, FOQuery):
        return FOQuery(query.instantiated(args)) if args else query
    if not args:
        return query
    return _InstantiatedQuery(query, args)


def expected_error(
    db: UnreliableDatabase, query: QueryLike, method: str = "auto"
) -> Fraction:
    """``H_psi(D)``: expected Hamming distance (Definition 2.2).

    By linearity of expectation this is the sum over all ``n ** k`` tuples
    of the per-tuple wrong probabilities — the decomposition used in both
    Proposition 3.1 and Theorem 4.2.
    """
    query = as_query(query)
    total = Fraction(0)
    for args in product(db.structure.universe, repeat=query.arity):
        checkpoint()
        total += wrong_probability(db, query, args, method)
    return total


def reliability(
    db: UnreliableDatabase, query: QueryLike, method: str = "auto"
) -> Fraction:
    """``R_psi(D) = 1 - H_psi(D) / n ** k`` (Definition 2.2).

    For Boolean queries (``k == 0``) this is ``1 - H_psi``.
    """
    query = as_query(query)
    n = db.universe_size
    if query.arity == 0:
        return 1 - expected_error(db, query, method)
    if n == 0:
        raise QueryError("reliability undefined on an empty universe")
    return 1 - expected_error(db, query, method) / Fraction(n**query.arity)


def qf_tuple_wrong_probability(
    db: UnreliableDatabase, query: QueryLike, args: Sequence[Any] = ()
) -> Fraction:
    """Proposition 3.1's inner loop, exposed for tests and benchmarks.

    Forces the quantifier-free engine; raises if the instantiated formula
    is not quantifier-free.
    """
    return wrong_probability(db, query, args, method="qf")
