"""Grounding queries to propositional formulas over ground atoms.

Theorem 5.4's proof replaces the quantifiers of an existential sentence by
disjunctions over all universe values, reads atomic statements as
propositional variables, and lands in kDNF whose size is polynomial in
``n``.  :func:`ground_existential_to_dnf` is that transformation, with
one practically-essential refinement the proof can afford to skip:
deterministic atoms (``mu`` 0 or 1) are *folded to constants*, so the
resulting DNF mentions only uncertain atoms.  Without folding, the
2-CNF-reduction databases of Proposition 3.2 would drag thousands of
fixed ``L``/``R`` atoms into every clause.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.kernels.cache import compilation_cache
from repro.logic.evaluator import FOQuery
from repro.logic.fo import (
    AtomF,
    Bottom,
    Eq,
    Formula,
    Not,
    Top,
)
from repro.logic.normalform import dnf_clauses, existential_parts
from repro.logic.terms import Const, Term, Var
from repro.propositional.formula import DNF, Clause, Literal
from repro.relational.atoms import Atom
from repro.reliability.unreliable import UnreliableDatabase
from repro.runtime.budget import checkpoint
from repro.runtime.preflight import preflight_grounding
from repro.util.errors import QueryError


@dataclass(frozen=True)
class GroundingResult:
    """A grounded existential sentence.

    Attributes:
        dnf: propositional DNF over uncertain :class:`Atom` variables;
        width: the ``k`` of the source kDNF matrix (clause width bound);
        clauses_before_folding: grounded clause count before
            deterministic-atom simplification, for blowup reporting.
    """

    dnf: DNF
    width: int
    clauses_before_folding: int


def ground_existential_to_dnf(
    db: UnreliableDatabase, sentence: Formula
) -> GroundingResult:
    """Ground a Boolean existential sentence to a DNF over uncertain atoms.

    Implements the proof of Theorem 5.4: prenex the sentence, put the
    matrix in DNF (constant cost — it depends only on the query), then for
    every clause and every valuation of the existential variables emit a
    propositional clause.  Equalities are evaluated away; deterministic
    atoms fold to constants (a clause containing a false deterministic
    literal is dropped; true literals vanish).

    Results are memoised in the kernels compilation cache keyed on the
    database fingerprint and the sentence AST, so repeated runs of the
    same query skip re-grounding entirely (``kernels.cache.hits``);
    grounding counters fire only on actual grounding work.

    Raises :class:`QueryError` if the sentence is not existential (the
    caller handles universal sentences by negating).
    """
    key = ("grounding", db.fingerprint(), sentence)
    return compilation_cache.get_or_create(
        key, lambda: _ground_uncached(db, sentence)
    )


def _ground_uncached(
    db: UnreliableDatabase, sentence: Formula
) -> GroundingResult:
    with obs.span("grounding.ground"):
        variables, matrix = existential_parts(sentence)
        clause_templates = dnf_clauses(matrix)
        width = max((len(c) for c in clause_templates), default=0)
        universe = db.structure.universe
        # Refuse a grounding the active budget predicts to be hopeless:
        # |templates| * n ** |variables| clauses (Theorem 5.4's bound).
        preflight_grounding(len(universe), len(variables), len(clause_templates))
        grounded: List[Clause] = []
        raw_count = 0
        for template in clause_templates:
            for values in product(universe, repeat=len(variables)):
                env = dict(zip(variables, values))
                raw_count += 1
                checkpoint(clauses=1)
                clause = ground_clause(db, template, env)
                if clause is None:
                    continue
                grounded.append(clause)
                if len(clause) == 0:
                    # The sentence is certainly true; short-circuit.
                    return _recorded(GroundingResult(DNF.true(), width, raw_count))
        return _recorded(GroundingResult(DNF(grounded), width, raw_count))


def _recorded(result: GroundingResult) -> GroundingResult:
    """Report a grounding's shape to the observability layer."""
    obs.inc("grounding.clauses_raw", result.clauses_before_folding)
    obs.inc("grounding.clauses_kept", len(result.dnf.clauses))
    obs.inc("grounding.variables", len(result.dnf.variables))
    obs.gauge("grounding.width", result.width)
    return result


def ground_clause(
    db: UnreliableDatabase,
    template: Tuple[Formula, ...],
    env: Dict[Var, object],
) -> Optional[Clause]:
    """One grounded clause, or ``None`` when it is certainly false.

    Shared with :mod:`repro.delta`, which re-derives exactly the clauses
    a single-atom update can affect instead of regrounding everything.
    """
    literals: List[Literal] = []
    for part in template:
        positive = True
        core = part
        if isinstance(core, Not):
            positive = False
            core = core.sub
        if isinstance(core, Top):
            if not positive:
                return None
            continue
        if isinstance(core, Bottom):
            if positive:
                return None
            continue
        if isinstance(core, Eq):
            left = _value(core.left, env)
            right = _value(core.right, env)
            if (left == right) != positive:
                return None
            continue
        if isinstance(core, AtomF):
            atom = Atom(core.relation, tuple(_value(t, env) for t in core.args))
            error = db.mu(atom)
            if error == 0:
                # Actual value equals the observed value, deterministically.
                if db.structure.holds(atom) != positive:
                    return None
                continue
            if error == 1:
                # Actual value is the flip of the observed one.
                if db.structure.holds(atom) == positive:
                    return None
                continue
            literals.append(Literal(atom, positive))
            continue
        raise QueryError(
            f"unexpected literal {type(core).__name__} in grounded clause"
        )
    clause = Clause(literals)
    if clause.contradictory:
        return None
    return clause


# Backwards-compatible alias (pre-delta name).
_ground_clause = ground_clause


def _value(term: Term, env: Dict[Var, object]) -> object:
    if isinstance(term, Const):
        return term.value
    try:
        return env[term]
    except KeyError:
        raise QueryError(
            f"variable {term.name!r} is free in a sentence being grounded"
        ) from None


def grounding_probabilities(db: UnreliableDatabase, dnf: DNF):
    """The ``nu`` map restricted to the atoms of a grounded DNF."""
    return {atom: db.nu(atom) for atom in dnf.variables}


def relevant_atoms(db: UnreliableDatabase, query) -> Tuple[Atom, ...]:
    """Uncertain atoms that could influence a query's answer.

    For first-order queries this is the uncertain atoms of the relations
    the formula mentions; for opaque queries (Datalog, second-order, ...)
    it is every uncertain atom.  Used by the exact engine to shrink the
    enumeration space from ``2 ** #uncertain`` to ``2 ** #relevant``.
    """
    formula = None
    if isinstance(query, FOQuery):
        formula = query.formula
    elif isinstance(query, Formula):
        formula = query
    if formula is None:
        return db.uncertain_atoms()

    def compute() -> Tuple[Atom, ...]:
        from repro.logic.fo import relations_used

        used = relations_used(formula)
        return tuple(a for a in db.uncertain_atoms() if a.relation in used)

    key = ("relevant_atoms", db.fingerprint(), formula)
    return compilation_cache.get_or_create(key, compute)
