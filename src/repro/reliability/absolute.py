"""Absolute reliability: the decision problem ``AR_psi`` of Section 5.

``D in AR_psi`` iff ``R_psi(D) = 1`` — the observed answer is certainly
the actual answer.  The paper's complexity landscape (all reproduced
here as executable procedures):

* Lemma 5.7: quantifier-free ``psi`` — polynomial time (compute
  ``H_psi`` exactly with the Proposition 3.1 engine, compare with 0);
* Lemma 5.8: polynomial-time evaluable ``psi`` — coNP (guess a world,
  check disagreement); implemented as a search over the relevant-atom
  world space;
* Lemma 5.9: some existential query makes ``AR_psi`` coNP-hard (the
  4-colourability reduction lives in
  :mod:`repro.reductions.fourcolouring`).

For existential sentences the witness search is organised on the grounded
DNF: with every uncertain atom strictly between 0 and 1, a disagreeing
world exists iff the DNF is non-trivial in the relevant direction.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Any, Optional, Sequence, Union

from repro.logic.classify import is_existential, is_quantifier_free, is_universal
from repro.logic.evaluator import FOQuery
from repro.logic.fo import Formula, neg
from repro.propositional.counting import probability_exact
from repro.reliability.exact import _instantiated, as_query, wrong_probability
from repro.reliability.grounding import (
    ground_existential_to_dnf,
    grounding_probabilities,
    relevant_atoms,
)
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError


def is_absolutely_reliable(
    db: UnreliableDatabase, query: Any, method: str = "auto"
) -> bool:
    """Decide ``D in AR_psi``: is the reliability exactly 1?

    ``method``:

    * ``"auto"`` — dispatch per query fragment (QF exact, existential /
      universal via grounded DNF, otherwise world search);
    * ``"exact"`` — compute ``H_psi`` exactly and compare with zero;
    * ``"witness"`` — explicit coNP-style search for a disagreeing world
      over the relevant uncertain atoms (Lemma 5.8's guess, derandomised
      into enumeration).
    """
    if method not in ("auto", "exact", "witness"):
        raise QueryError(f"unknown method {method!r}")
    query = as_query(query)
    if method == "exact":
        return all(
            wrong_probability(db, query, args) == 0
            for args in product(db.structure.universe, repeat=query.arity)
        )
    if method == "witness":
        return not _witness_search(db, query)
    for args in product(db.structure.universe, repeat=query.arity):
        if not _tuple_absolutely_reliable(db, query, args):
            return False
    return True


def _tuple_absolutely_reliable(
    db: UnreliableDatabase, query: Any, args: Sequence[Any]
) -> bool:
    boolean = _instantiated(query, args)
    formula: Optional[Formula] = (
        boolean.formula if isinstance(boolean, FOQuery) else None
    )
    observed = boolean.evaluate(db.structure, ())
    if formula is not None and (is_existential(formula) or is_universal(formula)):
        # Reduce the universal case to the existential one by negation:
        # Wrong(psi) and Wrong(~psi) are the same event.
        target = formula if is_existential(formula) else neg(formula)
        grounding = ground_existential_to_dnf(db, target)
        dnf = grounding.dnf
        target_observed = (
            observed if is_existential(formula) else not observed
        )
        if target_observed:
            # Disagreement iff some positive-probability world falsifies
            # the DNF, i.e. the DNF is not a tautology over its atoms.
            if dnf.is_true():
                return True
            probs = grounding_probabilities(db, dnf)
            return probability_exact(dnf, probs) == 1
        # Disagreement iff some positive-probability world satisfies it;
        # every surviving grounded clause has positive probability, so
        # any clause at all is a witness.
        return dnf.is_false()
    return wrong_probability(db, query, args) == 0


def _witness_search(db: UnreliableDatabase, query: Any) -> bool:
    """Find a world (over relevant atoms) where some answer differs."""
    atoms = relevant_atoms(db, query)
    base = db.observed_world()
    observed_answers = query.answers(db.structure)
    for pattern in product((False, True), repeat=len(atoms)):
        flips = [atom for atom, flip in zip(atoms, pattern) if flip]
        world = base.flip_all(flips) if flips else base
        if query.answers(world) != observed_answers:
            return True
    return False
