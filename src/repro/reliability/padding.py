"""Theorem 5.12: additive reliability estimation for any PTIME query.

The obstacle the theorem overcomes: Karp–Luby-style relative-error
analysis (Lemma 5.11) needs the estimated mean ``p`` bounded away from 0
and 1/2.  The paper's fix pads the database and the query so the target
probability is *forced* into ``[xi**2, xi]`` for a fixed rational
``xi in (0, 1/2)``:

* adjoin a fresh empty unary relation ``R`` and fresh constants ``c, d``;
* give the atoms ``R(c)`` and ``R(d)`` error probability ``xi``;
* replace ``psi`` by ``psi' = (psi | R(c)) & R(d)``.

Then ``p := nu'(psi') = xi**2 + (xi - xi**2) * nu(psi)`` (equation (3)),
so after estimating ``p`` by ``t = ceil(9 / (2 xi eps^2) ln(1/delta))``
world samples, ``alpha = (p_hat - xi**2) / (xi - xi**2)`` approximates
``nu(psi)`` within ``2 * eps`` additively with confidence ``1 - delta``
(equation (5)); calling the estimator with ``eps / 2`` yields the stated
bound.  Everything here follows the proof line by line; the exact
identity (3) is checked by tests on small databases.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from itertools import product
from typing import Any, Optional, Sequence, Tuple, Union

from repro.logic.evaluator import FOQuery
from repro.logic.fo import Formula
from repro.relational.atoms import Atom
from repro.relational.schema import RelationSymbol, Vocabulary
from repro.reliability.approx import AdditiveEstimate
from repro.reliability.exact import as_query, _instantiated
from repro.reliability.unreliable import UnreliableDatabase
from repro.runtime.budget import checkpoint
from repro.runtime.preflight import preflight_samples
from repro.util.errors import ProbabilityError, QueryError
from repro.util.rationals import RationalLike, parse_probability

# The sampling loop charges the runtime budget in chunks of this many
# samples; BudgetExceeded is accurate to within one chunk.
CHECKPOINT_CHUNK = 64

# Fresh names for the padding gadget.  They only clash if the user's
# vocabulary already uses them; pad_database validates and lets the caller
# rename via parameters in that case.
PAD_RELATION = "PadR"
PAD_C = "__pad_c__"
PAD_D = "__pad_d__"


class PaddedQuery:
    """``psi' = (psi | R(c)) & R(d)`` as a query-protocol object.

    Works for *any* Boolean query object, not just first-order formulas —
    that is the point of Theorem 5.12.

    Reproduction note: the paper adjoins fresh constants ``c, d`` to the
    universe and keeps writing ``psi`` as if its value were unaffected.
    For quantified queries that is only true when ``psi`` is evaluated on
    the *reduct* to the original universe — which is what this wrapper
    does (``base_universe``/``base_vocabulary`` below).
    """

    __slots__ = ("inner", "relation", "c", "d", "base_universe", "base_vocabulary")

    arity = 0

    def __init__(
        self,
        inner: Any,
        relation: str,
        c: Any,
        d: Any,
        base_universe: Optional[Tuple[Any, ...]] = None,
        base_vocabulary=None,
    ):
        if inner.arity != 0:
            raise QueryError("PaddedQuery wraps Boolean queries only")
        self.inner = inner
        self.relation = relation
        self.c = c
        self.d = d
        self.base_universe = base_universe
        self.base_vocabulary = base_vocabulary

    def evaluate(self, structure, args: Sequence[Any] = ()) -> bool:
        if args:
            raise QueryError("padded query is Boolean")
        rows = structure.relation(self.relation)
        if (self.d,) not in rows:
            return False
        if (self.c,) in rows:
            return True
        inner_structure = structure
        if self.base_universe is not None:
            inner_structure = structure.restrict(
                self.base_universe, self.base_vocabulary
            )
        return self.inner.evaluate(inner_structure, ())

    def answers(self, structure):
        return {()} if self.evaluate(structure) else set()


def pad_database(
    db: UnreliableDatabase,
    xi: RationalLike,
    relation: str = PAD_RELATION,
    c: Any = PAD_C,
    d: Any = PAD_D,
) -> UnreliableDatabase:
    """The modified database ``D'`` of Theorem 5.12.

    Adds constants ``c != d`` to the universe, an empty unary relation,
    and error probability ``xi`` on exactly ``R(c)`` and ``R(d)``.
    """
    xi = parse_probability(xi)
    if not 0 < xi < Fraction(1, 2):
        raise ProbabilityError(f"xi must lie in (0, 1/2), got {xi}")
    structure = db.structure
    if relation in structure.vocabulary:
        raise QueryError(f"relation {relation!r} already in the vocabulary")
    for element in (c, d):
        if element in structure.universe:
            raise QueryError(f"padding constant {element!r} already in universe")
    if c == d:
        raise QueryError("padding constants must be distinct")
    expanded = structure.expand(
        Vocabulary([RelationSymbol(relation, 1)]),
        extra_universe=(c, d),
        relations={relation: ()},
    )
    extra = {Atom(relation, (c,)): xi, Atom(relation, (d,)): xi}
    merged = dict(db.error_table())
    merged.update(extra)
    return UnreliableDatabase(expanded, merged, db.default_error)


def padding_sample_count(xi: RationalLike, epsilon: float, delta: float) -> int:
    """``t = ceil(9 / (2 xi eps^2) * ln(1/delta))`` — the paper's budget."""
    xi = parse_probability(xi)
    if epsilon <= 0 or delta <= 0 or delta >= 1:
        raise ProbabilityError(
            f"need epsilon > 0 and 0 < delta < 1, got {epsilon}, {delta}"
        )
    return max(
        1,
        math.ceil(9.0 / (2.0 * float(xi) * epsilon**2) * math.log(1.0 / delta)),
    )


def padded_truth_probability(
    db: UnreliableDatabase,
    query: Any,
    epsilon: float,
    delta: float,
    rng: random.Random,
    xi: RationalLike = Fraction(1, 4),
    args: Sequence[Any] = (),
) -> AdditiveEstimate:
    """Estimate ``nu(psi(args))`` with the Theorem 5.12 machinery.

    Guarantee: ``Pr[|alpha - nu(psi)| > epsilon] < delta``.  Per the
    proof, the internal run uses ``epsilon / 2``, and the de-biasing map
    ``alpha = (X_bar - xi^2) / (xi - xi^2)`` inverts equation (3).
    """
    xi = parse_probability(xi)
    query = as_query(query)
    boolean = _instantiated(query, args)
    padded_db = pad_database(db, xi)
    padded_query = PaddedQuery(
        boolean,
        PAD_RELATION,
        PAD_C,
        PAD_D,
        base_universe=db.structure.universe,
        base_vocabulary=db.structure.vocabulary,
    )
    half_epsilon = epsilon / 2.0
    t = padding_sample_count(xi, half_epsilon, delta)
    # Refuse up front when the active budget cannot fit the run.
    preflight_samples(t)
    hits = 0
    pending = 0
    for drawn in range(1, t + 1):
        pending += 1
        if pending >= CHECKPOINT_CHUNK or drawn == t:
            checkpoint(samples=pending)
            pending = 0
        world = padded_db.sample(rng)
        if padded_query.evaluate(world):
            hits += 1
    x_bar = hits / t
    xi_f = float(xi)
    alpha = (x_bar - xi_f * xi_f) / (xi_f - xi_f * xi_f)
    alpha = min(max(alpha, 0.0), 1.0)
    return AdditiveEstimate(alpha, epsilon, delta, t)


def exact_padded_identity(
    db: UnreliableDatabase,
    query: Any,
    xi: RationalLike = Fraction(1, 4),
) -> Tuple[Fraction, Fraction]:
    """Exact check of equation (3): returns ``(p, nu(psi))`` with
    ``p = nu'(psi') = xi^2 + (xi - xi^2) * nu(psi)``.

    Used by tests; both values are computed by exact world enumeration.
    """
    from repro.reliability.exact import truth_probability

    xi = parse_probability(xi)
    query = as_query(query)
    padded_db = pad_database(db, xi)
    padded_query = PaddedQuery(
        query,
        PAD_RELATION,
        PAD_C,
        PAD_D,
        base_universe=db.structure.universe,
        base_vocabulary=db.structure.vocabulary,
    )
    p = truth_probability(padded_db, padded_query, method="worlds")
    nu_psi = truth_probability(db, query, method="worlds")
    return p, nu_psi


def padded_reliability(
    db: UnreliableDatabase,
    query: Any,
    epsilon: float,
    delta: float,
    rng: random.Random,
    xi: RationalLike = Fraction(1, 4),
) -> AdditiveEstimate:
    """Theorem 5.12: additive reliability estimate for any PTIME query.

    ``Pr[|M(D) - R_psi(D)| > epsilon] < delta`` for queries of any arity.
    The k-ary case follows the theorem's proof: approximate each tuple's
    wrong-probability with stricter bounds (``delta / n**k`` failure
    budget; absolute accuracy ``epsilon`` per tuple suffices because the
    final division by ``n**k`` averages the errors).
    """
    query = as_query(query)
    n = db.universe_size
    k = query.arity
    cells = n**k
    if cells == 0:
        raise QueryError("reliability undefined on an empty universe")
    per_delta = delta / cells
    total_wrong = 0.0
    total_samples = 0
    for args in product(db.structure.universe, repeat=k):
        observed = query.evaluate(db.structure, args)
        estimate = padded_truth_probability(
            db, query, epsilon, per_delta, rng, xi, args
        )
        wrong = 1.0 - estimate.value if observed else estimate.value
        total_wrong += wrong
        total_samples += estimate.samples
    return AdditiveEstimate(
        1.0 - total_wrong / cells, epsilon, delta, total_samples
    )
