"""Verification planning: spend a re-checking budget where it matters.

The operational loop around an unreliable database is *verify and
correct*: an auditor re-checks a fact against ground truth, corrects the
observed database when it was wrong, and the query is re-evaluated on
the corrected observation.  :func:`verify_and_correct` is that update;
:func:`expected_post_verification_wrong` is the expected wrong
probability after verifying one atom (expectation over the atom's two
possible actual values, each branch conditioning the space *and*
correcting the observation).

**A finding this module documents and tests:** the expected gain of a
verification can be *negative*.  The observed database acts as a
predictor of the actual answer; correcting a single coordinate of a
nonlinear predictor can move the recomputed answer *away* from the
majority of the remaining probability mass (e.g. the corrected database
stops satisfying an existential witness that the actual database most
likely still has).  Verification helps on average only when the atom's
correction tends to flip the answer toward the majority — so a planner
must look ahead.  :func:`greedy_verification_plan` does exact lookahead
and schedules only verifications with strictly positive expected gain.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.logic.evaluator import FOQuery
from repro.logic.fo import Formula
from repro.relational.atoms import Atom
from repro.reliability.exact import as_query, wrong_probability
from repro.reliability.grounding import relevant_atoms
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError

QueryLike = Union[str, Formula, FOQuery]


def verify_and_correct(
    db: UnreliableDatabase, atom: Atom, actual_value: bool
) -> UnreliableDatabase:
    """The database after an auditor learned ``atom``'s actual value.

    The observed structure is corrected to the actual value and the atom
    becomes certain (``mu = 0``).  By independence no other atom's
    distribution changes.
    """
    corrected = db.structure.with_atom(atom, bool(actual_value))
    return db.with_structure(corrected).with_errors({atom: 0})


def expected_post_verification_wrong(
    db: UnreliableDatabase, query: QueryLike, atom: Atom
) -> Fraction:
    """Expected ``Pr[Wrong(psi)]`` after verifying (and correcting) ``atom``.

    Expectation over the atom's actual value: with probability ``nu``
    the fact turns out true, else false; each branch both conditions the
    world distribution and corrects the observation.
    """
    query = as_query(query)
    if query.arity != 0:
        raise QueryError(
            "expected_post_verification_wrong expects a Boolean query"
        )
    nu = db.nu(atom)
    total = Fraction(0)
    for value, probability in ((True, nu), (False, 1 - nu)):
        if probability == 0:
            continue
        branch = verify_and_correct(db, atom, value)
        total += probability * wrong_probability(branch, query)
    return total


def verification_gain(
    db: UnreliableDatabase, query: QueryLike, atom: Atom
) -> Fraction:
    """Expected drop in ``Pr[Wrong(psi)]`` from verifying ``atom``.

    **May be negative** — see the module docstring; the planner below
    only ever schedules positive-gain verifications.
    """
    query = as_query(query)
    if query.arity != 0:
        raise QueryError("verification_gain expects a Boolean query")
    before = wrong_probability(db, query)
    return before - expected_post_verification_wrong(db, query, atom)


def greedy_verification_plan(
    db: UnreliableDatabase,
    query: QueryLike,
    budget: int,
    candidates: Optional[Sequence[Atom]] = None,
) -> List[Tuple[Atom, Fraction]]:
    """A budgeted verification plan, greedy with exact lookahead.

    Returns up to ``budget`` pairs ``(atom, expected_gain)`` in the
    order chosen.  Because later verifications' gains depend on earlier
    *outcomes* (which are unknown at planning time), the plan is
    myopic-in-expectation: each step picks the atom with the best
    one-step expected gain against the current database, then commits to
    the *expected* database for look-ahead purposes by conditioning is
    impossible — instead the next step re-plans against the original
    database restricted to the not-yet-verified atoms, using the same
    one-step criterion.  Stops when no remaining atom has positive gain.
    """
    query = as_query(query)
    if query.arity != 0:
        raise QueryError("greedy_verification_plan expects a Boolean query")
    if budget < 0:
        raise QueryError(f"negative budget {budget}")
    pool = list(
        candidates if candidates is not None else relevant_atoms(db, query)
    )
    plan: List[Tuple[Atom, Fraction]] = []
    for _ in range(budget):
        best_atom: Optional[Atom] = None
        best_gain = Fraction(0)
        for atom in pool:
            if db.mu(atom) == 0:
                continue
            gain = verification_gain(db, query, atom)
            if gain > best_gain or (
                gain == best_gain
                and gain > 0
                and best_atom is not None
                and repr(atom) < repr(best_atom)
            ):
                best_atom = atom
                best_gain = gain
        if best_atom is None or best_gain <= 0:
            break
        plan.append((best_atom, best_gain))
        pool.remove(best_atom)
    return plan


def plan_total_gain(plan: List[Tuple[Atom, Fraction]]) -> Fraction:
    """Sum of the planned one-step expected gains (an upper-level proxy;
    realised gains depend on verification outcomes)."""
    return sum((gain for _atom, gain in plan), Fraction(0))
