"""Delta sessions: reliability answers maintained under updates.

A :class:`DeltaSession` holds a Boolean query against an evolving
unreliable database and keeps ``Pr[B |= psi]`` current through
``set_mu`` / ``insert`` / ``delete`` in far less than a recompute:

* the grounded DNF is compiled **once** into a canonical ROBDD
  (cached, persistable under the ``delta_bdd`` kind), with an explicit
  bottom-up value table over its reachable nodes;
* a *weight-only* update — an uncertain atom's ``mu`` moves but stays
  in ``(0, 1)``, or a tuple with uncertain ``mu`` flips in the observed
  structure, so ``nu`` changes but no clause folds — re-evaluates only
  the reachable nodes at levels at or above the atom's level
  (``delta.nodes_reevaluated`` counts them); children sit strictly
  deeper, so everything below is untouched;
* a *structural* update — ``mu`` crosses 0 or 1, or a deterministic
  tuple flips — regrounds only the clauses the atom unifies into
  (:class:`~repro.delta.reground.DeltaGrounding`) and recompiles the
  diagram only when a clause actually changed (``delta.recompiles``).

Every answer is an exact :class:`~fractions.Fraction`, bit-identical
to ``truth_probability`` on the current database; updates are exact
algebra on the same values, never floating approximations.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Set

from repro import obs
from repro.delta.reground import DeltaGrounding
from repro.kernels.cache import compilation_cache
from repro.logic.classify import is_existential, is_universal
from repro.logic.evaluator import FOQuery
from repro.logic.fo import Formula, neg
from repro.runtime.budget import checkpoint
from repro.propositional.bdd import BDD, ONE, ZERO, compile_dnf
from repro.relational.atoms import Atom
from repro.reliability.exact import as_query
from repro.reliability.unreliable import UnreliableDatabase
from repro.util.errors import QueryError
from repro.util.rationals import RationalLike, parse_probability


class DeltaSession:
    """One Boolean query, one evolving database, O(Δ) answers.

    Supports existential, universal (via negation), and ground
    quantifier-free sentences — the fragment Theorem 5.4 grounds.
    ``arity > 0`` queries and opaque query objects raise
    :class:`QueryError`; use per-tuple sessions for those.
    """

    def __init__(self, db: UnreliableDatabase, query):
        query = as_query(query)
        if getattr(query, "arity", 0) != 0:
            raise QueryError("DeltaSession expects a Boolean (0-ary) query")
        if not isinstance(query, FOQuery):
            raise QueryError(
                "DeltaSession needs a first-order query; opaque query "
                "objects have no clause structure to update incrementally"
            )
        self.query = query
        formula = query.formula
        # Universal sentences ground through their negation:
        # Pr[forall ...] = 1 - Pr[exists ... not ...].
        if is_universal(formula) and not is_existential(formula):
            self._base: Formula = neg(formula)
            self._negate = True
        else:
            self._base = formula
            self._negate = False
        self._db = db
        self._grounding = DeltaGrounding(db, self._base)
        self._sampler = None
        self._diagram: Optional[BDD] = None
        self._root = ZERO
        self._levels: List[List[int]] = []
        self._value: Dict[int, Fraction] = {}
        self._probs: Dict[Atom, Fraction] = {}
        self._compile()

    # ------------------------------------------------------------------ #
    # answers
    # ------------------------------------------------------------------ #

    @property
    def db(self) -> UnreliableDatabase:
        """The current database (updates build fresh immutable values)."""
        return self._db

    @property
    def diagram_size(self) -> int:
        """Reachable diagram nodes — the per-update work bound."""
        return sum(len(level) for level in self._levels)

    def probability(self) -> Fraction:
        """Exact ``Pr[B |= psi]`` for the current database."""
        p = self._value[self._root]
        return 1 - p if self._negate else p

    def wrong_probability(self) -> Fraction:
        """``Pr[Wrong(psi)]`` against the current observed structure."""
        observed = self.query.evaluate(self._db.structure, ())
        p = self.probability()
        return 1 - p if observed else p

    def reliability(self) -> Fraction:
        """``R_psi(D) = 1 - Pr[Wrong(psi)]`` for a Boolean query."""
        return 1 - self.wrong_probability()

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def set_mu(self, atom: Atom, probability: RationalLike) -> None:
        """Change one atom's error probability."""
        new = parse_probability(probability)
        old = self._db.mu(atom)
        if new == old:
            return
        obs.inc("delta.updates")
        self._db = self._db.with_errors({atom: new})
        if 0 < old < 1 and 0 < new < 1:
            # Folding status unchanged: every clause keeps its shape,
            # only the atom's nu moves.
            self._reweight(atom)
        else:
            self._structural(atom)

    def insert(self, atom: Atom) -> None:
        """Add a tuple to the observed structure."""
        self._set_observed(atom, True)

    def delete(self, atom: Atom) -> None:
        """Remove a tuple from the observed structure."""
        self._set_observed(atom, False)

    def _set_observed(self, atom: Atom, value: bool) -> None:
        if self._db.structure.holds(atom) == value:
            return
        obs.inc("delta.updates")
        mu = self._db.mu(atom)
        self._db = self._db.with_structure(
            self._db.structure.with_atom(atom, value)
        )
        if 0 < mu < 1:
            # nu flips between mu and 1-mu; clause shapes are untouched
            # (folding only inspects deterministic atoms).
            self._reweight(atom)
        else:
            self._structural(atom)

    def recompute(self) -> Fraction:
        """Rebuild everything from the current database (the cold path).

        Exposed for verification and as the escape hatch after update
        storms; the delta paths are bit-identical to this by
        construction (and by the property suite).
        """
        obs.inc("delta.recomputes")
        self._grounding = DeltaGrounding(self._db, self._base)
        self._compile()
        if self._sampler is not None:
            self._sampler.mark_stale()
        return self.probability()

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #

    def attach_karp_luby(self, samples: int, rng, method: str = "coverage"):
        """Draw a reusable Karp–Luby sample set for the current state.

        The returned :class:`~repro.delta.sampling.ReweightableKarpLuby`
        tracks weight-only updates through importance re-weighting; a
        structural update marks it stale (redraw by calling this again).
        """
        from repro.delta.sampling import ReweightableKarpLuby

        self._sampler = ReweightableKarpLuby(
            self._grounding.dnf(),
            {a: float(p) for a, p in self._probs.items()},
            samples,
            rng,
            method=method,
            negate=self._negate,
        )
        return self._sampler

    # ------------------------------------------------------------------ #
    # machinery
    # ------------------------------------------------------------------ #

    def _compile(self) -> None:
        """(Re)compile the current DNF and evaluate the full value table."""
        dnf = self._grounding.dnf()
        key = ("delta_bdd", self._db.fingerprint(), self._base)
        diagram, root = compilation_cache.get_or_create(
            key, lambda: compile_dnf(dnf)
        )
        self._diagram = diagram
        self._root = root
        self._levels = diagram.reachable_by_level(root)
        self._probs = {atom: self._db.nu(atom) for atom in diagram.order}
        self._value = {ZERO: Fraction(0), ONE: Fraction(1)}
        for level in range(len(diagram.order) - 1, -1, -1):
            self._evaluate_level(level)

    def _evaluate_level(self, level: int) -> int:
        """Recompute the value of every reachable node at one level."""
        checkpoint(worlds=len(self._levels[level]))
        diagram = self._diagram
        value = self._value
        p = self._probs[diagram.order[level]]
        touched = 0
        for node in self._levels[level]:
            _node_level, low, high = diagram.node(node)
            lo = value[low]
            value[node] = lo + p * (value[high] - lo)
            touched += 1
        return touched

    def _reweight(self, atom: Atom) -> None:
        """Weight-only path: dirty values propagate bottom-up.

        Nodes at the atom's level recompute; a node above recomputes
        only when a child's value actually moved.  Untouched branches
        of the diagram cost one set lookup each, no exact arithmetic —
        the per-update bill is the Δ, not the reachable node count.
        """
        obs.inc("delta.reweights")
        nu = self._db.nu(atom)
        if self._sampler is not None:
            self._sampler.set_prob(atom, float(nu))
        level = (
            self._diagram.level_of(atom)
            if self._diagram is not None
            else None
        )
        if level is None:
            # The atom never made it into the grounded DNF (relation
            # not mentioned, or clause folded by other literals): the
            # answer cannot depend on it.
            return
        self._probs[atom] = nu
        diagram = self._diagram
        order = diagram.order
        value = self._value
        dirty: Set[int] = set()
        touched = 0
        for current in range(level, -1, -1):
            checkpoint(worlds=len(self._levels[current]))
            p = self._probs[order[current]]
            at_source = current == level
            for node in self._levels[current]:
                _node_level, low, high = diagram.node(node)
                if not at_source and low not in dirty and high not in dirty:
                    continue
                lo = value[low]
                new = lo + p * (value[high] - lo)
                touched += 1
                if new != value[node]:
                    value[node] = new
                    dirty.add(node)
        obs.inc("delta.nodes_reevaluated", touched)

    def _structural(self, atom: Atom) -> None:
        """Structural path: targeted reground, recompile only if needed."""
        keys = self._grounding.affected_keys(atom)
        changed = self._grounding.reground(self._db, keys)
        if self._sampler is not None:
            self._sampler.mark_stale()
        if changed:
            obs.inc("delta.recompiles")
            self._compile()
        elif self._diagram is not None and atom in self._probs:
            # Defensive: a structural update that changed no clause but
            # still touches a live variable's nu (should be unreachable
            # — live variables are uncertain, and an uncertain atom
            # turning deterministic always refolds a clause).
            self._reweight(atom)
