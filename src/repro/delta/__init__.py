"""Incremental reliability maintenance under database updates.

The Gray-code kernel (Theorem 4.2) already exploits the one-flip
observation — consecutive worlds differ in one atom, so one flip costs
one multiply.  This package lifts the same idea from *worlds* to
*databases*: when an atom's error probability changes or a tuple is
inserted/deleted, :class:`DeltaSession` updates the reliability answer
in time proportional to the change, not ``2 ** k`` — regrounding only
the clauses the touched atom can occur in, re-evaluating only the
compiled-diagram nodes above the atom's level, and re-weighting already
drawn Karp–Luby samples under an importance correction instead of
redrawing them.

Answers are bit-identical :class:`~fractions.Fraction` values: after
any update stream, ``session.probability()`` equals a from-scratch
``truth_probability`` on the current database (the Hypothesis suite in
``tests/delta/`` checks exactly this).
"""

from repro.delta.reground import DeltaGrounding
from repro.delta.sampling import ReweightableKarpLuby
from repro.delta.session import DeltaSession

__all__ = ["DeltaSession", "DeltaGrounding", "ReweightableKarpLuby"]
