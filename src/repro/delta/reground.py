"""Incremental regrounding: from one changed atom to its clauses.

Theorem 5.4's grounding emits one propositional clause per (clause
template, valuation of the existential variables).  A ground atom
``R(a, b)`` can only occur in — or fold away — clauses whose template
mentions relation ``R`` with arguments that *unify* with ``(a, b)``:
constants must match outright and repeated variables must bind
consistently.  Everything else is untouched by an update to that atom.

:class:`DeltaGrounding` materialises the full clause map once (the same
``|templates| * n ** |variables|`` work the batch grounder does), then
answers ``affected_keys(atom)`` by unification: bind the template
literal against the atom, enumerate only the *unbound* existential
variables.  For a single-atom update this is ``O(n ** u)`` with ``u``
the variables the literal does not mention — the Δ, not the whole
grounding.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro import obs
from repro.logic.fo import AtomF, Formula, Not
from repro.logic.normalform import dnf_clauses, existential_parts
from repro.logic.terms import Const, Var
from repro.propositional.formula import DNF, Clause
from repro.relational.atoms import Atom
from repro.reliability.grounding import ground_clause
from repro.reliability.unreliable import UnreliableDatabase
from repro.runtime.budget import checkpoint
from repro.runtime.preflight import preflight_grounding

#: A clause map key: (template index, existential-variable values).
ClauseKey = Tuple[int, Tuple[object, ...]]


class DeltaGrounding:
    """The grounded clause map of one existential sentence, updatable.

    The map covers *every* (template, valuation) pair, including those
    currently folded to ``None`` (certainly-false clauses) — an update
    can resurrect a folded clause, so absence cannot mean "dropped".
    """

    __slots__ = ("variables", "templates", "universe", "_clauses", "_literals")

    def __init__(self, db: UnreliableDatabase, sentence: Formula):
        with obs.span("delta.ground"):
            self.variables, matrix = existential_parts(sentence)
            self.templates: Tuple[Tuple[Formula, ...], ...] = dnf_clauses(matrix)
            self.universe = db.structure.universe
            preflight_grounding(
                len(self.universe), len(self.variables), len(self.templates)
            )
            self._clauses: Dict[ClauseKey, Optional[Clause]] = {}
            for index, template in enumerate(self.templates):
                for values in product(
                    self.universe, repeat=len(self.variables)
                ):
                    checkpoint(clauses=1)
                    env = dict(zip(self.variables, values))
                    self._clauses[(index, values)] = ground_clause(
                        db, template, env
                    )
            # relation name -> [(template index, literal argument terms)];
            # the unification index behind affected_keys.
            literals: Dict[str, List[Tuple[int, Tuple]]] = {}
            for index, template in enumerate(self.templates):
                for part in template:
                    core = part.sub if isinstance(part, Not) else part
                    if isinstance(core, AtomF):
                        literals.setdefault(core.relation, []).append(
                            (index, core.args)
                        )
            self._literals = literals

    def __len__(self) -> int:
        return len(self._clauses)

    def affected_keys(self, atom: Atom) -> Set[ClauseKey]:
        """Clause-map keys an update to ``atom`` can possibly change."""
        keys: Set[ClauseKey] = set()
        for index, args in self._literals.get(atom.relation, ()):
            binding = _unify(args, atom.args)
            if binding is None:
                continue
            free = [v for v in self.variables if v not in binding]
            for completion in product(self.universe, repeat=len(free)):
                checkpoint()
                env = dict(binding)
                env.update(zip(free, completion))
                keys.add((index, tuple(env[v] for v in self.variables)))
        return keys

    def reground(
        self, db: UnreliableDatabase, keys: Iterable[ClauseKey]
    ) -> bool:
        """Re-derive the given clauses against ``db``; True if any changed."""
        changed = False
        for key in keys:
            checkpoint(clauses=1)
            index, values = key
            env = dict(zip(self.variables, values))
            clause = ground_clause(db, self.templates[index], env)
            obs.inc("delta.regrounds")
            if clause != self._clauses[key]:
                self._clauses[key] = clause
                changed = True
        return changed

    def dnf(self) -> DNF:
        """The current grounded DNF (folded clauses omitted)."""
        return DNF(
            clause for clause in self._clauses.values() if clause is not None
        )


def _unify(
    terms: Tuple, values: Tuple[object, ...]
) -> Optional[Dict[Var, object]]:
    """Bind template-literal terms against a ground atom's arguments.

    ``None`` means the literal can never ground to this atom (constant
    mismatch or inconsistent repeated variable).
    """
    if len(terms) != len(values):
        return None
    binding: Dict[Var, object] = {}
    for term, value in zip(terms, values):
        if isinstance(term, Const):
            if term.value != value:
                return None
        elif term not in binding:
            binding[term] = value
        elif binding[term] != value:
            return None
    return binding
