"""Karp–Luby sample reuse under probability updates.

A Karp–Luby sample is a pair ``(i, sigma)``: clause ``i`` drawn with
probability ``W_i / W`` and assignment ``sigma`` drawn from the
variable distribution conditioned on clause ``i`` holding, so

    q(i, sigma) = (W_i / W) * prod_{v not in C_i} f_v(sigma_v).

When a variable probability changes, the already-drawn samples are
still a perfectly good sample of the *old* proposal — importance
weighting corrects them to the new target without redrawing:

    Pr'[dnf] = (W0 / t) * sum_s X_s * (W'_{i_s} / W0_{i_s}) * r_s

where ``W0_i`` are the draw-time clause weights, ``W'_i`` the current
ones, and ``r_s`` multiplies ``f'_v(sigma_v) / f0_v(sigma_v)`` over
the changed free variables of sample ``s``.  (The new total ``W'``
cancels — only per-clause ratios survive.)  ``X_s`` depends on the
DNF's *structure* and ``sigma`` alone, so it never needs recomputing
for weight-only updates; a structural update invalidates the set
(:attr:`stale`) and the session redraws.

The price of reuse is variance: the effective sample size
``(sum w)^2 / sum w^2`` shrinks as probabilities drift from the
draw point.  Callers watch :meth:`effective_sample_size` (mirrored on
the ``delta.kl.ess`` gauge) and redraw when it dips too low.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro import obs
from repro.propositional.formula import DNF, Variable
from repro.propositional.karp_luby import _bisect, _first_satisfied
from repro.runtime.budget import checkpoint
from repro.runtime.preflight import preflight_samples
from repro.util.errors import ProbabilityError, QueryError
from repro.util.rng import as_rng

CHECKPOINT_CHUNK = 64


class ReweightableKarpLuby:
    """A drawn Karp–Luby sample set that re-weights instead of redrawing."""

    def __init__(
        self,
        dnf: DNF,
        probs: Mapping[Variable, float],
        samples: int,
        rng,
        method: str = "coverage",
        negate: bool = False,
    ):
        if method not in ("coverage", "canonical"):
            raise QueryError(f"unknown Karp-Luby method {method!r}")
        if samples <= 0:
            raise ProbabilityError(
                f"sample budget must be positive, got {samples}"
            )
        self.dnf = dnf
        self.method = method
        self.negate = negate
        self.samples = samples
        self.stale = dnf.is_true() or dnf.is_false()
        self._variables: Tuple[Variable, ...] = tuple(
            sorted(dnf.variables, key=repr)
        )
        self._orig_probs: Dict[Variable, float] = {
            v: float(probs[v]) for v in self._variables
        }
        self._probs = dict(self._orig_probs)
        self._orig_weights = _weights(dnf, self._probs)
        self._weights = list(self._orig_weights)
        self._orig_total = sum(self._orig_weights)
        # Per-sample draw-time state: clause index, estimator value,
        # assignment, and the running importance ratio r_s.
        self._clause: List[int] = []
        self._x: List[float] = []
        self._assign: List[Dict[Variable, bool]] = []
        self._ratio: List[float] = []
        # variable -> clause indices containing it, for O(Δ) weight fixes.
        self._clauses_of: Dict[Variable, List[int]] = {
            v: [] for v in self._variables
        }
        for index, clause in enumerate(dnf.clauses):
            for variable in clause.variables:
                self._clauses_of[variable].append(index)
        if not self.stale:
            self._draw(as_rng(rng))

    def _draw(self, rng) -> None:
        if self._orig_total <= 0.0:
            self.stale = True
            return
        preflight_samples(self.samples)
        cumulative: List[float] = []
        running = 0.0
        for weight in self._orig_weights:
            running += weight
            cumulative.append(running)
        pending = 0
        for drawn in range(1, self.samples + 1):
            pending += 1
            if pending >= CHECKPOINT_CHUNK or drawn == self.samples:
                checkpoint(samples=pending)
                pending = 0
            index = _bisect(cumulative, rng.random() * self._orig_total)
            clause = self.dnf.clauses[index]
            assignment: Dict[Variable, bool] = {}
            for variable in self._variables:
                if variable in clause:
                    assignment[variable] = clause.polarity(variable)
                else:
                    assignment[variable] = (
                        rng.random() < self._orig_probs[variable]
                    )
            if self.method == "coverage":
                x = 1.0 / self.dnf.satisfied_count(assignment)
            else:
                x = 1.0 if _first_satisfied(self.dnf, assignment) == index else 0.0
            self._clause.append(index)
            self._x.append(x)
            self._assign.append(assignment)
            self._ratio.append(1.0)
        obs.inc("karp_luby.samples", self.samples)
        obs.inc("delta.kl.draws")

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def set_prob(self, variable: Variable, probability: float) -> None:
        """Move one variable's probability; O(samples + clauses-of-v)."""
        if variable not in self._clauses_of:
            return  # not a DNF variable: samples don't mention it
        if self.stale:
            return
        old = self._probs[variable]
        new = float(probability)
        if new == old:
            return
        self._probs[variable] = new
        # Clause weights: only clauses containing v change.
        for index in self._clauses_of[variable]:
            clause = self.dnf.clauses[index]
            factor_old = old if clause.polarity(variable) else 1.0 - old
            factor_new = new if clause.polarity(variable) else 1.0 - new
            if factor_old == 0.0:
                self._weights[index] = _clause_weight(
                    clause, self._probs
                )
            else:
                self._weights[index] *= factor_new / factor_old
        # Sample ratios: every sample whose clause leaves v free.
        for s in range(len(self._ratio)):
            if s % CHECKPOINT_CHUNK == 0:
                checkpoint()
            clause = self.dnf.clauses[self._clause[s]]
            if variable in clause:
                continue
            value = self._assign[s][variable]
            num = new if value else 1.0 - new
            den = old if value else 1.0 - old
            if den == 0.0:
                # The draw distribution gave this sigma zero mass at v;
                # reuse is unsound — require a redraw.
                self.stale = True
                obs.inc("delta.kl.degenerate")
                return
            self._ratio[s] *= num / den
        obs.inc("delta.kl.reweights")
        obs.gauge("delta.kl.ess", self.effective_sample_size())

    def mark_stale(self) -> None:
        """Structural change: stored X values no longer apply."""
        self.stale = True

    # ------------------------------------------------------------------ #
    # estimates
    # ------------------------------------------------------------------ #

    def _sample_weights(self) -> List[float]:
        weights = []
        for s in range(len(self._ratio)):
            if s % CHECKPOINT_CHUNK == 0:
                checkpoint()
            index = self._clause[s]
            orig = self._orig_weights[index]
            shift = self._weights[index] / orig if orig > 0.0 else 0.0
            weights.append(shift * self._ratio[s])
        return weights

    def estimate(self) -> float:
        """Importance-corrected ``Pr[dnf]`` (or its complement) estimate."""
        if self.stale:
            raise ProbabilityError(
                "sample set is stale (structural update); redraw via "
                "DeltaSession.attach_karp_luby"
            )
        total = 0.0
        weights = self._sample_weights()
        for s, weight in enumerate(weights):
            total += self._x[s] * weight
        p = min(self._orig_total * total / self.samples, 1.0)
        return 1.0 - p if self.negate else p

    def effective_sample_size(self) -> float:
        """Kish ESS of the current importance weights, in ``[0, t]``."""
        weights = self._sample_weights()
        total = sum(weights)
        square = sum(w * w for w in weights)
        if square <= 0.0:
            return 0.0
        return (total * total) / square


def _clause_weight(clause, probs: Mapping[Variable, float]) -> float:
    weight = 1.0
    for literal in clause:
        p = probs[literal.variable]
        weight *= p if literal.positive else 1.0 - p
    return weight


def _weights(dnf: DNF, probs: Mapping[Variable, float]) -> List[float]:
    return [_clause_weight(clause, probs) for clause in dnf.clauses]
