"""Convert the legacy ad-hoc ``BENCH_*.json`` files to schema-v1 records.

Before the unified harness each standalone benchmark wrote its own
free-form JSON at the repo root.  Those files are the earliest points
of the repository's performance trajectory, so instead of discarding
them this module maps each onto one or more :class:`BenchResult`
records (``source="legacy-convert"``) that seed ``BENCH_history.jsonl``.

The legacy numbers were single headline timings without per-repeat
samples, metrics snapshots or span profiles; the converted records
carry what existed (the headline seconds, the free-form payload under
``extra``) and leave the rest empty.  Workloads are taken verbatim from
the legacy files, so converted trajectories are keyed separately from
the registered cases' — the gate never compares a legacy timing against
a new-style run of a different workload.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.bench.record import BenchResult, environment_fingerprint

#: The legacy files at the repo root and their converters.
LEGACY_FILES = (
    "BENCH_costmodel.json",
    "BENCH_kernels.json",
    "BENCH_obs_overhead.json",
    "BENCH_racing.json",
)


def _legacy_result(
    bench: str,
    workload: Dict[str, Any],
    seconds: float,
    extra: Dict[str, Any],
    created_at: Optional[str],
    source: str = "legacy-convert",
) -> BenchResult:
    record = BenchResult(
        bench=bench,
        group=bench.split(".", 1)[0],
        workload=workload,
        environment=environment_fingerprint(),
        methodology={
            "repeats": 1,
            "warmup": 0,
            "timer": "perf_counter",
            "reduce": "legacy",
            "quick": False,
        },
        wall_clock={
            "seconds": float(seconds),
            "min": float(seconds),
            "max": float(seconds),
            "mean": float(seconds),
            "stdev": 0.0,
            "samples": [float(seconds)],
        },
        source=source,
    )
    record.extra = extra
    if created_at:
        record.created_at = created_at
    return record


def convert_costmodel(
    data: Dict[str, Any], created_at=None, source: str = "legacy-convert"
) -> List[BenchResult]:
    """Static vs calibrated chain ordering → two records."""
    workload = {"legacy": data.get("workload", "costmodel")}
    shared = {
        "speedup": data.get("speedup"),
        "analyze_run_agreement": data.get("analyze_run_agreement"),
        "calibrated_engines": data.get("calibrated_engines"),
        "pass": data.get("pass"),
    }
    return [
        _legacy_result(
            "runtime.costmodel_static", dict(workload, arm="static"),
            data["static_total_s"], shared, created_at, source,
        ),
        _legacy_result(
            "runtime.costmodel_calibrated", dict(workload, arm="calibrated"),
            data["calibrated_total_s"], shared, created_at, source,
        ),
    ]


def convert_kernels(
    data: Dict[str, Any], created_at=None, source: str = "legacy-convert"
) -> List[BenchResult]:
    """One record per kernel section, batched timing as the headline."""
    records = []
    base = {"samples": data.get("samples"), "repeats": data.get("repeats")}
    sections = {
        "kernels.legacy_e1_truth": ("e1_truth", "batched_s"),
        "kernels.legacy_e4_karp_luby": ("e4_karp_luby", "batched_s"),
        "kernels.legacy_e9_karp_luby": ("e9_karp_luby", "batched_s"),
        "kernels.legacy_gray": ("gray_enumeration", "gray_s"),
    }
    for bench, (section_key, seconds_key) in sections.items():
        section = data.get(section_key)
        if not section or seconds_key not in section:
            continue
        workload = dict(base, legacy=section.get("workload", section_key))
        records.append(
            _legacy_result(
                bench, workload, section[seconds_key], section, created_at,
                source,
            )
        )
    return records


def convert_obs_overhead(
    data: Dict[str, Any], created_at=None, source: str = "legacy-convert"
) -> List[BenchResult]:
    workload = {
        "legacy": data.get("workload", "obs_overhead"),
        "repeats": data.get("repeats"),
    }
    extra = {
        "null_recorder_s": data.get("null_recorder_s"),
        "stats_recorder_s": data.get("stats_recorder_s"),
        "traced_recorder_s": data.get("traced_recorder_s"),
        "overhead_pct": data.get("overhead_pct"),
        "pass": data.get("pass"),
    }
    return [
        _legacy_result(
            "obs.legacy_overhead", workload,
            data["traced_recorder_s"], extra, created_at, source,
        )
    ]


def convert_racing(
    data: Dict[str, Any], created_at=None, source: str = "legacy-convert"
) -> List[BenchResult]:
    workload = {"legacy": data.get("workload", "racing")}
    extra = {
        "speedup": data.get("speedup"),
        "answers_agree": data.get("answers_agree"),
        "batch_width": data.get("batch_width"),
        "pass": data.get("pass"),
    }
    return [
        _legacy_result(
            "runtime.racing_sequential", dict(workload, arm="sequential"),
            data["sequential_total_s"], extra, created_at, source,
        ),
        _legacy_result(
            "runtime.racing_speculative", dict(workload, arm="racing"),
            data["racing_total_s"], extra, created_at, source,
        ),
    ]


_CONVERTERS = {
    "costmodel": convert_costmodel,
    "kernels": convert_kernels,
    "obs_overhead": convert_obs_overhead,
    "racing": convert_racing,
}


def convert_file(path: str) -> List[BenchResult]:
    """Convert one legacy file; [] when its shape is unrecognised."""
    with open(path) as handle:
        data = json.load(handle)
    converter = _CONVERTERS.get(data.get("benchmark", ""))
    if converter is None:
        return []
    # File mtime approximates when the legacy run happened.
    import time

    created_at = time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime(os.path.getmtime(path))
    )
    return converter(data, created_at)


def convert_all(root: str = ".") -> List[BenchResult]:
    """Convert every legacy ``BENCH_*.json`` present under ``root``."""
    records: List[BenchResult] = []
    for name in LEGACY_FILES:
        path = os.path.join(root, name)
        if os.path.exists(path):
            records.extend(convert_file(path))
    return records
