"""Human-readable views over the benchmark trajectory store.

``repro bench report`` renders these: a per-benchmark trend table (one
row per ``(bench, workload_key)`` trajectory with first/last/best
timings and the direction of travel) and a single-benchmark detail view
with the recorded span-tree profile of the latest run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.bench.history import History
from repro.obs.profile import SpanProfile


def _direction(seconds: List[float]) -> str:
    """A coarse trend arrow: latest vs the median of the earlier runs."""
    if len(seconds) < 2:
        return "·"
    earlier = sorted(seconds[:-1])
    median = earlier[len(earlier) // 2]
    if median == 0:
        return "·"
    ratio = seconds[-1] / median
    if ratio <= 0.8:
        return "↓ faster"
    if ratio >= 1.25:
        return "↑ slower"
    return "→ steady"


def trend_table(history: Union[History, str]) -> str:
    """One row per trajectory: runs, first/latest/best seconds, trend."""
    store = history if isinstance(history, History) else History(history)
    groups = store.grouped()
    if not groups:
        return "(empty history)"
    lines = [
        f"{'benchmark':<34} {'key':<13} {'runs':>4} {'first_s':>10} "
        f"{'latest_s':>10} {'best_s':>10}  trend"
    ]
    for (bench, key), records in sorted(groups.items()):
        seconds = [float(r["wall_clock"]["seconds"]) for r in records]
        lines.append(
            f"{bench:<34} {key:<13} {len(records):>4} {seconds[0]:>10.6f} "
            f"{seconds[-1]:>10.6f} {min(seconds):>10.6f}  "
            f"{_direction(seconds)}"
        )
    return "\n".join(lines)


def bench_detail(
    history: Union[History, str],
    bench: str,
    workload_key: Optional[str] = None,
) -> str:
    """The trajectory of one benchmark plus the latest run's profile."""
    store = history if isinstance(history, History) else History(history)
    records = store.records_for(bench, workload_key)
    if not records:
        return f"no records for {bench!r}"
    lines = [f"{bench} — {len(records)} recorded run(s)"]
    for record in records:
        wall = record["wall_clock"]
        lines.append(
            f"  {record['created_at']}  {wall['seconds']:>10.6f}s  "
            f"(min {wall['min']:.6f}, max {wall['max']:.6f}, "
            f"source {record['source']}, key {record['workload_key']})"
        )
    latest = records[-1]
    workload = latest.get("workload", {})
    if workload:
        lines.append("workload: " + ", ".join(
            f"{key}={value}" for key, value in sorted(workload.items())
        ))
    phases = latest.get("profile", {}).get("phases") or []
    if phases:
        lines.append("latest span profile (self-time ordered):")
        lines.append(
            f"  {'phase':<32} {'count':>7} {'total_s':>12} {'self_s':>12}"
        )
        for phase in phases:
            lines.append(
                f"  {phase['name']:<32} {phase['count']:>7} "
                f"{phase['total_s']:>12.6f} {phase['self_s']:>12.6f}"
            )
    metrics = latest.get("metrics", {}).get("counters") or {}
    if metrics:
        shown = sorted(metrics.items())[:12]
        lines.append("latest counters: " + ", ".join(
            f"{name}={value}" for name, value in shown
        ))
        if len(metrics) > len(shown):
            lines.append(f"  ... and {len(metrics) - len(shown)} more")
    return "\n".join(lines)
