"""repro.bench — the unified benchmark harness.

One registry of declarative benchmark cases (:mod:`repro.bench.cases`),
one runner that executes them under the observability layer
(:mod:`repro.bench.runner`), one schema-versioned record per run
(:mod:`repro.bench.record`), an append-only trajectory store
(:mod:`repro.bench.history`) and a robust-band regression gate
(:mod:`repro.bench.compare`).  The ``repro bench`` CLI subcommands are
thin wrappers over these modules.
"""

from __future__ import annotations

from repro.bench.compare import (
    Comparison,
    Verdict,
    compare_against_history,
    compare_records,
    robust_band,
    self_compare,
)
from repro.bench.history import DEFAULT_HISTORY, History
from repro.bench.record import (
    SCHEMA_VERSION,
    BenchResult,
    SchemaError,
    environment_fingerprint,
    migrate,
    validate,
    wall_clock_stats,
    workload_key,
)
from repro.bench.registry import (
    BenchCase,
    UnknownBenchmark,
    all_cases,
    get_case,
    load_cases,
    register,
    register_case,
    unregister,
    workload,
)
from repro.bench.runner import run_case, run_many

__all__ = [
    "SCHEMA_VERSION",
    "BenchResult",
    "SchemaError",
    "environment_fingerprint",
    "migrate",
    "validate",
    "wall_clock_stats",
    "workload_key",
    "BenchCase",
    "UnknownBenchmark",
    "all_cases",
    "get_case",
    "load_cases",
    "register",
    "register_case",
    "unregister",
    "workload",
    "run_case",
    "run_many",
    "History",
    "DEFAULT_HISTORY",
    "Comparison",
    "Verdict",
    "compare_records",
    "compare_against_history",
    "self_compare",
    "robust_band",
]
